#include "db/heap.h"

#include <cstring>

#include "db/registration.h"
#include "support/varint.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_heap_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Tuple_encode", m,
                 {{"entry", 5, kFall},
                  {"loop", 4, kBr},       // per value
                  {"enc_null", 3, kBr},
                  {"enc_int", 8, kBr},
                  {"enc_double", 7, kBr},
                  {"enc_string", 12, kBr},
                  {"ret", 3, kRet}});
  im.add_routine("Tuple_decode", m,
                 {{"entry", 5, kFall},
                  {"loop", 5, kBr},
                  {"dec_null", 3, kBr},
                  {"dec_int", 8, kBr},
                  {"dec_double", 7, kBr},
                  {"dec_string", 13, kBr},
                  {"ret", 3, kRet},
                  {"err_corrupt", 15, kRet}});
  im.add_routine("Heap_insert", m,
                 {{"entry", 6, kCall},      // encode the tuple
                  {"pick_page", 7, kBr},    // file empty? use the last page
                  {"extend", 6, kCall},     // allocate a fresh page
                  {"pin", 5, kCall},
                  {"fit_check", 4, kBr},    // does the record fit here?
                  {"unpin_full", 4, kCall}, // release the full page, extend
                  {"put", 11, kFall},
                  {"unpin", 4, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("Heap_get", m,
                 {{"entry", 6, kCall},     // pin the page
                  {"slot", 8, kCall},      // locate + decode the record
                  {"unpin", 4, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("Heap_scan_next", m,
                 {{"entry", 7, kBr},       // current position past EOF?
                  {"pin", 5, kCall},
                  {"slot_check", 6, kBr},  // slots left on this page?
                  {"advance_page", 7, kCall},  // unpin, move to next page
                  {"fetch", 9, kCall},     // decode the record
                  {"unpin", 4, kCall},
                  {"ret", 3, kRet},
                  {"eof_ret", 4, kRet}});
}

void tuple_encode(Kernel& kernel, const Tuple& tuple,
                  std::vector<std::uint8_t>& out) {
  DB_ROUTINE(kernel, "Tuple_encode");
  DB_BB(kernel, "entry");
  out.clear();
  put_uvarint(out, tuple.size());
  for (const Value& v : tuple) {
    DB_BB(kernel, "loop");
    out.push_back(static_cast<std::uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        DB_BB(kernel, "enc_null");
        break;
      case ValueType::kInt:
        DB_BB(kernel, "enc_int");
        put_svarint(out, v.as_int());
        break;
      case ValueType::kDouble: {
        DB_BB(kernel, "enc_double");
        const double d = v.as_double();
        const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(&d);
        out.insert(out.end(), p, p + sizeof d);
        break;
      }
      case ValueType::kString: {
        DB_BB(kernel, "enc_string");
        const std::string& s = v.as_string();
        put_uvarint(out, s.size());
        out.insert(out.end(), s.begin(), s.end());
        break;
      }
    }
  }
  DB_BB(kernel, "ret");
}

void tuple_decode(Kernel& kernel, const std::uint8_t* data,
                  std::uint16_t length, Tuple& out) {
  DB_ROUTINE(kernel, "Tuple_decode");
  DB_BB(kernel, "entry");
  out.clear();
  std::size_t pos = 0;
  const std::uint64_t count = get_uvarint(data, length, pos);
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DB_BB(kernel, "loop");
    if (pos >= length) {
      DB_BB(kernel, "err_corrupt");
      STC_CHECK_MSG(false, "corrupt tuple record");
    }
    const auto type = static_cast<ValueType>(data[pos++]);
    switch (type) {
      case ValueType::kNull:
        DB_BB(kernel, "dec_null");
        out.push_back(Value::null());
        break;
      case ValueType::kInt:
        DB_BB(kernel, "dec_int");
        out.push_back(Value(get_svarint(data, length, pos)));
        break;
      case ValueType::kDouble: {
        DB_BB(kernel, "dec_double");
        double d = 0.0;
        STC_CHECK(pos + sizeof d <= length);
        std::memcpy(&d, data + pos, sizeof d);
        pos += sizeof d;
        out.push_back(Value(d));
        break;
      }
      case ValueType::kString: {
        DB_BB(kernel, "dec_string");
        const std::uint64_t n = get_uvarint(data, length, pos);
        STC_CHECK(pos + n <= length);
        out.push_back(
            Value(std::string(reinterpret_cast<const char*>(data + pos),
                              static_cast<std::size_t>(n))));
        pos += n;
        break;
      }
    }
  }
  DB_BB(kernel, "ret");
}

HeapFile::HeapFile(Kernel& kernel, BufferManager& buffer,
                   StorageManager& storage, std::uint32_t file_id)
    : kernel_(kernel), buffer_(buffer), storage_(storage), file_id_(file_id) {}

std::uint32_t HeapFile::page_count() const {
  return storage_.file_page_count(file_id_);
}

RID HeapFile::insert(const Tuple& tuple) {
  DB_ROUTINE(kernel_, "Heap_insert");
  DB_BB(kernel_, "entry");
  tuple_encode(kernel_, tuple, scratch_);
  STC_REQUIRE_MSG(scratch_.size() < kPageBytes / 2, "tuple too large");

  DB_BB(kernel_, "pick_page");
  std::uint32_t page_no = storage_.file_page_count(file_id_);
  bool need_new_page = page_no == 0;
  if (!need_new_page) {
    // Cheap fit check against the last page requires pinning it; do the
    // check after the pin below by re-validating free space.
    page_no -= 1;
  }
  if (need_new_page) {
    DB_BB(kernel_, "extend");
    page_no = storage_.allocate_page(file_id_);
  }

  DB_BB(kernel_, "pin");
  PageId pid{file_id_, page_no};
  Page* page = &buffer_.pin(pid);
  DB_BB(kernel_, "fit_check");
  if (page->free_space() < scratch_.size()) {
    DB_BB(kernel_, "unpin_full");
    buffer_.unpin(pid, false);
    DB_BB(kernel_, "extend");
    pid.page = storage_.allocate_page(file_id_);
    DB_BB(kernel_, "pin");
    page = &buffer_.pin(pid);
    DB_BB(kernel_, "fit_check");
  }

  DB_BB(kernel_, "put");
  const std::uint16_t slot = page->insert_record(
      scratch_.data(), static_cast<std::uint16_t>(scratch_.size()));
  ++tuple_count_;

  DB_BB(kernel_, "unpin");
  buffer_.unpin(pid, true);
  DB_BB(kernel_, "ret");
  return RID{pid.page, slot};
}

void HeapFile::get(RID rid, Tuple& out) {
  DB_ROUTINE(kernel_, "Heap_get");
  DB_BB(kernel_, "entry");
  const PageId pid{file_id_, rid.page};
  Page& page = buffer_.pin(pid);
  DB_BB(kernel_, "slot");
  std::uint16_t length = 0;
  const std::uint8_t* data = page.record(rid.slot, length);
  tuple_decode(kernel_, data, length, out);
  DB_BB(kernel_, "unpin");
  buffer_.unpin(pid, false);
  DB_BB(kernel_, "ret");
}

HeapFile::Scanner::Scanner(HeapFile& heap) : heap_(heap) {}

bool HeapFile::Scanner::next(Tuple& out, RID& rid) {
  Kernel& k = heap_.kernel_;
  DB_ROUTINE(k, "Heap_scan_next");
  DB_BB(k, "entry");
  while (true) {
    if (page_ >= heap_.page_count()) {
      DB_BB(k, "eof_ret");
      return false;
    }
    DB_BB(k, "pin");
    const PageId pid{heap_.file_id_, page_};
    Page& page = heap_.buffer_.pin(pid);
    DB_BB(k, "slot_check");
    if (slot_ >= page.slot_count()) {
      DB_BB(k, "advance_page");
      heap_.buffer_.unpin(pid, false);
      ++page_;
      slot_ = 0;
      continue;
    }
    DB_BB(k, "fetch");
    std::uint16_t length = 0;
    const std::uint8_t* data = page.record(slot_, length);
    tuple_decode(k, data, length, out);
    rid = RID{page_, slot_};
    ++slot_;
    DB_BB(k, "unpin");
    heap_.buffer_.unpin(pid, false);
    DB_BB(k, "ret");
    return true;
  }
}

}  // namespace stc::db
