#include "db/hash_index.h"

#include "db/registration.h"
#include "db/typeops.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_hashindex_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("HX_hash_key", m,
                 {{"entry", 4, kCall},   // per-type hash dispatch
                  {"finalize", 6, kFall},
                  {"ret", 2, kRet}});
  im.add_routine("HX_insert", m,
                 {{"entry", 5, kCall},    // hash the key
                  {"bucket", 6, kFall},   // select bucket
                  {"append", 8, kFall},   // chain the entry
                  {"grow_check", 5, kBr},
                  {"grow", 6, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("HX_grow", m,
                 {{"entry", 8, kFall},
                  {"rehash", 11, kBr},    // per moved entry
                  {"swap", 7, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("HX_seek", m,
                 {{"entry", 5, kCall},    // hash the probe key
                  {"bucket", 6, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("HX_scan_next", m,
                 {{"entry", 5, kBr},
                  {"probe", 9, kBr},      // one chain entry (hash check)
                  {"keycmp", 4, kCall},   // full key comparison on hash match
                  {"match", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 4, kRet}});
}

class HashIndex::EqualCursor final : public IndexCursor {
 public:
  EqualCursor(Kernel& kernel, const std::vector<Entry>* bucket,
              std::uint64_t hash, Value key)
      : kernel_(kernel), bucket_(bucket), hash_(hash), key_(std::move(key)) {}

  bool next(RID& rid) override {
    DB_ROUTINE(kernel_, "HX_scan_next");
    DB_BB(kernel_, "entry");
    while (pos_ < bucket_->size()) {
      DB_BB(kernel_, "probe");
      const Entry& entry = (*bucket_)[pos_];
      ++pos_;
      if (entry.hash != hash_) continue;
      DB_BB(kernel_, "keycmp");
      if (cmp_dispatch(kernel_, entry.key, key_) != 0) continue;
      DB_BB(kernel_, "match");
      rid = entry.rid;
      DB_BB(kernel_, "ret");
      return true;
    }
    DB_BB(kernel_, "eof_ret");
    return false;
  }

 private:
  Kernel& kernel_;
  const std::vector<Entry>* bucket_;
  std::uint64_t hash_;
  Value key_;
  std::size_t pos_ = 0;
};

HashIndex::HashIndex(Kernel& kernel, std::size_t initial_buckets)
    : kernel_(kernel) {
  STC_REQUIRE(initial_buckets > 0 &&
              (initial_buckets & (initial_buckets - 1)) == 0);
  buckets_.resize(initial_buckets);
}

std::uint64_t HashIndex::hash_key(const Value& key) const {
  DB_ROUTINE(kernel_, "HX_hash_key");
  DB_BB(kernel_, "entry");
  std::uint64_t h = hash_dispatch(kernel_, key);
  DB_BB(kernel_, "finalize");
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  DB_BB(kernel_, "ret");
  return h;
}

void HashIndex::maybe_grow() {
  if (static_cast<double>(entries_) <=
      kMaxLoadFactor * static_cast<double>(buckets_.size())) {
    return;
  }
  DB_ROUTINE(kernel_, "HX_grow");
  DB_BB(kernel_, "entry");
  std::vector<std::vector<Entry>> bigger(buckets_.size() * 2);
  const std::uint64_t mask = bigger.size() - 1;
  for (auto& bucket : buckets_) {
    for (Entry& entry : bucket) {
      DB_BB(kernel_, "rehash");
      bigger[entry.hash & mask].push_back(std::move(entry));
    }
  }
  DB_BB(kernel_, "swap");
  buckets_ = std::move(bigger);
  DB_BB(kernel_, "ret");
}

void HashIndex::insert(const Value& key, RID rid) {
  DB_ROUTINE(kernel_, "HX_insert");
  DB_BB(kernel_, "entry");
  const std::uint64_t h = hash_key(key);
  DB_BB(kernel_, "bucket");
  const std::size_t bucket = h & (buckets_.size() - 1);
  DB_BB(kernel_, "append");
  buckets_[bucket].push_back({h, key, rid});
  ++entries_;
  DB_BB(kernel_, "grow_check");
  if (static_cast<double>(entries_) >
      kMaxLoadFactor * static_cast<double>(buckets_.size())) {
    DB_BB(kernel_, "grow");
    maybe_grow();
  }
  DB_BB(kernel_, "ret");
}

std::unique_ptr<IndexCursor> HashIndex::seek_equal(const Value& key) {
  DB_ROUTINE(kernel_, "HX_seek");
  DB_BB(kernel_, "entry");
  const std::uint64_t h = hash_key(key);
  DB_BB(kernel_, "bucket");
  const std::vector<Entry>* bucket = &buckets_[h & (buckets_.size() - 1)];
  auto cursor = std::make_unique<EqualCursor>(kernel_, bucket, h, key);
  DB_BB(kernel_, "ret");
  return cursor;
}

void HashIndex::check_invariants() const {
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (const Entry& entry : buckets_[b]) {
      STC_CHECK_MSG((entry.hash & (buckets_.size() - 1)) == b,
                    "hash entry in the wrong bucket");
      ++seen;
    }
  }
  STC_CHECK_MSG(seen == entries_, "hash entry count mismatch");
}

}  // namespace stc::db
