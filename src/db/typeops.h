// Per-datatype operator dispatch (the engine's fmgr analogue).
//
// Real database kernels never compare or hash values inline: every operator
// invocation dispatches through a function-manager layer to the datatype's
// routine (int4lt, date_le, bpchareq, ...). These instrumented dispatchers
// reproduce that call pattern — they are among the hottest routines of the
// kernel and a large contributor to the call/return traffic the paper
// profiles.
#pragma once

#include "db/kernel.h"
#include "db/value.h"

namespace stc::db {

// Three-way comparison through the per-type dispatch layer.
int cmp_dispatch(Kernel& kernel, const Value& a, const Value& b);

// Hash through the per-type dispatch layer.
std::uint64_t hash_dispatch(Kernel& kernel, const Value& v);

}  // namespace stc::db
