#include "db/buffer.h"

#include "db/registration.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_buffer_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("BM_hash_lookup", m,
                 {{"entry", 6, kFall},
                  {"mix", 7, kFall},         // hash the (file, page) pair
                  {"probe", 8, kBr},         // bucket probe
                  {"ret", 3, kRet}});
  im.add_routine("BM_pin", m,
                 {{"entry", 4, kCall},        // hash-table lookup
                  {"hit", 6, kFall},          // bump pin count + recency
                  {"hit_ret", 2, kRet},
                  {"miss", 5, kCall},         // pick a victim frame
                  {"evict_check", 4, kBr},    // victim dirty?
                  {"writeback", 7, kCall},    // write dirty victim
                  {"load", 8, kCall},         // read page from storage
                  {"install", 10, kFall},     // rewire the frame table
                  {"ret", 3, kRet}});
  im.add_routine("BM_choose_victim", m,
                 {{"entry", 5, kFall},
                  {"scan", 9, kBr},           // LRU scan over frames
                  {"better", 4, kBr},
                  {"found_check", 4, kBr},
                  {"ret", 3, kRet},
                  {"err_all_pinned", 16, kRet}});
  im.add_routine("BM_unpin", m,
                 {{"entry", 8, kBr},
                  {"mark", 5, kFall},
                  {"ret", 2, kRet},
                  {"err_notpinned", 14, kRet}});
  im.add_routine("BM_flush_all", m,
                 {{"entry", 5, kBr},
                  {"scan", 7, kBr},
                  {"write_one", 6, kCall},
                  {"ret", 3, kRet}});
}

BufferManager::BufferManager(Kernel& kernel, StorageManager& storage,
                             std::size_t frames)
    : kernel_(kernel), storage_(storage), frames_(frames) {
  STC_REQUIRE(frames > 0);
}

std::size_t BufferManager::choose_victim() {
  DB_ROUTINE(kernel_, "BM_choose_victim");
  DB_BB(kernel_, "entry");
  std::size_t victim = frames_.size();
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    DB_BB(kernel_, "scan");
    const Frame& f = frames_[i];
    if (f.pin_count > 0) continue;
    if (!f.valid) {
      // An empty frame wins outright.
      DB_BB(kernel_, "better");
      victim = i;
      break;
    }
    if (victim == frames_.size() || f.last_use < frames_[victim].last_use) {
      DB_BB(kernel_, "better");
      victim = i;
    }
  }
  DB_BB(kernel_, "found_check");
  if (victim == frames_.size()) {
    DB_BB(kernel_, "err_all_pinned");
    STC_CHECK_MSG(false, "buffer pool exhausted: all frames pinned");
  }
  DB_BB(kernel_, "ret");
  return victim;
}

std::size_t BufferManager::hash_lookup(PageId id) {
  DB_ROUTINE(kernel_, "BM_hash_lookup");
  DB_BB(kernel_, "entry");
  DB_BB(kernel_, "mix");
  const auto it = frame_of_.find(id.key());
  DB_BB(kernel_, "probe");
  const std::size_t slot = it == frame_of_.end() ? kNoFrame : it->second;
  DB_BB(kernel_, "ret");
  return slot;
}

Page& BufferManager::pin(PageId id) {
  DB_ROUTINE(kernel_, "BM_pin");
  DB_BB(kernel_, "entry");
  ++stats_.lookups;
  ++clock_;
  const std::size_t found = hash_lookup(id);
  if (found != kNoFrame) {
    DB_BB(kernel_, "hit");
    ++stats_.hits;
    Frame& frame = frames_[found];
    ++frame.pin_count;
    frame.last_use = clock_;
    DB_BB(kernel_, "hit_ret");
    return frame.page;
  }

  DB_BB(kernel_, "miss");
  const std::size_t slot = choose_victim();
  Frame& frame = frames_[slot];
  DB_BB(kernel_, "evict_check");
  if (frame.valid) {
    ++stats_.evictions;
    frame_of_.erase(frame.id.key());
    if (frame.dirty) {
      DB_BB(kernel_, "writeback");
      ++stats_.dirty_writebacks;
      storage_.write_page(frame.id, frame.page);
    }
  }
  DB_BB(kernel_, "load");
  storage_.read_page(id, frame.page);
  DB_BB(kernel_, "install");
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.valid = true;
  frame.last_use = clock_;
  frame_of_[id.key()] = slot;
  DB_BB(kernel_, "ret");
  return frame.page;
}

void BufferManager::unpin(PageId id, bool dirty) {
  DB_ROUTINE(kernel_, "BM_unpin");
  DB_BB(kernel_, "entry");
  const auto it = frame_of_.find(id.key());
  if (it == frame_of_.end() || frames_[it->second].pin_count == 0) {
    DB_BB(kernel_, "err_notpinned");
    STC_CHECK_MSG(false, "unpin of a page that is not pinned");
  }
  DB_BB(kernel_, "mark");
  Frame& frame = frames_[it->second];
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  DB_BB(kernel_, "ret");
}

void BufferManager::flush_all() {
  DB_ROUTINE(kernel_, "BM_flush_all");
  DB_BB(kernel_, "entry");
  for (Frame& frame : frames_) {
    DB_BB(kernel_, "scan");
    if (!frame.valid || !frame.dirty) continue;
    DB_BB(kernel_, "write_one");
    storage_.write_page(frame.id, frame.page);
    frame.dirty = false;
  }
  DB_BB(kernel_, "ret");
}

}  // namespace stc::db
