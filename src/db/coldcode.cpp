#include "db/coldcode.h"

#include <cstdio>

#include "db/registration.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_coldcode_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Err_format", m,
                 {{"entry", 9, kBr},
                  {"classify", 12, kBr},
                  {"compose", 26, kFall},
                  {"ret", 4, kRet}});
  im.add_routine("Fmt_row", m,
                 {{"entry", 6, kBr},
                  {"column", 9, kBr},
                  {"sep", 3, kBr},
                  {"ret", 4, kRet}});
  im.add_routine("Fmt_money", m,
                 {{"entry", 8, kBr},
                  {"digits", 11, kBr},
                  {"group", 6, kBr},
                  {"ret", 4, kRet}});
  im.add_routine("Cfg_parse", m,
                 {{"entry", 8, kBr},
                  {"line", 10, kBr},
                  {"comment", 4, kBr},
                  {"kv", 14, kBr},
                  {"ret", 5, kRet},
                  {"err_line", 18, kRet}});
  im.add_routine("Crc32_compute", m,
                 {{"entry", 6, kBr},
                  {"byte", 5, kBr},
                  {"bit", 7, kBr},
                  {"ret", 3, kRet}});
  im.add_routine("Vacuum_table", m,
                 {{"entry", 9, kCall},
                  {"page", 7, kCall},
                  {"slot", 8, kBr},
                  {"unpin", 4, kCall},
                  {"ret", 5, kRet},
                  {"err_missing", 15, kRet}});
  im.add_routine("Analyze_table", m,
                 {{"entry", 9, kCall},
                  {"fetch", 5, kCall},
                  {"fold", 12, kBr},
                  {"ret", 6, kRet},
                  {"err_missing", 15, kRet}});
  im.add_routine("Check_integrity", m,
                 {{"entry", 9, kCall},
                  {"tuple", 5, kCall},
                  {"index", 6, kBr},
                  {"probe", 7, kCall},
                  {"scan", 5, kCall},
                  {"verify", 8, kBr},
                  {"ret", 6, kRet},
                  {"err_missing", 15, kRet},
                  {"err_dangling", 21, kRet}});
  // Deliberately large, never-executed recovery/replication scaffolding:
  // these model subsystems a production engine links in (WAL replay, 2PC,
  // network protocol handling) that DSS queries never touch.
  const struct {
    const char* name;
    int blocks;
  } cold[] = {
      {"Wal_replay_record", 18},    {"Wal_checkpoint", 14},
      {"Wal_archive_segment", 12},  {"Txn_two_phase_commit", 16},
      {"Txn_abort_cleanup", 12},    {"Lock_deadlock_detect", 20},
      {"Lock_escalate", 10},        {"Net_handle_message", 22},
      {"Net_auth_handshake", 16},   {"Net_encode_result", 12},
      {"Repl_apply_stream", 18},    {"Repl_snapshot_send", 14},
      {"Catalog_upgrade", 12},      {"Stats_export", 10},
      {"Trigger_fire", 14},         {"Constraint_check_fk", 16},
      {"Cursor_declare", 8},        {"Cursor_fetch_backward", 12},
      {"Tablespace_move", 14},      {"Privilege_check", 10},
      {"View_expand", 12},          {"Rule_rewrite", 16},
      {"Temp_cleanup", 8},          {"Signal_handler", 10},
      {"Backup_base", 18},          {"Restore_verify", 16},
      // Parser/planner paths for statement classes DSS queries never issue.
      {"Parse_insert_stmt", 14},    {"Parse_update_stmt", 16},
      {"Parse_delete_stmt", 12},    {"Parse_create_table", 18},
      {"Parse_create_index", 12},   {"Parse_alter_table", 16},
      {"Parse_copy_stmt", 14},      {"Plan_update_target", 12},
      {"Plan_insert_values", 10},   {"Plan_geqo_search", 24},
      {"Plan_geqo_crossover", 14},  {"Plan_outer_join", 18},
      {"Plan_union_all", 12},       {"Rewrite_view_rule", 14},
      // Datatype support the TPC-D columns never exercise.
      {"Type_numeric_add", 16},     {"Type_numeric_div", 20},
      {"Type_interval_cmp", 12},    {"Type_time_parse", 14},
      {"Type_timestamp_tz", 18},    {"Type_bytea_escape", 12},
      {"Type_array_subscript", 14}, {"Type_regex_compile", 26},
      {"Type_regex_exec", 22},      {"Type_locale_strcoll", 12},
      {"Type_money_format", 10},    {"Type_float_to_text", 14},
      // Index maintenance beyond the read-only workload.
      {"BT_delete_entry", 16},      {"BT_merge_nodes", 20},
      {"BT_rebalance", 18},         {"HX_shrink", 12},
      {"HX_compact_chain", 10},     {"Heap_delete_tuple", 12},
      {"Heap_update_tuple", 16},    {"Heap_compact_page", 14},
      // Operational subsystems linked into every backend.
      {"Stats_autovacuum_check", 12}, {"Stats_histogram_build", 18},
      {"Mem_context_reset", 8},     {"Mem_context_stats", 10},
      {"Guc_reload_config", 14},    {"Guc_show_all", 10},
      {"Log_rotate_file", 12},      {"Log_csv_escape", 10},
      {"Auth_md5_digest", 16},      {"Auth_check_hba", 14},
      {"Port_socket_options", 10},  {"Port_tty_detach", 8},
  };
  for (const auto& routine : cold) {
    std::vector<cfg::BlockDef> blocks;
    blocks.push_back({"entry", 8, kBr});
    for (int b = 1; b + 1 < routine.blocks; ++b) {
      // Alternate realistic shapes: straight-line work, branches, calls.
      const BlockKind kind = b % 5 == 0 ? kCall : (b % 2 == 0 ? kFall : kBr);
      const std::uint16_t insns = static_cast<std::uint16_t>(4 + (b * 7) % 19);
      // A fall-through block must precede another non-return block.
      blocks.push_back({"b" + std::to_string(b),
                        insns,
                        b + 2 == routine.blocks ? kBr : kind});
    }
    blocks.push_back({"ret", 4, kRet});
    im.add_routine(routine.name, m, std::move(blocks));
  }
}

namespace util {

std::string format_error(Kernel& kernel, ErrorCode code,
                         const std::string& detail) {
  DB_ROUTINE(kernel, "Err_format");
  DB_BB(kernel, "entry");
  const char* label = "unknown";
  DB_BB(kernel, "classify");
  switch (code) {
    case ErrorCode::kNone: label = "success"; break;
    case ErrorCode::kSyntax: label = "syntax error"; break;
    case ErrorCode::kSemantic: label = "semantic error"; break;
    case ErrorCode::kOutOfRange: label = "value out of range"; break;
    case ErrorCode::kCorruptPage: label = "corrupt page"; break;
    case ErrorCode::kBufferExhausted: label = "buffer pool exhausted"; break;
    case ErrorCode::kInternal: label = "internal error"; break;
  }
  DB_BB(kernel, "compose");
  std::string message = "ERROR ";
  message += std::to_string(static_cast<int>(code));
  message += ": ";
  message += label;
  if (!detail.empty()) {
    message += " -- ";
    message += detail;
  }
  DB_BB(kernel, "ret");
  return message;
}

std::string format_row(Kernel& kernel, const Tuple& tuple) {
  DB_ROUTINE(kernel, "Fmt_row");
  DB_BB(kernel, "entry");
  std::string out;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    DB_BB(kernel, "column");
    if (i != 0) {
      DB_BB(kernel, "sep");
      out += " | ";
    }
    out += tuple[i].to_string();
  }
  DB_BB(kernel, "ret");
  return out;
}

std::string format_money(Kernel& kernel, double amount) {
  DB_ROUTINE(kernel, "Fmt_money");
  DB_BB(kernel, "entry");
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", amount < 0 ? -amount : amount);
  std::string digits = buf;
  const std::size_t dot = digits.find('.');
  std::string grouped;
  int since = 0;
  DB_BB(kernel, "digits");
  for (std::size_t i = dot; i-- > 0;) {
    if (since == 3) {
      DB_BB(kernel, "group");
      grouped += ',';
      since = 0;
    }
    grouped += digits[i];
    ++since;
  }
  std::string out = amount < 0 ? "-$" : "$";
  out.append(grouped.rbegin(), grouped.rend());
  out += digits.substr(dot);
  DB_BB(kernel, "ret");
  return out;
}

std::unordered_map<std::string, std::string> parse_config(
    Kernel& kernel, const std::string& text) {
  DB_ROUTINE(kernel, "Cfg_parse");
  DB_BB(kernel, "entry");
  std::unordered_map<std::string, std::string> config;
  std::size_t pos = 0;
  while (pos < text.size()) {
    DB_BB(kernel, "line");
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Strip comments and whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      DB_BB(kernel, "comment");
      line.resize(hash);
    }
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t");
    line = line.substr(first, last - first + 1);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      DB_BB(kernel, "err_line");
      STC_CHECK_MSG(false, "malformed configuration line");
    }
    DB_BB(kernel, "kv");
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) {
      key.pop_back();
    }
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    config[std::move(key)] = std::move(value);
  }
  DB_BB(kernel, "ret");
  return config;
}

std::uint32_t crc32(Kernel& kernel, const std::uint8_t* data, std::size_t n) {
  DB_ROUTINE(kernel, "Crc32_compute");
  DB_BB(kernel, "entry");
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    DB_BB(kernel, "byte");
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      DB_BB(kernel, "bit");
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  DB_BB(kernel, "ret");
  return ~crc;
}

VacuumStats vacuum_table(Database& db, const std::string& table_name) {
  Kernel& k = db.kernel();
  DB_ROUTINE(k, "Vacuum_table");
  DB_BB(k, "entry");
  TableInfo* table = db.catalog().lookup(table_name);
  if (table == nullptr) {
    DB_BB(k, "err_missing");
    STC_CHECK_MSG(false, "vacuum of unknown table");
  }
  VacuumStats stats;
  const std::uint32_t file = table->heap->file_id();
  const std::uint32_t pages = db.storage().file_page_count(file);
  for (std::uint32_t p = 0; p < pages; ++p) {
    DB_BB(k, "page");
    Page& page = db.buffer().pin({file, p});
    ++stats.pages_visited;
    for (std::uint16_t s = 0; s < page.slot_count(); ++s) {
      DB_BB(k, "slot");
      std::uint16_t length = 0;
      const std::uint8_t* record = page.record(s, length);
      STC_CHECK_MSG(record != nullptr && length > 0, "empty slot in page");
      ++stats.tuples_seen;
    }
    DB_BB(k, "unpin");
    db.buffer().unpin({file, p}, false);
  }
  DB_BB(k, "ret");
  return stats;
}

AnalyzeStats analyze_table(Database& db, const std::string& table_name) {
  Kernel& k = db.kernel();
  DB_ROUTINE(k, "Analyze_table");
  DB_BB(k, "entry");
  TableInfo* table = db.catalog().lookup(table_name);
  if (table == nullptr) {
    DB_BB(k, "err_missing");
    STC_CHECK_MSG(false, "analyze of unknown table");
  }
  AnalyzeStats stats;
  stats.min_values.resize(table->schema.size());
  stats.max_values.resize(table->schema.size());
  HeapFile::Scanner scanner(*table->heap);
  Tuple tuple;
  RID rid;
  while (true) {
    DB_BB(k, "fetch");
    if (!scanner.next(tuple, rid)) break;
    DB_BB(k, "fold");
    ++stats.rows;
    for (std::size_t c = 0; c < tuple.size(); ++c) {
      if (stats.min_values[c].is_null() ||
          tuple[c].compare(stats.min_values[c]) < 0) {
        stats.min_values[c] = tuple[c];
      }
      if (stats.max_values[c].is_null() ||
          tuple[c].compare(stats.max_values[c]) > 0) {
        stats.max_values[c] = tuple[c];
      }
    }
  }
  DB_BB(k, "ret");
  return stats;
}

std::uint64_t check_table_integrity(Database& db,
                                    const std::string& table_name) {
  Kernel& k = db.kernel();
  DB_ROUTINE(k, "Check_integrity");
  DB_BB(k, "entry");
  TableInfo* table = db.catalog().lookup(table_name);
  if (table == nullptr) {
    DB_BB(k, "err_missing");
    STC_CHECK_MSG(false, "integrity check of unknown table");
  }
  std::uint64_t verified = 0;
  HeapFile::Scanner scanner(*table->heap);
  Tuple tuple;
  RID rid;
  while (true) {
    DB_BB(k, "tuple");
    if (!scanner.next(tuple, rid)) break;
    for (const IndexInfo& index : table->indexes) {
      DB_BB(k, "index");
      const Value& key = tuple[static_cast<std::size_t>(index.column)];
      DB_BB(k, "probe");
      auto cursor = index.index->seek_equal(key);
      bool found = false;
      RID candidate;
      while (true) {
        DB_BB(k, "scan");
        if (!cursor->next(candidate)) break;
        if (candidate == rid) {
          found = true;
          break;
        }
      }
      DB_BB(k, "verify");
      if (!found) {
        DB_BB(k, "err_dangling");
        STC_CHECK_MSG(false, "heap tuple missing from index");
      }
      ++verified;
    }
  }
  DB_BB(k, "ret");
  return verified;
}

}  // namespace util
}  // namespace stc::db
