#include "db/catalog.h"

#include "db/registration.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_catalog_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Cat_create_table", m,
                 {{"entry", 7, kFall},
                  {"install", 10, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("Cat_lookup", m,
                 {{"entry", 5, kBr},
                  {"probe", 8, kBr},    // per-table name comparison
                  {"found", 4, kRet},
                  {"miss", 4, kRet}});
  im.add_routine("Cat_column_resolve", m,
                 {{"entry", 5, kBr},
                  {"probe", 7, kBr},
                  {"found", 3, kRet},
                  {"miss", 3, kRet}});
}

int Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const IndexInfo* TableInfo::index_on(int column) const {
  for (const IndexInfo& info : indexes) {
    if (info.column == column) return &info;
  }
  return nullptr;
}

TableInfo& Catalog::create_table(std::string name, Schema schema,
                                 std::unique_ptr<HeapFile> heap) {
  DB_ROUTINE(kernel_, "Cat_create_table");
  DB_BB(kernel_, "entry");
  for (const auto& table : tables_) {
    STC_REQUIRE_MSG(table->name != name, "duplicate table name");
  }
  DB_BB(kernel_, "install");
  auto table = std::make_unique<TableInfo>();
  table->name = std::move(name);
  table->schema = std::move(schema);
  table->heap = std::move(heap);
  tables_.push_back(std::move(table));
  DB_BB(kernel_, "ret");
  return *tables_.back();
}

TableInfo* Catalog::lookup(const std::string& name) {
  DB_ROUTINE(kernel_, "Cat_lookup");
  DB_BB(kernel_, "entry");
  for (const auto& table : tables_) {
    DB_BB(kernel_, "probe");
    if (table->name == name) {
      DB_BB(kernel_, "found");
      return table.get();
    }
  }
  DB_BB(kernel_, "miss");
  return nullptr;
}

const TableInfo* Catalog::lookup(const std::string& name) const {
  return const_cast<Catalog*>(this)->lookup(name);
}

int resolve_column(Kernel& kernel, const Schema& schema,
                   const std::string& name) {
  DB_ROUTINE(kernel, "Cat_column_resolve");
  DB_BB(kernel, "entry");
  for (std::size_t i = 0; i < schema.size(); ++i) {
    DB_BB(kernel, "probe");
    if (schema.column(i).name == name) {
      DB_BB(kernel, "found");
      return static_cast<int>(i);
    }
  }
  DB_BB(kernel, "miss");
  return -1;
}

}  // namespace stc::db
