// Dispatchers, scan/filter/project/limit/materialize operators, factory.
#include "db/exec.h"

#include "db/btree.h"
#include "db/exec_internal.h"
#include "db/hash_index.h"
#include "support/check.h"

namespace stc::db {

void Operator::rewind() {
  STC_CHECK_MSG(false, "operator does not support rewind");
}

// ---- instrumented dispatchers ----------------------------------------------

void exec_open(Kernel& k, Operator& op) {
  DB_ROUTINE(k, "Exec_open_node");
  DB_BB(k, "entry");
  DB_BB(k, "dispatch");
  op.open();
  DB_BB(k, "ret");
}

bool exec_next(Kernel& k, Operator& op, Tuple& out) {
  DB_ROUTINE(k, "Exec_proc_node");
  DB_BB(k, "entry");
  DB_BB(k, "dispatch");
  const bool produced = op.next(out);
  DB_BB(k, "ret");
  return produced;
}

void exec_close(Kernel& k, Operator& op) {
  DB_ROUTINE(k, "Exec_close_node");
  DB_BB(k, "entry");
  DB_BB(k, "dispatch");
  op.close();
  DB_BB(k, "ret");
}

void exec_rewind(Kernel& k, Operator& op) {
  DB_ROUTINE(k, "Exec_rewind_node");
  DB_BB(k, "entry");
  DB_BB(k, "dispatch");
  op.rewind();
  DB_BB(k, "ret");
}

namespace detail {
namespace {

// ---- SeqScan ----------------------------------------------------------------

class SeqScanOp final : public Operator {
 public:
  SeqScanOp(Kernel& k, const PlanNode& plan) : k_(k), plan_(plan) {}

  void open() override {
    scanner_.emplace(*plan_.table->heap);
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_seqscan_next");
    DB_BB(k_, "entry");
    RID rid;
    while (true) {
      DB_BB(k_, "fetch");
      if (!scanner_->next(out, rid)) {
        DB_BB(k_, "eof_ret");
        return false;
      }
      if (plan_.qual != nullptr) {
        DB_BB(k_, "qual");
        if (!eval_predicate(k_, *plan_.qual, out)) continue;
      }
      DB_BB(k_, "emit");
      DB_BB(k_, "ret");
      return true;
    }
  }

  void close() override { scanner_.reset(); }
  void rewind() override { scanner_.emplace(*plan_.table->heap); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::optional<HeapFile::Scanner> scanner_;
};

// ---- IndexScan --------------------------------------------------------------

class IndexScanOp final : public Operator {
 public:
  IndexScanOp(Kernel& k, const PlanNode& plan) : k_(k), plan_(plan) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_idxscan_open");
    DB_BB(k_, "entry");
    Index* index = plan_.index->index.get();
    if (index->kind() == IndexKind::kBTree) {
      DB_BB(k_, "seek_btree");
      cursor_ = static_cast<BTreeIndex*>(index)->seek_range(
          plan_.lo, plan_.lo_inclusive, plan_.hi, plan_.hi_inclusive);
    } else {
      // Hash indices support equality probes only; the planner guarantees
      // lo == hi for hash index scans.
      STC_REQUIRE(plan_.lo.has_value() && plan_.hi.has_value() &&
                  plan_.lo->compare(*plan_.hi) == 0);
      DB_BB(k_, "seek_hash");
      cursor_ = index->seek_equal(*plan_.lo);
    }
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_idxscan_next");
    DB_BB(k_, "entry");
    RID rid;
    while (true) {
      DB_BB(k_, "cursor");
      if (!cursor_->next(rid)) {
        DB_BB(k_, "eof_ret");
        return false;
      }
      DB_BB(k_, "fetch");
      plan_.table->heap->get(rid, out);
      if (plan_.qual != nullptr) {
        DB_BB(k_, "qual");
        if (!eval_predicate(k_, *plan_.qual, out)) continue;
      }
      DB_BB(k_, "emit");
      DB_BB(k_, "ret");
      return true;
    }
  }

  void close() override { cursor_.reset(); }
  void rewind() override { open(); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<IndexCursor> cursor_;
};

// ---- Filter (Qualify) --------------------------------------------------------

class FilterOp final : public Operator {
 public:
  FilterOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> child)
      : k_(k), plan_(plan), child_(std::move(child)) {}

  void open() override { exec_open(k_, *child_); }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_qual_next");
    DB_BB(k_, "entry");
    while (true) {
      DB_BB(k_, "child");
      if (!exec_next(k_, *child_, out)) {
        DB_BB(k_, "eof_ret");
        return false;
      }
      DB_BB(k_, "qual");
      if (!eval_predicate(k_, *plan_.qual, out)) continue;
      DB_BB(k_, "emit");
      DB_BB(k_, "ret");
      return true;
    }
  }

  void close() override { exec_close(k_, *child_); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> child_;
};

// ---- Project -----------------------------------------------------------------

class ProjectOp final : public Operator {
 public:
  ProjectOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> child)
      : k_(k), plan_(plan), child_(std::move(child)) {}

  void open() override { exec_open(k_, *child_); }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_project_next");
    DB_BB(k_, "entry");
    if (!exec_next(k_, *child_, input_)) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    out.clear();
    out.reserve(plan_.exprs.size());
    for (const auto& expr : plan_.exprs) {
      DB_BB(k_, "col_loop");
      DB_BB(k_, "eval");
      out.push_back(eval_expr(k_, *expr, input_));
    }
    DB_BB(k_, "ret");
    return true;
  }

  void close() override { exec_close(k_, *child_); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> child_;
  Tuple input_;
};

// ---- Limit -------------------------------------------------------------------

class LimitOp final : public Operator {
 public:
  LimitOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> child)
      : k_(k), plan_(plan), child_(std::move(child)) {}

  void open() override {
    produced_ = 0;
    exec_open(k_, *child_);
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_limit_next");
    DB_BB(k_, "entry");
    if (produced_ >= plan_.limit) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    DB_BB(k_, "child");
    if (!exec_next(k_, *child_, out)) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    ++produced_;
    DB_BB(k_, "ret");
    return true;
  }

  void close() override { exec_close(k_, *child_); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> child_;
  std::uint64_t produced_ = 0;
};

// ---- Materialize ---------------------------------------------------------------

class MaterializeOp final : public Operator {
 public:
  MaterializeOp(Kernel& k, std::unique_ptr<Operator> child)
      : k_(k), child_(std::move(child)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_material_open");
    DB_BB(k_, "entry");
    exec_open(k_, *child_);
    rows_.clear();
    Tuple tuple;
    while (true) {
      DB_BB(k_, "fetch");
      if (!exec_next(k_, *child_, tuple)) break;
      DB_BB(k_, "store");
      rows_.push_back(tuple);
    }
    DB_BB(k_, "close_child");
    exec_close(k_, *child_);
    pos_ = 0;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_material_next");
    DB_BB(k_, "entry");
    if (pos_ >= rows_.size()) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    DB_BB(k_, "emit");
    out = rows_[pos_++];
    DB_BB(k_, "ret");
    return true;
  }

  void close() override {}
  void rewind() override { pos_ = 0; }

 private:
  Kernel& k_;
  std::unique_ptr<Operator> child_;
  std::vector<Tuple> rows_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Operator> make_scan_op(Kernel& k, const PlanNode& plan) {
  if (plan.kind == PlanKind::kSeqScan) {
    return std::make_unique<SeqScanOp>(k, plan);
  }
  return std::make_unique<IndexScanOp>(k, plan);
}

std::unique_ptr<Operator> make_filter_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<FilterOp>(k, plan, make_operator(k, *plan.children[0]));
}

std::unique_ptr<Operator> make_project_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<ProjectOp>(k, plan,
                                     make_operator(k, *plan.children[0]));
}

std::unique_ptr<Operator> make_limit_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<LimitOp>(k, plan, make_operator(k, *plan.children[0]));
}

std::unique_ptr<Operator> make_materialize_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<MaterializeOp>(k, make_operator(k, *plan.children[0]));
}

}  // namespace detail

std::unique_ptr<Operator> make_operator(Kernel& kernel, const PlanNode& plan) {
  switch (plan.kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
      return detail::make_scan_op(kernel, plan);
    case PlanKind::kFilter:
      return detail::make_filter_op(kernel, plan);
    case PlanKind::kProject:
      return detail::make_project_op(kernel, plan);
    case PlanKind::kLimit:
      return detail::make_limit_op(kernel, plan);
    case PlanKind::kMaterialize:
      return detail::make_materialize_op(kernel, plan);
    case PlanKind::kNLJoin:
    case PlanKind::kIndexNLJoin:
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      return detail::make_join_op(kernel, plan);
    case PlanKind::kSort:
      return detail::make_sort_op(kernel, plan);
    case PlanKind::kAggregate:
      return detail::make_aggregate_op(kernel, plan);
  }
  STC_CHECK_MSG(false, "unknown plan kind");
  return nullptr;
}

std::vector<Tuple> run_plan(Kernel& kernel, const PlanNode& plan) {
  std::unique_ptr<Operator> root = make_operator(kernel, plan);
  std::vector<Tuple> rows;
  DB_ROUTINE(kernel, "Exec_run_query");
  DB_BB(kernel, "entry");
  exec_open(kernel, *root);
  Tuple tuple;
  while (true) {
    DB_BB(kernel, "pull");
    const bool produced = exec_next(kernel, *root, tuple);
    DB_BB(kernel, "collect");
    if (!produced) break;
    rows.push_back(tuple);
  }
  DB_BB(kernel, "shutdown");
  exec_close(kernel, *root);
  DB_BB(kernel, "ret");
  return rows;
}

}  // namespace stc::db
