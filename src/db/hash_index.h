// Hash index: a directory of buckets with chained entries and load-factor
// driven directory doubling. Supports equality lookups only (the paper's
// Hash-indexed database variant).
#pragma once

#include <memory>
#include <vector>

#include "db/index.h"
#include "db/kernel.h"

namespace stc::db {

class HashIndex final : public Index {
 public:
  explicit HashIndex(Kernel& kernel, std::size_t initial_buckets = 16);

  IndexKind kind() const override { return IndexKind::kHash; }
  std::uint64_t entry_count() const override { return entries_; }

  void insert(const Value& key, RID rid) override;
  std::unique_ptr<IndexCursor> seek_equal(const Value& key) override;

  std::size_t bucket_count() const { return buckets_.size(); }

  // Invariant checker for tests: every entry hashes to its bucket.
  void check_invariants() const;

 private:
  struct Entry {
    std::uint64_t hash;
    Value key;
    RID rid;
  };
  class EqualCursor;

  static constexpr double kMaxLoadFactor = 1.5;

  std::uint64_t hash_key(const Value& key) const;
  void maybe_grow();

  Kernel& kernel_;
  std::vector<std::vector<Entry>> buckets_;
  std::uint64_t entries_ = 0;
};

}  // namespace stc::db
