// Kernel image and execution context of the database engine.
//
// The engine plays the role PostgreSQL 6.3.2 played in the paper: a program
// whose routines and basic blocks are known statically and whose execution
// emits a dynamic basic-block trace. Every engine routine registers its
// blocks in the singleton kernel ProgramImage (see kernel.cpp for the module
// registration order, which defines the "orig" layout), and marks execution
// with the DB_ROUTINE / DB_BB macros below.
//
// A Kernel object is one "backend process": it owns the ExecContext whose
// sink receives the block stream. Multiple Database instances can run
// against the same (immutable) kernel image.
#pragma once

#include "cfg/exec.h"
#include "cfg/program.h"

namespace stc::db {

// The engine's program image, built on first use from all module
// registration functions. Immutable afterwards.
const cfg::ProgramImage& kernel_image();

class Kernel {
 public:
  Kernel() : exec_(kernel_image()) {}

  cfg::ExecContext& exec() { return exec_; }
  const cfg::ProgramImage& image() const { return kernel_image(); }

  void set_sink(cfg::TraceSink* sink) { exec_.set_sink(sink); }

 private:
  cfg::ExecContext exec_;
};

}  // namespace stc::db

// Opens the instrumented scope of routine `name` (a string literal matching
// the registered routine). Place at the top of the function body.
#define DB_ROUTINE(kernel_ref, name)                                     \
  static const ::stc::cfg::RoutineId _stc_rt =                           \
      ::stc::db::kernel_image().routine_id(name);                        \
  ::stc::cfg::RoutineScope _stc_scope((kernel_ref).exec(), _stc_rt)

// Marks entry into basic block `bname` of the current routine. The lookup is
// resolved once per call site.
#define DB_BB(kernel_ref, bname)                                         \
  do {                                                                   \
    static const ::stc::cfg::BlockId _stc_bb =                           \
        ::stc::db::kernel_image().block_id(_stc_rt, bname);              \
    (kernel_ref).exec().bb(_stc_bb);                                     \
  } while (0)
