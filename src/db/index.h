// Access-method index interface. The paper's setup (Section 3) builds two
// databases, one with Btree indices and one with Hash indices; the executor
// reaches both through this interface.
#pragma once

#include <memory>

#include "db/heap.h"
#include "db/value.h"

namespace stc::db {

enum class IndexKind : std::uint8_t { kBTree, kHash };

inline const char* to_string(IndexKind kind) {
  return kind == IndexKind::kBTree ? "btree" : "hash";
}

// Pull-style cursor over the RIDs an index lookup produced.
class IndexCursor {
 public:
  virtual ~IndexCursor() = default;
  virtual bool next(RID& rid) = 0;
};

class Index {
 public:
  virtual ~Index() = default;

  virtual IndexKind kind() const = 0;
  virtual std::uint64_t entry_count() const = 0;

  virtual void insert(const Value& key, RID rid) = 0;

  // All RIDs whose key equals `key`.
  virtual std::unique_ptr<IndexCursor> seek_equal(const Value& key) = 0;
};

}  // namespace stc::db
