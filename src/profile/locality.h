// Locality analyses reproducing Section 4 of the paper.
//
//  - FootprintStats          -> Table 1 (static vs executed program elements)
//  - cumulative_reference_curve -> Figure 2 (refs captured by top-N blocks)
//  - ReuseDistanceStats      -> Section 4.1 (re-reference distance in insns)
//  - BlockTypeStats          -> Table 2 (block kinds and determinism)
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/program.h"
#include "profile/profile.h"
#include "support/stats.h"
#include "trace/block_trace.h"

namespace stc::profile {

// ---- Table 1 ---------------------------------------------------------------
struct FootprintStats {
  std::uint64_t total_routines = 0;
  std::uint64_t executed_routines = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t executed_blocks = 0;
  std::uint64_t total_instructions = 0;   // static instruction count
  std::uint64_t executed_instructions = 0;  // static insns of executed blocks

  double routine_fraction() const;
  double block_fraction() const;
  double instruction_fraction() const;
};

FootprintStats footprint(const Profile& profile);

// ---- Figure 2 --------------------------------------------------------------
// Point (n, f): the n most popular static blocks capture fraction f of all
// dynamic block references.
struct CumulativePoint {
  std::uint64_t blocks;
  double fraction;
};

// Returns the full curve (one point per executed static block, popularity
// order). Use sample_curve() to extract specific x positions for printing.
std::vector<double> cumulative_reference_curve(const Profile& profile);

std::vector<CumulativePoint> sample_curve(const std::vector<double>& curve,
                                          const std::vector<std::uint64_t>& xs);

// Smallest number of top blocks needed to reach `fraction` of references.
std::uint64_t blocks_for_fraction(const std::vector<double>& curve,
                                  double fraction);

// ---- Section 4.1 -----------------------------------------------------------
struct ReuseDistanceStats {
  // Histogram of instruction distances between consecutive invocations of the
  // same block, restricted to the most popular blocks that jointly cover
  // `coverage` of the dynamic references (the paper uses 75%).
  BoundedHistogram histogram{std::vector<std::uint64_t>{}};
  std::uint64_t hot_blocks = 0;
  double coverage = 0.0;

  double fraction_below(std::uint64_t insns) const {
    return histogram.fraction_below(insns);
  }
};

ReuseDistanceStats reuse_distances(const trace::BlockTrace& trace,
                                   const Profile& profile,
                                   double coverage = 0.75);

// ---- Table 2 ---------------------------------------------------------------
struct BlockTypeRow {
  double static_fraction = 0.0;   // of executed static blocks
  double dynamic_fraction = 0.0;  // of dynamic block events
  double predictable = 0.0;       // dynamically-weighted fixed-behaviour share
};

struct BlockTypeStats {
  BlockTypeRow by_kind[4];  // indexed by cfg::BlockKind
  double overall_predictable = 0.0;
};

// A block "behaves in a fixed way" when its most frequent successor accounts
// for at least `fixed_threshold` of its dynamic transitions. The paper treats
// always-taken / always-not-taken branches as fixed; 0.999 captures that while
// tolerating trace-boundary artifacts. Return blocks are counted predictable
// unconditionally when `ras_returns` is set: the paper's 100% reflects a
// return-address stack, which predicts the target regardless of how many
// call sites exist.
BlockTypeStats block_type_stats(const Profile& profile,
                                double fixed_threshold = 0.999,
                                bool ras_returns = true);

}  // namespace stc::profile
