// Profile collection: per-block execution counts and weighted transitions.
//
// The paper instruments the database, runs the Training set, and obtains "a
// directed control flow graph with weighted edges" (Section 5). Profile is
// that collector; WeightedCFG is the derived adjacency structure the layout
// algorithms consume.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cfg/exec.h"
#include "cfg/program.h"
#include "cfg/types.h"
#include "trace/block_trace.h"

namespace stc::profile {

class Profile final : public cfg::TraceSink {
 public:
  explicit Profile(const cfg::ProgramImage& image);

  // TraceSink: consume one dynamic block event.
  void on_block(cfg::BlockId block) override;

  // Cuts the transition chain so that the next event does not create an edge
  // from the previous one (used between independent workload runs).
  void break_chain() { last_ = cfg::kInvalidBlock; }

  // Convenience: accumulate an already-recorded trace.
  void consume(const trace::BlockTrace& trace);

  const cfg::ProgramImage& image() const { return image_; }

  std::uint64_t block_count(cfg::BlockId block) const {
    return block_count_[block];
  }
  const std::vector<std::uint64_t>& block_counts() const {
    return block_count_;
  }

  std::uint64_t total_block_events() const { return total_events_; }
  std::uint64_t total_instructions() const { return total_insns_; }

  struct Edge {
    cfg::BlockId from;
    cfg::BlockId to;
    std::uint64_t count;
  };
  // All observed transitions (unordered).
  std::vector<Edge> edges() const;

  std::uint64_t edge_count(cfg::BlockId from, cfg::BlockId to) const;

 private:
  static std::uint64_t key(cfg::BlockId from, cfg::BlockId to) {
    return (std::uint64_t{from} << 32) | to;
  }

  const cfg::ProgramImage& image_;
  std::vector<std::uint64_t> block_count_;
  std::unordered_map<std::uint64_t, std::uint64_t> edge_count_;
  cfg::BlockId last_ = cfg::kInvalidBlock;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_insns_ = 0;
};

// Successor-adjacency view of a Profile, sorted by decreasing edge count.
// This is the input representation of every layout algorithm.
struct WeightedCFG {
  struct Succ {
    cfg::BlockId to;
    std::uint64_t count;
  };

  const cfg::ProgramImage* image = nullptr;
  std::vector<std::uint64_t> block_count;
  std::vector<std::vector<Succ>> succs;  // indexed by BlockId, desc by count

  static WeightedCFG from_profile(const Profile& profile);

  // Sums per-block and per-edge counts across CFGs over the same image —
  // the combined view of several tenants' profiles that the shared later
  // passes of a tenant-partitioned layout are built from.
  static WeightedCFG merge(const std::vector<const WeightedCFG*>& parts);

  // Probability of the transition from -> succ given `from` executed.
  double transition_prob(cfg::BlockId from, const Succ& succ) const {
    const std::uint64_t total = block_count[from];
    return total == 0 ? 0.0
                      : static_cast<double>(succ.count) /
                            static_cast<double>(total);
  }
};

}  // namespace stc::profile
