#include "profile/profile.h"

#include <algorithm>

#include "support/check.h"

namespace stc::profile {

Profile::Profile(const cfg::ProgramImage& image)
    : image_(image), block_count_(image.num_blocks(), 0) {
  STC_REQUIRE(image.finalized());
}

void Profile::on_block(cfg::BlockId block) {
  STC_DCHECK(block < block_count_.size());
  ++block_count_[block];
  ++total_events_;
  total_insns_ += image_.block(block).insns;
  if (last_ != cfg::kInvalidBlock) ++edge_count_[key(last_, block)];
  last_ = block;
}

void Profile::consume(const trace::BlockTrace& trace) {
  trace.for_each([this](cfg::BlockId block) { on_block(block); });
}

std::vector<Profile::Edge> Profile::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count_.size());
  for (const auto& [k, count] : edge_count_) {
    result.push_back({static_cast<cfg::BlockId>(k >> 32),
                      static_cast<cfg::BlockId>(k & 0xffffffffu), count});
  }
  return result;
}

std::uint64_t Profile::edge_count(cfg::BlockId from, cfg::BlockId to) const {
  const auto it = edge_count_.find(key(from, to));
  return it == edge_count_.end() ? 0 : it->second;
}

WeightedCFG WeightedCFG::from_profile(const Profile& profile) {
  WeightedCFG cfg;
  cfg.image = &profile.image();
  cfg.block_count = profile.block_counts();
  cfg.succs.resize(cfg.block_count.size());
  for (const Profile::Edge& edge : profile.edges()) {
    cfg.succs[edge.from].push_back({edge.to, edge.count});
  }
  for (auto& list : cfg.succs) {
    std::sort(list.begin(), list.end(), [](const Succ& a, const Succ& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.to < b.to;  // deterministic tie-break
    });
  }
  return cfg;
}

WeightedCFG WeightedCFG::merge(const std::vector<const WeightedCFG*>& parts) {
  STC_REQUIRE(!parts.empty());
  WeightedCFG merged;
  merged.image = parts.front()->image;
  merged.block_count.assign(parts.front()->block_count.size(), 0);
  merged.succs.resize(merged.block_count.size());
  // Accumulate edge counts per source block, then restore the descending
  // sort order from_profile guarantees.
  std::vector<std::unordered_map<cfg::BlockId, std::uint64_t>> edges(
      merged.block_count.size());
  for (const WeightedCFG* part : parts) {
    STC_REQUIRE(part->image == merged.image);
    STC_REQUIRE(part->block_count.size() == merged.block_count.size());
    for (std::size_t b = 0; b < part->block_count.size(); ++b) {
      merged.block_count[b] += part->block_count[b];
      for (const Succ& succ : part->succs[b]) {
        edges[b][succ.to] += succ.count;
      }
    }
  }
  for (std::size_t b = 0; b < edges.size(); ++b) {
    merged.succs[b].reserve(edges[b].size());
    for (const auto& [to, count] : edges[b]) {
      merged.succs[b].push_back({to, count});
    }
    std::sort(merged.succs[b].begin(), merged.succs[b].end(),
              [](const Succ& a, const Succ& c) {
                if (a.count != c.count) return a.count > c.count;
                return a.to < c.to;  // deterministic tie-break
              });
  }
  return merged;
}

}  // namespace stc::profile
