#include "profile/locality.h"

#include <algorithm>

#include "support/check.h"

namespace stc::profile {
namespace {

double safe_div(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

// Block ids sorted by decreasing dynamic count, executed blocks only.
std::vector<cfg::BlockId> blocks_by_popularity(const Profile& profile) {
  std::vector<cfg::BlockId> ids;
  const auto& counts = profile.block_counts();
  for (cfg::BlockId b = 0; b < counts.size(); ++b) {
    if (counts[b] > 0) ids.push_back(b);
  }
  std::sort(ids.begin(), ids.end(), [&](cfg::BlockId a, cfg::BlockId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  return ids;
}

}  // namespace

double FootprintStats::routine_fraction() const {
  return safe_div(executed_routines, total_routines);
}
double FootprintStats::block_fraction() const {
  return safe_div(executed_blocks, total_blocks);
}
double FootprintStats::instruction_fraction() const {
  return safe_div(executed_instructions, total_instructions);
}

FootprintStats footprint(const Profile& profile) {
  const cfg::ProgramImage& image = profile.image();
  FootprintStats stats;
  stats.total_routines = image.num_routines();
  stats.total_blocks = image.num_blocks();
  stats.total_instructions = image.total_instructions();

  std::vector<bool> routine_executed(image.num_routines(), false);
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    if (profile.block_count(b) == 0) continue;
    ++stats.executed_blocks;
    stats.executed_instructions += image.block(b).insns;
    routine_executed[image.block(b).routine] = true;
  }
  for (bool executed : routine_executed) {
    if (executed) ++stats.executed_routines;
  }
  return stats;
}

std::vector<double> cumulative_reference_curve(const Profile& profile) {
  const auto ids = blocks_by_popularity(profile);
  const double total = static_cast<double>(profile.total_block_events());
  std::vector<double> curve;
  curve.reserve(ids.size());
  double acc = 0.0;
  for (cfg::BlockId b : ids) {
    acc += static_cast<double>(profile.block_count(b));
    curve.push_back(total == 0.0 ? 0.0 : acc / total);
  }
  return curve;
}

std::vector<CumulativePoint> sample_curve(
    const std::vector<double>& curve, const std::vector<std::uint64_t>& xs) {
  std::vector<CumulativePoint> points;
  points.reserve(xs.size());
  for (std::uint64_t x : xs) {
    if (curve.empty()) {
      points.push_back({x, 0.0});
      continue;
    }
    const std::size_t idx =
        std::min<std::size_t>(x == 0 ? 0 : x - 1, curve.size() - 1);
    points.push_back({x, x == 0 ? 0.0 : curve[idx]});
  }
  return points;
}

std::uint64_t blocks_for_fraction(const std::vector<double>& curve,
                                  double fraction) {
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] >= fraction) return i + 1;
  }
  return curve.size();
}

ReuseDistanceStats reuse_distances(const trace::BlockTrace& trace,
                                   const Profile& profile, double coverage) {
  STC_REQUIRE(coverage > 0.0 && coverage <= 1.0);
  const cfg::ProgramImage& image = profile.image();

  // Hot set: most popular blocks jointly covering `coverage` of references.
  const auto ids = blocks_by_popularity(profile);
  std::vector<bool> hot(image.num_blocks(), false);
  const double total = static_cast<double>(profile.total_block_events());
  double acc = 0.0;
  std::uint64_t hot_count = 0;
  for (cfg::BlockId b : ids) {
    hot[b] = true;
    ++hot_count;
    acc += static_cast<double>(profile.block_count(b));
    if (total > 0.0 && acc / total >= coverage) break;
  }

  ReuseDistanceStats stats;
  stats.hot_blocks = hot_count;
  stats.coverage = total > 0.0 ? acc / total : 0.0;
  stats.histogram = BoundedHistogram(
      {25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 100000, 1000000});

  std::vector<std::uint64_t> last_seen(image.num_blocks(),
                                       ~std::uint64_t{0});
  std::uint64_t insn_clock = 0;
  trace.for_each([&](cfg::BlockId b) {
    if (hot[b]) {
      if (last_seen[b] != ~std::uint64_t{0}) {
        stats.histogram.add(insn_clock - last_seen[b]);
      }
      last_seen[b] = insn_clock;
    }
    insn_clock += image.block(b).insns;
  });
  return stats;
}

BlockTypeStats block_type_stats(const Profile& profile,
                                double fixed_threshold, bool ras_returns) {
  const cfg::ProgramImage& image = profile.image();
  const WeightedCFG wcfg = WeightedCFG::from_profile(profile);

  std::uint64_t static_by_kind[4] = {0, 0, 0, 0};
  std::uint64_t dynamic_by_kind[4] = {0, 0, 0, 0};
  std::uint64_t fixed_by_kind[4] = {0, 0, 0, 0};
  std::uint64_t static_total = 0;
  std::uint64_t dynamic_total = 0;
  std::uint64_t fixed_total = 0;

  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    const std::uint64_t count = profile.block_count(b);
    if (count == 0) continue;
    const auto kind = static_cast<std::size_t>(image.block(b).kind);
    ++static_by_kind[kind];
    ++static_total;
    dynamic_by_kind[kind] += count;
    dynamic_total += count;

    // Transition determinism, weighted by dynamic execution count. The last
    // event of a trace has no successor; use the successor total as base.
    std::uint64_t out_total = 0;
    std::uint64_t out_best = 0;
    for (const auto& succ : wcfg.succs[b]) {
      out_total += succ.count;
      out_best = std::max(out_best, succ.count);
    }
    const bool is_ras_return =
        ras_returns && image.block(b).kind == cfg::BlockKind::kReturn;
    const bool fixed =
        is_ras_return || out_total == 0 ||
        static_cast<double>(out_best) >=
            fixed_threshold * static_cast<double>(out_total);
    if (fixed) {
      fixed_by_kind[kind] += count;
      fixed_total += count;
    }
  }

  BlockTypeStats stats;
  for (std::size_t k = 0; k < 4; ++k) {
    stats.by_kind[k].static_fraction = safe_div(static_by_kind[k], static_total);
    stats.by_kind[k].dynamic_fraction =
        safe_div(dynamic_by_kind[k], dynamic_total);
    stats.by_kind[k].predictable =
        safe_div(fixed_by_kind[k], dynamic_by_kind[k]);
  }
  stats.overall_predictable = safe_div(fixed_total, dynamic_total);
  return stats;
}

}  // namespace stc::profile
