#include "cfg/program.h"

#include <algorithm>

#include "support/check.h"

namespace stc::cfg {
namespace {

std::uint64_t align_up(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

std::string qualified(RoutineId routine, std::string_view block_name) {
  std::string key = std::to_string(routine);
  key += '.';
  key.append(block_name);
  return key;
}

}  // namespace

ProgramImage::ProgramImage(std::uint32_t routine_align)
    : routine_align_(routine_align) {
  STC_REQUIRE_MSG(routine_align >= kInsnBytes &&
                      (routine_align & (routine_align - 1)) == 0,
                  "routine alignment must be a power of two >= 4");
}

ModuleId ProgramImage::add_module(std::string name) {
  STC_REQUIRE_MSG(!finalized_, "add_module after finalize");
  STC_REQUIRE(!name.empty());
  modules_.push_back(std::move(name));
  return static_cast<ModuleId>(modules_.size() - 1);
}

RoutineId ProgramImage::add_routine(std::string name, ModuleId module,
                                    std::vector<BlockDef> blocks,
                                    bool executor_op) {
  STC_REQUIRE_MSG(!finalized_, "add_routine after finalize");
  STC_REQUIRE(module < modules_.size());
  STC_REQUIRE_MSG(!blocks.empty(), "routine needs at least one block");
  STC_REQUIRE_MSG(routine_by_name_.find(name) == routine_by_name_.end(),
                  "duplicate routine name");

  const RoutineId rid = static_cast<RoutineId>(routines_.size());
  RoutineInfo info;
  info.name = name;
  info.module = module;
  info.entry = static_cast<BlockId>(blocks_.size());
  info.num_blocks = static_cast<std::uint32_t>(blocks.size());
  info.executor_op = executor_op;

  std::uint32_t routine_bytes = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    BlockDef& def = blocks[i];
    STC_REQUIRE_MSG(def.insns >= 1, "block must have at least one instruction");
    const BlockId bid = static_cast<BlockId>(blocks_.size());
    const auto [it, inserted] =
        block_by_qualified_name_.emplace(qualified(rid, def.name), bid);
    (void)it;
    STC_REQUIRE_MSG(inserted, "duplicate block name within routine");
    BlockInfo binfo;
    binfo.name = std::move(def.name);
    binfo.routine = rid;
    binfo.index_in_routine = static_cast<std::uint32_t>(i);
    binfo.insns = def.insns;
    binfo.kind = def.kind;
    routine_bytes += std::uint32_t{def.insns} * kInsnBytes;
    total_insns_ += def.insns;
    blocks_.push_back(std::move(binfo));
  }
  info.bytes = routine_bytes;
  routine_by_name_.emplace(std::move(name), rid);
  routines_.push_back(std::move(info));
  return rid;
}

void ProgramImage::finalize() {
  STC_REQUIRE_MSG(!finalized_, "finalize called twice");
  // Modules were registered in order; routines carry registration order
  // already, so a single pass assigns addresses module-by-module in that
  // order, mimicking object files concatenated by a linker.
  std::uint64_t cursor = 0;
  for (ModuleId m = 0; m < modules_.size(); ++m) {
    for (auto& routine : routines_) {
      if (routine.module != m) continue;
      cursor = align_up(cursor, routine_align_);
      routine.orig_addr = cursor;
      for (std::uint32_t i = 0; i < routine.num_blocks; ++i) {
        BlockInfo& block = blocks_[routine.entry + i];
        block.orig_addr = cursor;
        cursor += block.bytes();
      }
    }
  }
  image_bytes_ = cursor;
  finalized_ = true;
}

const std::string& ProgramImage::module_name(ModuleId m) const {
  STC_REQUIRE(m < modules_.size());
  return modules_[m];
}

const RoutineInfo& ProgramImage::routine(RoutineId r) const {
  STC_REQUIRE(r < routines_.size());
  return routines_[r];
}

const BlockInfo& ProgramImage::block(BlockId b) const {
  STC_REQUIRE(b < blocks_.size());
  return blocks_[b];
}

RoutineId ProgramImage::routine_id(std::string_view name) const {
  const auto it = routine_by_name_.find(std::string(name));
  STC_REQUIRE_MSG(it != routine_by_name_.end(), "unknown routine name");
  return it->second;
}

BlockId ProgramImage::block_id(RoutineId routine,
                               std::string_view block_name) const {
  const auto it = block_by_qualified_name_.find(qualified(routine, block_name));
  STC_REQUIRE_MSG(it != block_by_qualified_name_.end(), "unknown block name");
  return it->second;
}

std::vector<RoutineId> ProgramImage::routines_in_order() const {
  std::vector<RoutineId> order(routines_.size());
  for (RoutineId r = 0; r < routines_.size(); ++r) order[r] = r;
  std::stable_sort(order.begin(), order.end(), [this](RoutineId a, RoutineId b) {
    return routines_[a].orig_addr < routines_[b].orig_addr;
  });
  return order;
}

}  // namespace stc::cfg
