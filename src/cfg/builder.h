// Convenience builder for constructing small programs in tests and examples.
//
// Allows terse declaration of routines and provides a fluent way to fabricate
// synthetic weighted CFGs (used heavily by the layout property tests).
#pragma once

#include <initializer_list>
#include <memory>
#include <string>

#include "cfg/program.h"

namespace stc::cfg {

class ProgramBuilder {
 public:
  ProgramBuilder() : image_(std::make_unique<ProgramImage>()) {}

  ModuleId module(std::string name) { return image_->add_module(std::move(name)); }

  RoutineId routine(std::string name, ModuleId module,
                    std::initializer_list<BlockDef> blocks,
                    bool executor_op = false) {
    return image_->add_routine(std::move(name), module,
                               std::vector<BlockDef>(blocks), executor_op);
  }

  RoutineId routine(std::string name, ModuleId module,
                    std::vector<BlockDef> blocks, bool executor_op = false) {
    return image_->add_routine(std::move(name), module, std::move(blocks),
                               executor_op);
  }

  // Finalizes and transfers ownership of the image.
  std::unique_ptr<ProgramImage> build() {
    image_->finalize();
    return std::move(image_);
  }

 private:
  std::unique_ptr<ProgramImage> image_;
};

}  // namespace stc::cfg
