#include "cfg/exec.h"

namespace stc::cfg {

void ExecContext::enter(RoutineId routine) {
  if (validate_) {
    STC_REQUIRE(routine < image_.num_routines());
    if (!stack_.empty()) {
      // A nested activation must come from a call block of the caller.
      STC_CHECK_MSG(last_block_ != kInvalidBlock,
                    "routine entered before any block of the caller executed");
      STC_CHECK_MSG(image_.block(last_block_).kind == BlockKind::kCall,
                    "routine entered from a non-call block");
    }
  }
  stack_.push_back({routine, false});
}

void ExecContext::leave() {
  if (validate_) {
    STC_CHECK_MSG(!stack_.empty(), "leave without matching enter");
    const Frame& frame = stack_.back();
    if (frame.entered) {
      // The last executed block of this activation must be a return block.
      STC_CHECK_MSG(last_block_ != kInvalidBlock &&
                        image_.block(last_block_).routine == frame.routine &&
                        image_.block(last_block_).kind == BlockKind::kReturn,
                    "routine left from a non-return block");
    }
  }
  stack_.pop_back();
  // After a return, control resumes in the caller; the next bb() call will be
  // a block of the routine on top of the stack (checked by validate_block).
}

void ExecContext::validate_block(BlockId block) {
  STC_CHECK_MSG(!stack_.empty(), "bb() outside any RoutineScope");
  STC_REQUIRE(block < image_.num_blocks());
  const BlockInfo& info = image_.block(block);
  Frame& frame = stack_.back();
  STC_CHECK_MSG(info.routine == frame.routine,
                "bb() for a block of a different routine");
  if (!frame.entered) {
    STC_CHECK_MSG(block == image_.routine(frame.routine).entry,
                  "first block of an activation must be the routine entry");
    frame.entered = true;
    return;
  }
  // Fall-through blocks have exactly one static successor: the next block of
  // the same routine.
  if (last_block_ != kInvalidBlock) {
    const BlockInfo& prev = image_.block(last_block_);
    if (prev.routine == frame.routine &&
        prev.kind == BlockKind::kFallThrough) {
      STC_CHECK_MSG(block == last_block_ + 1,
                    "fall-through block not followed by its static successor");
    }
  }
}

}  // namespace stc::cfg
