// Execution runtime for instrumented kernels.
//
// Instrumented routine bodies are ordinary C++ functions that (a) open a
// RoutineScope on entry and (b) mark each basic-block region with
// ExecContext::bb(). The context emits the dynamic block stream to a
// TraceSink — the same stream ATOM-style instrumentation produced for the
// paper — and, when validation is enabled, enforces the instrumentation
// discipline (entry block first, return block last, fall-through blocks
// followed by their static successor).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/program.h"
#include "cfg/types.h"
#include "support/check.h"

namespace stc::cfg {

// Receiver of dynamic basic-block events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_block(BlockId block) = 0;
};

// Fans one block stream out to several sinks (e.g. a profile collector and a
// trace recorder in the same run).
class TeeSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    STC_REQUIRE(sink != nullptr);
    sinks_.push_back(sink);
  }
  void on_block(BlockId block) override {
    for (TraceSink* s : sinks_) s->on_block(block);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

class ExecContext {
 public:
  // `validate` turns on instrumentation-discipline checking (default: on in
  // debug builds). Validation costs a few branches per block event.
  explicit ExecContext(const ProgramImage& image, TraceSink* sink = nullptr,
#ifdef NDEBUG
                       bool validate = false
#else
                       bool validate = true
#endif
                       )
      : image_(image), sink_(sink), validate_(validate) {
    STC_REQUIRE(image.finalized());
  }

  const ProgramImage& image() const { return image_; }

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  // Called by RoutineScope.
  void enter(RoutineId routine);
  void leave();

  // Marks execution of one basic block.
  void bb(BlockId block) {
    if (validate_) validate_block(block);
    if (sink_ != nullptr) sink_->on_block(block);
    last_block_ = block;
    ++blocks_emitted_;
  }

  std::size_t call_depth() const { return stack_.size(); }
  std::uint64_t blocks_emitted() const { return blocks_emitted_; }
  BlockId last_block() const { return last_block_; }

 private:
  void validate_block(BlockId block);

  struct Frame {
    RoutineId routine;
    bool entered = false;  // entry block seen
  };

  const ProgramImage& image_;
  TraceSink* sink_;
  bool validate_;
  std::vector<Frame> stack_;
  BlockId last_block_ = kInvalidBlock;
  std::uint64_t blocks_emitted_ = 0;
};

// RAII scope for one dynamic routine activation.
class RoutineScope {
 public:
  RoutineScope(ExecContext& ctx, RoutineId routine) : ctx_(ctx) {
    ctx_.enter(routine);
  }
  ~RoutineScope() { ctx_.leave(); }

  RoutineScope(const RoutineScope&) = delete;
  RoutineScope& operator=(const RoutineScope&) = delete;

 private:
  ExecContext& ctx_;
};

}  // namespace stc::cfg
