#include "cfg/address_map.h"

#include <algorithm>

#include "support/check.h"

namespace stc::cfg {

AddressMap AddressMap::original(const ProgramImage& image) {
  STC_REQUIRE(image.finalized());
  AddressMap map("orig", image.num_blocks());
  for (BlockId b = 0; b < image.num_blocks(); ++b) {
    map.set(b, image.block(b).orig_addr);
  }
  return map;
}

std::uint64_t AddressMap::extent(const ProgramImage& image) const {
  std::uint64_t max_end = 0;
  for (BlockId b = 0; b < addr_.size(); ++b) {
    if (!assigned(b)) continue;
    max_end = std::max(max_end, end_addr(image, b));
  }
  return max_end;
}

void AddressMap::validate(const ProgramImage& image) const {
  STC_REQUIRE(image.num_blocks() == addr_.size());
  struct Range {
    std::uint64_t begin;
    std::uint64_t end;
  };
  std::vector<Range> ranges;
  ranges.reserve(addr_.size());
  for (BlockId b = 0; b < addr_.size(); ++b) {
    STC_CHECK_MSG(assigned(b), "layout leaves a block unassigned");
    ranges.push_back({addr_[b], end_addr(image, b)});
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    STC_CHECK_MSG(ranges[i - 1].end <= ranges[i].begin,
                  "layout assigns overlapping block ranges");
  }
}

}  // namespace stc::cfg
