// Static program image: routines, basic blocks, modules, original addresses.
//
// A ProgramImage is built once (add_module / add_routine), then finalized.
// Finalization assigns each block its *original* address: modules in
// registration order, routines in registration order within their module,
// blocks contiguous within their routine, routines aligned like compiler
// output. The original address map is the paper's "orig" code layout; every
// other layout is an AddressMap produced by the algorithms in src/core.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cfg/types.h"

namespace stc::cfg {

// Declaration of one basic block inside add_routine().
struct BlockDef {
  std::string name;     // unique within the routine
  std::uint16_t insns;  // size in instructions; must be >= 1
  BlockKind kind = BlockKind::kFallThrough;
};

struct BlockInfo {
  std::string name;
  RoutineId routine = kInvalidRoutine;
  std::uint32_t index_in_routine = 0;
  std::uint16_t insns = 0;
  BlockKind kind = BlockKind::kFallThrough;
  std::uint64_t orig_addr = 0;  // assigned at finalize()

  std::uint32_t bytes() const { return std::uint32_t{insns} * kInsnBytes; }
};

struct RoutineInfo {
  std::string name;
  ModuleId module = 0;
  BlockId entry = kInvalidBlock;  // first declared block
  std::uint32_t num_blocks = 0;
  bool executor_op = false;  // seed candidate for the paper's "ops" selection
  std::uint64_t orig_addr = 0;
  std::uint32_t bytes = 0;  // total size of all blocks
};

class ProgramImage {
 public:
  // Routine alignment in bytes for original address assignment (compiler-like
  // function alignment). Must be a power of two.
  explicit ProgramImage(std::uint32_t routine_align = 16);

  ProgramImage(const ProgramImage&) = delete;
  ProgramImage& operator=(const ProgramImage&) = delete;
  ProgramImage(ProgramImage&&) = default;
  ProgramImage& operator=(ProgramImage&&) = default;

  // --- construction phase ------------------------------------------------
  ModuleId add_module(std::string name);

  // Declares a routine and all of its basic blocks. Block names must be
  // unique within the routine; the first block is the routine entry.
  // Must not be called after finalize().
  RoutineId add_routine(std::string name, ModuleId module,
                        std::vector<BlockDef> blocks, bool executor_op = false);

  // Freezes the image and assigns original addresses. Idempotent is NOT
  // supported: call exactly once.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- queries (valid after finalize unless noted) ------------------------
  std::size_t num_modules() const { return modules_.size(); }
  std::size_t num_routines() const { return routines_.size(); }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::uint64_t total_instructions() const { return total_insns_; }
  std::uint64_t image_bytes() const { return image_bytes_; }

  const std::string& module_name(ModuleId m) const;
  const RoutineInfo& routine(RoutineId r) const;
  const BlockInfo& block(BlockId b) const;

  // Lookups by name; abort if missing (instrumentation discipline errors are
  // programming errors, not recoverable conditions).
  RoutineId routine_id(std::string_view name) const;
  BlockId block_id(RoutineId routine, std::string_view block_name) const;

  // Convenience: entry block of a routine.
  BlockId entry_of(RoutineId r) const { return routine(r).entry; }

  // All routine ids in registration (= original layout) order.
  std::vector<RoutineId> routines_in_order() const;

 private:
  std::uint32_t routine_align_;
  bool finalized_ = false;
  std::vector<std::string> modules_;
  std::vector<RoutineInfo> routines_;
  std::vector<BlockInfo> blocks_;
  std::unordered_map<std::string, RoutineId> routine_by_name_;
  // key: routine id << 32 | hash-bucketed block name (resolved via per-routine
  // linear map kept simple: name -> id within a flat map keyed by full key)
  std::unordered_map<std::string, BlockId> block_by_qualified_name_;
  std::uint64_t total_insns_ = 0;
  std::uint64_t image_bytes_ = 0;
};

}  // namespace stc::cfg
