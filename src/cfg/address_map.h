// A code layout: the address assigned to every basic block.
//
// Layout algorithms (src/core) produce AddressMaps; simulators (src/sim)
// consume them through the trace adapter. The paper evaluates layouts without
// regenerating the executable, "feeding the simulators with this faked address
// instead of the original PC" (Section 7.1) — an AddressMap is exactly that
// fake-address table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/program.h"
#include "cfg/types.h"

namespace stc::cfg {

class AddressMap {
 public:
  AddressMap() = default;
  AddressMap(std::string name, std::size_t num_blocks)
      : name_(std::move(name)), addr_(num_blocks, kUnassigned) {}

  // Initializes from the program's original addresses (the "orig" layout).
  static AddressMap original(const ProgramImage& image);

  const std::string& name() const { return name_; }
  std::size_t size() const { return addr_.size(); }

  void set(BlockId block, std::uint64_t addr) { addr_.at(block) = addr; }
  std::uint64_t addr(BlockId block) const { return addr_.at(block); }
  bool assigned(BlockId block) const { return addr_.at(block) != kUnassigned; }

  // End address (one past the last byte) of a block under this layout.
  std::uint64_t end_addr(const ProgramImage& image, BlockId block) const {
    return addr(block) + image.block(block).bytes();
  }

  // Highest end address over all assigned blocks (layout footprint).
  std::uint64_t extent(const ProgramImage& image) const;

  // Validates that every block is assigned and no two blocks overlap.
  // Aborts with a message on violation (layout bugs are programming errors).
  void validate(const ProgramImage& image) const;

 private:
  static constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};
  std::string name_;
  std::vector<std::uint64_t> addr_;
};

}  // namespace stc::cfg
