// Core identifiers and enums of the program model.
//
// The repository models a program the way the paper's binary instrumentation
// saw PostgreSQL: a list of routines, each a list of basic blocks with a size
// in (4-byte, RISC-style) instructions and a kind describing how the block
// ends. The paper classifies blocks into exactly four kinds (Section 4.2).
#pragma once

#include <cstdint>

namespace stc::cfg {

using RoutineId = std::uint32_t;
using BlockId = std::uint32_t;
using ModuleId = std::uint16_t;

inline constexpr BlockId kInvalidBlock = 0xffffffffu;
inline constexpr RoutineId kInvalidRoutine = 0xffffffffu;

// Bytes per instruction (Alpha-like fixed-width RISC encoding).
inline constexpr std::uint32_t kInsnBytes = 4;

// How a basic block ends; determines whether its last instruction is a branch
// (counted against the fetch unit's branch limit) and how its successor
// transitions are classified.
enum class BlockKind : std::uint8_t {
  kFallThrough,  // no terminating branch; execution continues at next block
  kBranch,       // conditional or unconditional branch
  kCall,         // subroutine call or indirect jump (possibly many targets)
  kReturn,       // subroutine return (many possible successors)
};

inline const char* to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kFallThrough: return "fall-through";
    case BlockKind::kBranch: return "branch";
    case BlockKind::kCall: return "call";
    case BlockKind::kReturn: return "return";
  }
  return "?";
}

// True if the block's final instruction is a control-transfer instruction.
inline bool ends_in_branch(BlockKind kind) {
  return kind != BlockKind::kFallThrough;
}

}  // namespace stc::cfg
