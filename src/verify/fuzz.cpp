#include "verify/fuzz.h"

#include <algorithm>
#include <unordered_set>

#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "core/layouts.h"
#include "core/mapping.h"
#include "core/replication.h"
#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "core/stc_layout.h"
#include "sim/trace_cache.h"
#include "support/check.h"
#include "workload/composer.h"

namespace stc::verify {
namespace {

using cfg::BlockId;
using cfg::BlockKind;

constexpr core::LayoutKind kAllKinds[] = {
    core::LayoutKind::kOrig, core::LayoutKind::kPettisHansen,
    core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
    core::LayoutKind::kStcOps};

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Moves the address-adjacent successor of some block 4 bytes backwards —
// the overlap an off-by-one (one instruction short) block size in the
// mapping cursor would produce. Returns false when the layout has no two
// adjacent blocks to corrupt.
bool apply_injection(cfg::AddressMap& layout, const cfg::ProgramImage& image,
                     Injection injection) {
  if (injection != Injection::kShortBlock) return false;
  struct Placed {
    std::uint64_t begin;
    std::uint64_t end;
    BlockId block;
  };
  std::vector<Placed> placed;
  for (BlockId b = 0; b < image.num_blocks(); ++b) {
    if (!layout.assigned(b)) continue;
    const std::uint64_t begin = layout.addr(b);
    placed.push_back({begin, begin + image.block(b).bytes(), b});
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < placed.size(); ++i) {
    if (placed[i - 1].end == placed[i].begin) {
      layout.set(placed[i].block, placed[i].begin - cfg::kInsnBytes);
      return true;
    }
  }
  return false;
}

const char* kind_name(BlockKind kind) {
  switch (kind) {
    case BlockKind::kFallThrough: return "stc::cfg::BlockKind::kFallThrough";
    case BlockKind::kBranch: return "stc::cfg::BlockKind::kBranch";
    case BlockKind::kCall: return "stc::cfg::BlockKind::kCall";
    case BlockKind::kReturn: return "stc::cfg::BlockKind::kReturn";
  }
  return "stc::cfg::BlockKind::kFallThrough";
}

}  // namespace

std::size_t FuzzCase::num_blocks() const {
  std::size_t n = 0;
  for (const FuzzRoutine& r : routines) n += r.blocks.size();
  return n;
}

bool check_case(const FuzzCase& c, std::string* why) {
  const auto reject = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (c.cache_bytes == 0 || !is_pow2(c.cache_bytes) ||
      c.cache_bytes > (std::uint64_t{1} << 20)) {
    return reject("cache_bytes must be a power of two <= 1 MiB");
  }
  if (c.cfa_bytes >= c.cache_bytes) return reject("cfa_bytes >= cache_bytes");
  if (!is_pow2(c.line_bytes) || c.line_bytes > c.cache_bytes) {
    return reject("line_bytes must be a power of two <= cache_bytes");
  }
  for (const FuzzRoutine& r : c.routines) {
    if (r.blocks.empty()) return reject("empty routine");
    for (const FuzzBlock& b : r.blocks) {
      if (b.insns == 0) return reject("zero-size block");
    }
  }
  const std::size_t blocks = c.num_blocks();
  for (const FuzzEdge& e : c.edges) {
    if (e.from >= blocks || e.to >= blocks) {
      return reject("edge references out-of-range block");
    }
  }
  for (std::uint32_t ev : c.trace) {
    if (ev >= blocks) return reject("trace references out-of-range block");
  }
  for (std::uint32_t s : c.seeds) {
    if (s >= blocks) return reject("seed references out-of-range block");
  }
  return true;
}

BuiltCase build_case(const FuzzCase& c) {
  std::string why;
  STC_CHECK_MSG(check_case(c, &why), "build_case on invalid case");

  BuiltCase built;
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("fuzz");
  for (std::size_t r = 0; r < c.routines.size(); ++r) {
    std::vector<cfg::BlockDef> blocks;
    blocks.reserve(c.routines[r].blocks.size());
    for (std::size_t b = 0; b < c.routines[r].blocks.size(); ++b) {
      blocks.push_back({"r" + std::to_string(r) + "_b" + std::to_string(b),
                        c.routines[r].blocks[b].insns,
                        c.routines[r].blocks[b].kind});
    }
    builder.routine("r" + std::to_string(r), mod, std::move(blocks),
                    c.routines[r].executor_op);
  }
  built.image = builder.build();

  for (std::uint32_t ev : c.trace) built.trace.append(ev);

  built.wcfg.image = built.image.get();
  built.wcfg.block_count.assign(built.image->num_blocks(), 0);
  built.wcfg.succs.resize(built.image->num_blocks());
  for (std::uint32_t ev : c.trace) ++built.wcfg.block_count[ev];
  for (const FuzzEdge& e : c.edges) {
    built.wcfg.succs[e.from].push_back({e.to, e.count});
  }
  for (auto& succs : built.wcfg.succs) {
    std::sort(succs.begin(), succs.end(),
              [](const profile::WeightedCFG::Succ& x,
                 const profile::WeightedCFG::Succ& y) {
                if (x.count != y.count) return x.count > y.count;
                return x.to < y.to;
              });
  }
  return built;
}

namespace {

// Front-end checks over one layout: the transparent configuration must match
// the baseline simulators field for field, and a deliberately undersized
// realistic configuration (tiny tables, RAS shallower than the deep-call
// shapes) must satisfy the front-end counter identities.
Report check_frontend(const trace::BlockTrace& trace,
                      const cfg::ProgramImage& image,
                      const cfg::AddressMap& layout,
                      const sim::CacheGeometry& geometry) {
  Report report;
  const std::uint64_t expected = trace_instructions(trace, image);
  const sim::FetchParams params;
  const sim::TraceCacheParams tc_params;

  const auto same = [&report](const sim::FetchResult& a,
                              const sim::FetchResult& b, const char* what) {
    const auto eq = [&](std::uint64_t x, std::uint64_t y, const char* field) {
      if (x != y) {
        report.fail(std::string(what) + ": transparent front end diverges on " +
                    field + " (" + std::to_string(x) + " vs " +
                    std::to_string(y) + ")");
      }
    };
    eq(a.instructions, b.instructions, "instructions");
    eq(a.cycles, b.cycles, "cycles");
    eq(a.fetch_requests, b.fetch_requests, "fetch_requests");
    eq(a.miss_requests, b.miss_requests, "miss_requests");
    eq(a.lines_missed, b.lines_missed, "lines_missed");
    eq(a.tc_hits, b.tc_hits, "tc_hits");
    eq(a.tc_misses, b.tc_misses, "tc_misses");
    eq(a.tc_fills, b.tc_fills, "tc_fills");
    eq(a.tc_probes, b.tc_probes, "tc_probes");
  };

  const frontend::FrontEndParams transparent;
  {
    sim::ICache base_cache(geometry);
    const sim::FetchResult base =
        sim::run_seq3(trace, image, layout, params, &base_cache);
    sim::ICache fe_cache(geometry);
    const frontend::FrontEndResult spec = frontend::run_seq3_frontend(
        trace, image, layout, params, transparent, &fe_cache);
    same(spec.fetch, base, "seq3");
  }
  {
    sim::ICache base_cache(geometry);
    const sim::FetchResult base = sim::run_trace_cache(
        trace, image, layout, params, tc_params, &base_cache);
    sim::ICache fe_cache(geometry);
    const frontend::FrontEndResult spec = frontend::run_trace_cache_frontend(
        trace, image, layout, params, tc_params, transparent, &fe_cache);
    same(spec.fetch, base, "tc");
  }

  frontend::FrontEndParams realistic;
  realistic.kind = frontend::BpredKind::kGshare;
  realistic.table_bits = 6;   // tiny tables force aliasing
  realistic.btb_entries = 16;
  realistic.ras_depth = 4;
  realistic.prefetch = true;
  {
    sim::ICache cache(geometry);
    const frontend::FrontEndResult result = frontend::run_seq3_frontend(
        trace, image, layout, params, realistic, &cache);
    report.merge(check_frontend_result(result, params, realistic, expected,
                                       /*with_trace_cache=*/false),
                 "seq3");
  }
  {
    sim::ICache cache(geometry);
    const frontend::FrontEndResult result = frontend::run_trace_cache_frontend(
        trace, image, layout, params, tc_params, realistic, &cache);
    report.merge(check_frontend_result(result, params, realistic, expected,
                                       /*with_trace_cache=*/true),
                 "tc");
  }
  return report;
}

}  // namespace

Report run_case(const FuzzCase& c, Injection injection) {
  Report all;
  std::string why;
  if (!check_case(c, &why)) {
    all.fail("invalid fuzz case: " + why);
    return all;
  }
  const BuiltCase built = build_case(c);
  const cfg::ProgramImage& image = *built.image;

  OracleOptions options;
  options.geometry =
      sim::CacheGeometry{static_cast<std::uint32_t>(c.cache_bytes),
                         c.line_bytes, 1};

  // Every layout kind through the full oracle.
  for (core::LayoutKind kind : kAllKinds) {
    core::MappingProvenance provenance;
    cfg::AddressMap layout = core::make_layout(kind, built.wcfg, c.cache_bytes,
                                               c.cfa_bytes, &provenance);
    apply_injection(layout, image, injection);
    all.merge(verify_layout(built.trace, image, layout, &provenance, options));
    if (injection == Injection::kNone) {
      all.merge(check_frontend(built.trace, image, layout, options.geometry),
                "frontend");
    }
  }

  // Direct map_sequences over the raw seed list (duplicates and repeated
  // blocks across sequences are legal; the oracle must still hold).
  if (!c.seeds.empty()) {
    std::vector<core::Sequence> sequences;
    std::unordered_set<std::uint32_t> seeded(c.seeds.begin(), c.seeds.end());
    for (std::uint32_t s : c.seeds) {
      core::Sequence seq;
      seq.blocks = {s};
      seq.weight = 1;
      sequences.push_back(std::move(seq));
    }
    std::vector<BlockId> cold;
    for (BlockId b = 0; b < image.num_blocks(); ++b) {
      if (seeded.count(b) == 0) cold.push_back(b);
    }
    core::MappingParams params;
    params.cache_bytes = c.cache_bytes;
    params.cfa_bytes = c.cfa_bytes;
    core::MappingProvenance provenance;
    cfg::AddressMap layout = core::map_sequences(
        image, "fuzz-seeds", {{}, std::move(sequences)}, cold, params,
        &provenance);
    apply_injection(layout, image, injection);
    all.merge(verify_layout(built.trace, image, layout, &provenance, options));
  }

  // Replication round trip: the transformed trace projected back through the
  // replica provenance must be the original execution.
  {
    profile::Profile prof(image);
    prof.consume(built.trace);
    const core::Replicator replicator(image, prof);
    all.merge(check_replication_structure(image, replicator.image(),
                                          replicator.origin_blocks()),
              "replicate");
    const trace::BlockTrace transformed = replicator.transform(built.trace);
    all.merge(
        check_replicated_replay(built.trace, transformed, image,
                                replicator.image(),
                                replicator.origin_blocks()),
        "replicate");
    all.merge(check_replay(transformed, replicator.image(),
                           cfg::AddressMap::original(replicator.image())),
              "replicate/orig");
  }
  return all;
}

Report run_replay_diff(const FuzzCase& c) {
  Report all;
  std::string why;
  if (!check_case(c, &why)) {
    all.fail("invalid fuzz case: " + why);
    return all;
  }
  const BuiltCase built = build_case(c);
  const sim::CacheGeometry geometry{
      static_cast<std::uint32_t>(c.cache_bytes), c.line_bytes, 1};
  // Back-end configuration derived deterministically from the case content
  // so the corpus sweeps machine shapes (kind, IQ/ROB depths, cost model)
  // as well as program shapes — shrinking a divergence keeps its config
  // only as long as the content that produced it survives.
  backend::BackendParams bp;
  const std::uint64_t salt =
      c.num_blocks() * 7 + c.trace.size() * 5 + c.line_bytes;
  bp.kind = (salt % 2 == 0) ? backend::BackendKind::kOoo
                            : backend::BackendKind::kInOrder;
  bp.iq_depth = 2 + static_cast<std::uint32_t>(salt % 30);
  bp.rob_depth = bp.iq_depth + 1 + static_cast<std::uint32_t>(salt % 64);
  bp.fetch_buffer_ops = 4 + static_cast<std::uint32_t>(salt % 28);
  bp.mem_latency = static_cast<std::uint32_t>(salt % 6);
  bp.size_shift = 1 + static_cast<std::uint32_t>(salt % 4);
  for (core::LayoutKind kind : kAllKinds) {
    cfg::AddressMap layout =
        core::make_layout(kind, built.wcfg, c.cache_bytes, c.cfa_bytes);
    all.merge(
        check_replay_modes(built.trace, *built.image, layout, geometry, &bp),
        core::to_string(kind));
  }
  return all;
}

Report run_multitenant_diff(const FuzzCase& c) {
  Report all;
  std::string why;
  if (!check_case(c, &why)) {
    all.fail("invalid fuzz case: " + why);
    return all;
  }
  const BuiltCase built = build_case(c);
  const cfg::ProgramImage& image = *built.image;
  const sim::CacheGeometry geometry{
      static_cast<std::uint32_t>(c.cache_bytes), c.line_bytes, 1};

  // Composer shape derived deterministically from the case content, like
  // run_replay_diff's machine shape: tenant count, quantum and arrival
  // model all sweep with the corpus and shrink with the content.
  const std::uint64_t salt =
      c.num_blocks() * 7 + c.trace.size() * 5 + c.line_bytes;
  const std::uint32_t tenants = 1 + static_cast<std::uint32_t>(salt % 4);
  workload::ComposeParams params;
  switch (salt % 3) {
    case 0: params.quantum_events = 0; break;
    case 1: params.quantum_events = 1 + salt % 7; break;
    default: params.quantum_events = 1 + salt % 97; break;
  }
  params.arrival = static_cast<workload::ArrivalKind>((salt / 3) % 4);
  params.seed = salt * 0x9e3779b97f4a7c15ull + 1;

  // Contiguous spans of the case trace become the tenant streams.
  std::vector<workload::TenantStream> streams(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    streams[t].name = "t" + std::to_string(t);
    const std::size_t begin = c.trace.size() * t / tenants;
    const std::size_t end = c.trace.size() * (t + 1) / tenants;
    for (std::size_t i = begin; i < end; ++i) {
      streams[t].trace.append(static_cast<BlockId>(c.trace[i]));
    }
  }

  Result<workload::ComposedTrace> first = workload::compose(streams, params);
  if (!first.is_ok()) {
    all.fail("compose failed: " + first.status().to_string());
    return all;
  }
  const workload::ComposedTrace& composed = first.value();

  // Determinism: the same streams and params give a byte-identical trace.
  Result<workload::ComposedTrace> second = workload::compose(streams, params);
  if (!second.is_ok() ||
      second.value().trace.serialize() != composed.trace.serialize()) {
    all.fail("composition is not deterministic under a fixed seed");
  }

  // Conservation: per-tenant totals match the inputs, segments cover the
  // merge exactly, and replaying the segment provenance against per-stream
  // cursors reproduces every stream event for event.
  std::uint64_t segment_total = 0;
  for (const workload::TenantSegment& seg : composed.segments) {
    segment_total += seg.events;
    if (seg.tenant >= tenants) {
      all.fail("segment names tenant " + std::to_string(seg.tenant));
    }
  }
  if (segment_total != composed.trace.num_events()) {
    all.fail("segments cover " + std::to_string(segment_total) +
             " events, composed trace holds " +
             std::to_string(composed.trace.num_events()));
  }
  for (std::uint32_t t = 0; t < tenants; ++t) {
    if (composed.tenant_events[t] != streams[t].trace.num_events()) {
      all.fail("tenant " + std::to_string(t) + " contributed " +
               std::to_string(composed.tenant_events[t]) + " events, stream " +
               "holds " + std::to_string(streams[t].trace.num_events()));
    }
  }
  {
    std::vector<trace::BlockTrace::Cursor> cursors;
    for (const workload::TenantStream& s : streams) cursors.emplace_back(s.trace);
    trace::BlockTrace::Cursor merged(composed.trace);
    bool provenance_ok = true;
    for (const workload::TenantSegment& seg : composed.segments) {
      for (std::uint64_t i = 0; i < seg.events && provenance_ok; ++i) {
        if (cursors[seg.tenant].done() ||
            cursors[seg.tenant].next() != merged.next()) {
          all.fail("segment provenance does not replay tenant " +
                   std::to_string(seg.tenant) + "'s stream");
          provenance_ok = false;
        }
      }
      if (!provenance_ok) break;
    }
  }

  // Single-tenant composition is the identity on the byte level.
  {
    std::vector<workload::TenantStream> single(1);
    single[0].name = "solo";
    for (std::uint32_t b : c.trace) {
      single[0].trace.append(static_cast<BlockId>(b));
    }
    Result<workload::ComposedTrace> solo = workload::compose(single, params);
    if (!solo.is_ok() ||
        solo.value().trace.serialize() != built.trace.serialize()) {
      all.fail("single-tenant composition is not byte-identical to the input");
    }
  }

  // The composed trace must replay bit-identically across all three
  // engines, like any recorded trace.
  for (core::LayoutKind kind :
       {core::LayoutKind::kOrig, core::LayoutKind::kStcOps}) {
    cfg::AddressMap layout =
        core::make_layout(kind, built.wcfg, c.cache_bytes, c.cfa_bytes);
    all.merge(check_replay_modes(composed.trace, image, layout, geometry),
              std::string("composed/") + core::to_string(kind));
  }

  // Tenant-partitioned layout from per-stream profiles, when the CFA can
  // give every tenant at least one byte.
  if (c.cfa_bytes >= tenants && image.num_blocks() > 0) {
    std::vector<profile::Profile> profiles;
    std::vector<profile::WeightedCFG> cfgs;
    profiles.reserve(tenants);
    cfgs.reserve(tenants);
    for (const workload::TenantStream& s : streams) {
      profiles.emplace_back(image);
      profiles.back().consume(s.trace);
      cfgs.push_back(profile::WeightedCFG::from_profile(profiles.back()));
    }
    std::vector<const profile::WeightedCFG*> cfg_ptrs;
    for (const profile::WeightedCFG& w : cfgs) cfg_ptrs.push_back(&w);
    core::StcParams stc;
    stc.cache_bytes = c.cache_bytes;
    stc.cfa_bytes = c.cfa_bytes;
    core::MappingProvenance provenance;
    const core::StcResult part = core::stc_layout_partitioned(
        cfg_ptrs, core::SeedKind::kOps, stc, &provenance);
    OracleOptions options;
    options.geometry = geometry;
    all.merge(verify_layout(composed.trace, image, part.layout, &provenance,
                            options),
              "partitioned");
  }
  return all;
}

FuzzCase random_case(Rng& rng) {
  FuzzCase c;
  c.cache_bytes = std::uint64_t{512} << rng.uniform(4);  // 512 .. 4096
  c.line_bytes = std::uint32_t{16} << rng.uniform(3);    // 16, 32, 64
  // CFA menu, including the extremes: none, and all-but-one-instruction.
  switch (rng.uniform(5)) {
    case 0: c.cfa_bytes = 0; break;
    case 1: c.cfa_bytes = c.cache_bytes - cfg::kInsnBytes; break;
    default: c.cfa_bytes = rng.uniform(c.cache_bytes / 2 + 1); break;
  }

  // Routines, occasionally none at all.
  const std::size_t nroutines =
      rng.chance(0.05) ? 0 : 1 + rng.uniform(6);
  for (std::size_t r = 0; r < nroutines; ++r) {
    FuzzRoutine routine;
    routine.executor_op = rng.chance(0.15);
    const std::size_t nblocks = rng.chance(0.2) ? 1 : 1 + rng.uniform(6);
    for (std::size_t b = 0; b < nblocks; ++b) {
      FuzzBlock block;
      if (rng.chance(0.1)) {
        // Bigger than a cache line — and sometimes than a whole inter-CFA
        // window — so mapping must handle blocks that dwarf the geometry.
        block.insns = static_cast<std::uint16_t>(
            c.line_bytes / cfg::kInsnBytes + 1 + rng.uniform(96));
      } else {
        block.insns = static_cast<std::uint16_t>(1 + rng.uniform(12));
      }
      if (b + 1 == nblocks && !rng.chance(0.1)) {
        block.kind = BlockKind::kReturn;
      } else {
        const std::uint64_t pick = rng.uniform(10);
        block.kind = pick < 3   ? BlockKind::kFallThrough
                     : pick < 8 ? BlockKind::kBranch
                                : BlockKind::kCall;
      }
      routine.blocks.push_back(block);
    }
    c.routines.push_back(std::move(routine));
  }
  const std::size_t blocks = c.num_blocks();
  if (blocks == 0) return c;  // empty program: empty trace/edges/seeds

  // Trace: a partially edge-following walk (empty ~10% of the time).
  const std::size_t events = rng.chance(0.1) ? 0 : 1 + rng.uniform(160);
  std::uint32_t cur = static_cast<std::uint32_t>(rng.uniform(blocks));
  for (std::size_t i = 0; i < events; ++i) {
    c.trace.push_back(cur);
    cur = static_cast<std::uint32_t>(rng.uniform(blocks));
  }

  // Edge counts budgeted by the trace-derived block counts (like a real
  // profile), plus explicit self-loops and zero-weight edges.
  std::vector<std::uint64_t> count(blocks, 0);
  for (std::uint32_t ev : c.trace) ++count[ev];
  for (std::uint32_t b = 0; b < blocks; ++b) {
    if (count[b] == 0 && !rng.chance(0.1)) continue;
    std::uint64_t budget = count[b];
    const std::size_t nedges = rng.uniform(4);
    for (std::size_t e = 0; e < nedges; ++e) {
      FuzzEdge edge;
      edge.from = b;
      edge.to = rng.chance(0.15)
                    ? b  // self-loop
                    : static_cast<std::uint32_t>(rng.uniform(blocks));
      if (rng.chance(0.2) || budget == 0) {
        edge.count = 0;  // zero-weight edge
      } else {
        edge.count = 1 + rng.uniform(budget);
        budget -= edge.count;
      }
      c.edges.push_back(edge);
    }
  }

  // Seed list with duplicates.
  const std::size_t nseeds = rng.uniform(5);
  for (std::size_t s = 0; s < nseeds; ++s) {
    if (!c.seeds.empty() && rng.chance(0.3)) {
      c.seeds.push_back(c.seeds[rng.uniform(c.seeds.size())]);  // duplicate
    } else {
      c.seeds.push_back(static_cast<std::uint32_t>(rng.uniform(blocks)));
    }
  }

  // Front-end stress shapes. A deep call/return chain (deeper than any
  // bounded return-address stack) appended as call-all-the-way-down then
  // return-all-the-way-up:
  if (rng.chance(0.25)) {
    const std::uint32_t base = static_cast<std::uint32_t>(c.num_blocks());
    const std::size_t depth = 2 + rng.uniform(12);
    for (std::size_t d = 0; d < depth; ++d) {
      FuzzRoutine frame;
      FuzzBlock body;
      body.insns = static_cast<std::uint16_t>(1 + rng.uniform(4));
      body.kind = BlockKind::kCall;
      FuzzBlock tail;
      tail.insns = static_cast<std::uint16_t>(1 + rng.uniform(2));
      tail.kind = BlockKind::kReturn;
      frame.blocks = {body, tail};
      c.routines.push_back(std::move(frame));
    }
    for (std::size_t d = 0; d < depth; ++d) {
      c.trace.push_back(base + static_cast<std::uint32_t>(2 * d));
    }
    for (std::size_t d = depth; d-- > 0;) {
      c.trace.push_back(base + static_cast<std::uint32_t>(2 * d) + 1);
    }
  }
  // And an indirect-branch-heavy dispatcher: one megamorphic call site
  // whose dynamic successor changes nearly every visit (BTB-hostile).
  if (rng.chance(0.25)) {
    const std::uint32_t dispatcher =
        static_cast<std::uint32_t>(c.num_blocks());
    FuzzRoutine dispatch;
    FuzzBlock site;
    site.insns = static_cast<std::uint16_t>(1 + rng.uniform(3));
    site.kind = BlockKind::kCall;
    dispatch.blocks = {site};
    c.routines.push_back(std::move(dispatch));
    const std::uint32_t total = static_cast<std::uint32_t>(c.num_blocks());
    const std::size_t calls = 8 + rng.uniform(24);
    for (std::size_t i = 0; i < calls; ++i) {
      c.trace.push_back(dispatcher);
      c.trace.push_back(static_cast<std::uint32_t>(rng.uniform(total)));
    }
  }
  return c;
}

namespace {

// Removes global block indices [start, start+count); drops trace events,
// seeds and edges that referenced them and shifts higher indices down.
void remap_after_removal(FuzzCase& c, std::size_t start, std::size_t count) {
  const auto keep = [&](std::uint32_t idx) {
    return idx < start || idx >= start + count;
  };
  const auto remap = [&](std::uint32_t idx) {
    return idx < start ? idx : static_cast<std::uint32_t>(idx - count);
  };
  std::vector<std::uint32_t> trace;
  for (std::uint32_t ev : c.trace) {
    if (keep(ev)) trace.push_back(remap(ev));
  }
  c.trace = std::move(trace);
  std::vector<std::uint32_t> seeds;
  for (std::uint32_t s : c.seeds) {
    if (keep(s)) seeds.push_back(remap(s));
  }
  c.seeds = std::move(seeds);
  std::vector<FuzzEdge> edges;
  for (FuzzEdge e : c.edges) {
    if (!keep(e.from) || !keep(e.to)) continue;
    e.from = remap(e.from);
    e.to = remap(e.to);
    edges.push_back(e);
  }
  c.edges = std::move(edges);
}

std::size_t routine_start(const FuzzCase& c, std::size_t r) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < r; ++i) start += c.routines[i].blocks.size();
  return start;
}

FuzzCase without_routine(const FuzzCase& c, std::size_t r) {
  FuzzCase out = c;
  const std::size_t start = routine_start(c, r);
  const std::size_t count = c.routines[r].blocks.size();
  out.routines.erase(out.routines.begin() + static_cast<std::ptrdiff_t>(r));
  remap_after_removal(out, start, count);
  return out;
}

FuzzCase without_block(const FuzzCase& c, std::size_t r, std::size_t b) {
  FuzzCase out = c;
  out.routines[r].blocks.erase(out.routines[r].blocks.begin() +
                               static_cast<std::ptrdiff_t>(b));
  remap_after_removal(out, routine_start(c, r) + b, 1);
  return out;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& c, Injection injection) {
  return shrink_case_with(c, [injection](const FuzzCase& candidate) {
    return !run_case(candidate, injection).ok();
  });
}

FuzzCase shrink_case_with(
    const FuzzCase& c, const std::function<bool(const FuzzCase&)>& fails) {
  if (!fails(c)) return c;  // nothing to shrink

  FuzzCase cur = c;
  bool changed = true;
  while (changed) {
    changed = false;

    // Trace spans, largest chunks first (delta-debugging style).
    for (std::size_t chunk = std::max<std::size_t>(cur.trace.size(), 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t i = 0; i + chunk <= cur.trace.size();) {
        FuzzCase candidate = cur;
        candidate.trace.erase(
            candidate.trace.begin() + static_cast<std::ptrdiff_t>(i),
            candidate.trace.begin() + static_cast<std::ptrdiff_t>(i + chunk));
        if (fails(candidate)) {
          cur = std::move(candidate);
          changed = true;
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // Whole routines.
    for (std::size_t r = 0; r < cur.routines.size();) {
      FuzzCase candidate = without_routine(cur, r);
      if (fails(candidate)) {
        cur = std::move(candidate);
        changed = true;
      } else {
        ++r;
      }
    }

    // Individual blocks (keeping routines non-empty).
    for (std::size_t r = 0; r < cur.routines.size(); ++r) {
      for (std::size_t b = 0; b < cur.routines[r].blocks.size();) {
        if (cur.routines[r].blocks.size() == 1) break;
        FuzzCase candidate = without_block(cur, r, b);
        if (fails(candidate)) {
          cur = std::move(candidate);
          changed = true;
        } else {
          ++b;
        }
      }
    }

    // Edges and seeds, one at a time.
    for (std::size_t e = 0; e < cur.edges.size();) {
      FuzzCase candidate = cur;
      candidate.edges.erase(candidate.edges.begin() +
                            static_cast<std::ptrdiff_t>(e));
      if (fails(candidate)) {
        cur = std::move(candidate);
        changed = true;
      } else {
        ++e;
      }
    }
    for (std::size_t s = 0; s < cur.seeds.size();) {
      FuzzCase candidate = cur;
      candidate.seeds.erase(candidate.seeds.begin() +
                            static_cast<std::ptrdiff_t>(s));
      if (fails(candidate)) {
        cur = std::move(candidate);
        changed = true;
      } else {
        ++s;
      }
    }

    // Simplify surviving blocks: one instruction, plainest kind, no flags.
    for (std::size_t r = 0; r < cur.routines.size(); ++r) {
      for (std::size_t b = 0; b < cur.routines[r].blocks.size(); ++b) {
        // No reference into cur here: accepting a candidate reassigns cur
        // and would leave it dangling.
        if (cur.routines[r].blocks[b].insns > 1) {
          FuzzCase candidate = cur;
          candidate.routines[r].blocks[b].insns = 1;
          if (fails(candidate)) {
            cur = std::move(candidate);
            changed = true;
          }
        }
        if (cur.routines[r].blocks[b].kind != BlockKind::kFallThrough) {
          FuzzCase candidate = cur;
          candidate.routines[r].blocks[b].kind = BlockKind::kFallThrough;
          if (fails(candidate)) {
            cur = std::move(candidate);
            changed = true;
          }
        }
      }
      if (cur.routines[r].executor_op) {
        FuzzCase candidate = cur;
        candidate.routines[r].executor_op = false;
        if (fails(candidate)) {
          cur = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return cur;
}

std::string emit_cpp(const FuzzCase& c, std::string_view test_name,
                     std::string_view check_fn) {
  std::string out;
  out += "TEST(FuzzRegression, " + std::string(test_name) + ") {\n";
  out += "  stc::verify::FuzzCase c;\n";
  out += "  c.cache_bytes = " + std::to_string(c.cache_bytes) + ";\n";
  out += "  c.cfa_bytes = " + std::to_string(c.cfa_bytes) + ";\n";
  out += "  c.line_bytes = " + std::to_string(c.line_bytes) + ";\n";
  if (!c.routines.empty()) {
    out += "  c.routines = {\n";
    for (const FuzzRoutine& r : c.routines) {
      out += "      {{";
      for (std::size_t b = 0; b < r.blocks.size(); ++b) {
        if (b > 0) out += ", ";
        out += "{" + std::to_string(r.blocks[b].insns) + ", " +
               kind_name(r.blocks[b].kind) + "}";
      }
      out += std::string("}, ") + (r.executor_op ? "true" : "false") + "},\n";
    }
    out += "  };\n";
  }
  const auto emit_u32_list = [&](const char* field,
                                 const std::vector<std::uint32_t>& values) {
    if (values.empty()) return;
    out += std::string("  c.") + field + " = {";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values[i]);
    }
    out += "};\n";
  };
  if (!c.edges.empty()) {
    out += "  c.edges = {";
    for (std::size_t i = 0; i < c.edges.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{" + std::to_string(c.edges[i].from) + ", " +
             std::to_string(c.edges[i].to) + ", " +
             std::to_string(c.edges[i].count) + "}";
    }
    out += "};\n";
  }
  emit_u32_list("trace", c.trace);
  emit_u32_list("seeds", c.seeds);
  out += "  const stc::verify::Report report = stc::verify::" +
         std::string(check_fn) + "(c);\n";
  out += "  EXPECT_TRUE(report.ok()) << report.summary();\n";
  out += "}\n";
  return out;
}

}  // namespace stc::verify
