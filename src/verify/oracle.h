// Layout-equivalence oracle.
//
// Every number the benches report assumes the layouts are *semantically
// transparent*: a layout may permute and replicate basic blocks, but the
// dynamic instruction stream replayed through the simulators must be the
// original program's. This module checks that independently of the code that
// produced the layout, across three invariant classes:
//
//  1. Structure — the layout is a valid permutation-plus-replication of the
//     original blocks: every block assigned, no two blocks overlap, replicas
//     byte-identical to their origin in size and kind.
//  2. Replay equivalence — replaying the block trace through the remapped
//     address map yields the exact original dynamic instruction sequence
//     (same blocks, same per-block instruction counts, instruction addresses
//     consistent with the map, taken flags re-derived from first principles).
//  3. Simulator invariants — icache probes and misses consistent with an
//     independent recount, fetch-unit cycle identities, trace-cache fills
//     bounded by probes, and the Figure 4 CFA occupancy rules.
//
// Unlike STC_CHECK, the oracle never aborts: violations are collected in a
// Report so fuzzers and tests can observe, shrink, and print them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "backend/pipeline.h"
#include "cfg/address_map.h"
#include "cfg/program.h"
#include "core/mapping.h"
#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "support/stats.h"
#include "trace/block_trace.h"

namespace stc::verify {

// Accumulates violations. Keeps the first kMaxErrors messages (plus a total
// count) so a badly broken layout does not produce gigabytes of text.
class Report {
 public:
  bool ok() const { return total_ == 0; }
  void fail(std::string message);
  // Appends another report's findings, prefixing each with `context`.
  void merge(const Report& other, std::string_view context = {});

  const std::vector<std::string>& errors() const { return errors_; }
  std::uint64_t total_found() const { return total_; }
  // Human-readable multi-line summary ("OK" when clean).
  std::string summary() const;

 private:
  static constexpr std::size_t kMaxErrors = 16;
  std::vector<std::string> errors_;
  std::uint64_t total_ = 0;
};

// Total instructions the trace executes (sum of per-event block sizes).
// Events naming out-of-range blocks count zero.
std::uint64_t trace_instructions(const trace::BlockTrace& trace,
                                 const cfg::ProgramImage& image);

// ---- Invariant class 1: structure ----------------------------------------

// The layout covers exactly the image's blocks: all assigned, none
// truncated (sizes are the image's, by construction of AddressMap), and no
// two blocks overlap in the address space.
Report check_structure(const cfg::ProgramImage& image,
                       const cfg::AddressMap& layout);

// The extended (replicated) image is the original plus byte-identical
// clones: original block ids unchanged, every clone's size and kind equal to
// its origin block's, and clone routines mirror whole origin routines.
// `origin_blocks` comes from core::Replicator::origin_blocks().
Report check_replication_structure(
    const cfg::ProgramImage& original, const cfg::ProgramImage& extended,
    const std::vector<cfg::BlockId>& origin_blocks);

// ---- Invariant class 2: replay equivalence -------------------------------

// Replays `trace` under `layout` with an independent walk and cross-checks
// the production stream adapters (BlockRunStream, FetchPipe) instruction by
// instruction against ground truth derived only from the image and the map.
Report check_replay(const trace::BlockTrace& trace,
                    const cfg::ProgramImage& image,
                    const cfg::AddressMap& layout);

// The replicated trace projected through `origin_blocks` must equal the
// original trace event for event (replication may rename blocks to clones
// but never change what executes).
Report check_replicated_replay(const trace::BlockTrace& original_trace,
                               const trace::BlockTrace& transformed,
                               const cfg::ProgramImage& original,
                               const cfg::ProgramImage& extended,
                               const std::vector<cfg::BlockId>& origin_blocks);

// ---- Invariant class 3: simulator + occupancy invariants -----------------

// Figure 4 occupancy: pass-0 code lives entirely in [0, cfa); later-pass
// code never intersects any region's [0, cfa) window (a block larger than a
// whole inter-CFA window must at least start at a window boundary). A
// provenance with empty() == true carries no contract and passes trivially.
Report check_cfa_occupancy(const cfg::ProgramImage& image,
                           const cfg::AddressMap& layout,
                           const core::MappingProvenance& provenance);

// Tenant-partitioned CFA occupancy (map_sequences_partitioned): the
// provenance's tenant_region_start boundaries must tile [0, cfa) with G
// non-empty sub-windows; every pass-0 block must carry a tenant id in
// [0, G) and lie entirely inside its tenant's sub-window, and no
// non-pass-0 block may carry a tenant id. An unpartitioned provenance
// (num_tenant_regions == 0) passes trivially.
Report check_tenant_partition(const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const core::MappingProvenance& provenance);

// Runs all three simulators (miss-rate, SEQ.3, trace cache) over the trace
// and checks their counters against independent recounts and each other.
Report check_simulators(const trace::BlockTrace& trace,
                        const cfg::ProgramImage& image,
                        const cfg::AddressMap& layout,
                        const sim::CacheGeometry& geometry);

// Cheap per-result checks, usable on every bench cell without re-running
// the simulation. `expected_instructions` from trace_instructions().
Report check_missrate_result(const sim::MissRateResult& result,
                             const sim::CacheStats& stats,
                             std::uint64_t expected_instructions);
Report check_fetch_result(const sim::FetchResult& result,
                          const sim::FetchParams& params,
                          std::uint64_t expected_instructions,
                          bool with_trace_cache);

// Counter identities for a speculative front-end run (src/frontend). The
// baseline cycle identity gains the two front-end stall terms:
//   cycles == fetch_requests + miss_penalty x penalty_units
//             + bp_bubble_cycles + prefetch_late_cycles
// with bp_bubble_cycles == bp_mispredicts x mispredict_penalty, prediction
// counters bounded by lookups, every issued prefetch reaching at most one
// outcome (useful/late/evicted), and all front-end counters zero for a
// transparent (perfect, no-prefetch) configuration.
Report check_frontend_result(const frontend::FrontEndResult& result,
                             const sim::FetchParams& params,
                             const frontend::FrontEndParams& fe_params,
                             std::uint64_t expected_instructions,
                             bool with_trace_cache);

// Counter identities for a back-end pipeline run (src/backend). The back
// end must retire exactly what fetch supplied (retired_insns ==
// fetch.instructions == expected), drain completely (retired == dispatched
// == issued ops), never exceed its IQ/ROB bounds (peaks and per-cycle
// occupancy sums), and share one clock with fetch (fetch.cycles ==
// be_cycles >= fetch_requests). Front-end predictor bounds are re-checked
// where they still apply under the unified clock.
Report check_backend_result(const backend::BackendResult& result,
                            const sim::FetchParams& params,
                            const frontend::FrontEndParams& fe_params,
                            const backend::BackendParams& backend_params,
                            std::uint64_t expected_instructions);

// ---- Replay-mode differential oracle -------------------------------------

// Bit-identity of two counter sets (same keys, same order, same values).
// `what` names the comparison in error messages.
Report check_counters_equal(const CounterSet& expected,
                            const CounterSet& actual, std::string_view what);

// The back-end configuration the differential harness exercises when the
// caller does not supply one: an out-of-order machine with a window small
// enough that back-pressure and both dispatch-stall causes actually fire on
// fuzz-sized traces.
backend::BackendParams replay_diff_backend();

// Runs every simulator — miss rate (with per-block attribution),
// sequentiality, SEQ.3, trace cache, the speculative front end, and the
// back-end pipeline — in the interp, batched and compiled replay modes
// (sim/replay.h) and requires the counters to be bit-identical across
// modes. The interpreter is the reference; any divergence is a
// replay-engine bug. `backend_params` overrides the back-end configuration
// (replay_diff_backend() when null); the interp back-end run additionally
// passes check_backend_result.
Report check_replay_modes(const trace::BlockTrace& trace,
                          const cfg::ProgramImage& image,
                          const cfg::AddressMap& layout,
                          const sim::CacheGeometry& geometry,
                          const backend::BackendParams* backend_params =
                              nullptr);

// ---- Umbrella ------------------------------------------------------------

struct OracleOptions {
  bool structure = true;
  bool replay = true;
  bool simulators = true;
  sim::CacheGeometry geometry{1024, 32, 1};
};

// Runs every applicable check for one (trace, image, layout) triple.
// `provenance` may be null (skips the CFA occupancy check).
Report verify_layout(const trace::BlockTrace& trace,
                     const cfg::ProgramImage& image,
                     const cfg::AddressMap& layout,
                     const core::MappingProvenance* provenance = nullptr,
                     const OracleOptions& options = {});

}  // namespace stc::verify
