// Deterministic fuzzing of the whole layout pipeline against the oracle.
//
// A FuzzCase is a plain-data description of a synthetic program, profile,
// trace and cache geometry — deliberately including the degenerate shapes
// the generators in tests/testing/synthetic.h avoid: zero-routine programs,
// single-block routines, self-loops, zero-weight edges, blocks larger than
// a cache line (or than a whole inter-CFA window), empty traces, duplicate
// seed lists, and extreme CFA budgets (0 and cache - 4). Two shapes target
// the speculative front end (src/frontend): call/return chains deeper than
// any bounded return-address stack, and a megamorphic call site whose
// dynamic successor changes nearly every visit (BTB-hostile).
//
// run_case() builds the case, produces every layout kind, and runs the full
// oracle over each — including the front-end checks: a transparent
// configuration must reproduce the baseline simulators field for field, and
// an undersized realistic one must satisfy the counter identities.
// shrink_case() greedily minimizes a failing case while it keeps failing;
// emit_cpp() prints a paste-ready regression test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/program.h"
#include "cfg/types.h"
#include "profile/profile.h"
#include "support/rng.h"
#include "trace/block_trace.h"
#include "verify/oracle.h"

namespace stc::verify {

struct FuzzBlock {
  std::uint16_t insns = 1;
  cfg::BlockKind kind = cfg::BlockKind::kFallThrough;
};

struct FuzzRoutine {
  std::vector<FuzzBlock> blocks;  // must be non-empty (image invariant)
  bool executor_op = false;
};

// Profile edge between global block indices (index = position in the
// flattened routines-then-blocks order, which equals the image's BlockId).
struct FuzzEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint64_t count = 0;  // zero-weight edges are legal
};

struct FuzzCase {
  std::vector<FuzzRoutine> routines;
  std::vector<FuzzEdge> edges;
  std::vector<std::uint32_t> trace;  // dynamic block events (global indices)
  std::vector<std::uint32_t> seeds;  // extra mapping seeds; duplicates legal
  std::uint64_t cache_bytes = 1024;
  std::uint64_t cfa_bytes = 256;
  std::uint32_t line_bytes = 32;

  std::size_t num_blocks() const;
};

// The case materialized against the production types. The WeightedCFG's
// block counts come from the trace; succs come from `edges` verbatim.
struct BuiltCase {
  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
};

// Requires a self-consistent case (all indices < num_blocks(), every routine
// non-empty, cfa < cache). check_case() reports why a case is not.
bool check_case(const FuzzCase& c, std::string* why = nullptr);
BuiltCase build_case(const FuzzCase& c);

// Fault injection for exercising the oracle itself: kShortBlock emulates an
// off-by-one block size in the mapping cursor by moving the address-adjacent
// successor of some block 4 bytes (one instruction) backwards, creating the
// overlap such a bug would produce.
enum class Injection { kNone, kShortBlock };

// Builds every layout kind (orig, P&H, Torrellas, STC auto, STC ops) plus a
// direct map_sequences run over `seeds`, applies the injection to each, and
// verifies all of them with the oracle; also round-trips the case through
// the Replicator. Returns the merged report.
Report run_case(const FuzzCase& c, Injection injection = Injection::kNone);

// Replay-mode differential check: builds the case and runs the oracle's
// check_replay_modes over every layout kind, requiring the batched and
// compiled replay engines (sim/replay.h) to reproduce the interpreter's
// counters bit for bit on every simulator — including the back-end
// pipeline (src/backend), whose machine shape (inorder/ooo, IQ/ROB depths,
// cost model) is derived deterministically from the case content so the
// corpus sweeps configurations.
Report run_replay_diff(const FuzzCase& c);

// Multi-tenant differential check: splits the case's trace into a
// salt-derived number of tenant streams and composes them with a
// salt-derived quantum/arrival model (src/workload/composer.h), then checks
//   - composition is deterministic (two runs are byte-identical),
//   - conservation (per-tenant event totals match the streams, and the
//     segment provenance replays each stream exactly),
//   - a single-tenant composition is byte-identical to the input trace,
//   - the composed trace replays bit-identically across the interp, batched
//     and compiled engines on the original and STC-ops layouts, and
//   - when the CFA affords at least one byte per tenant, the
//     tenant-partitioned layout built from per-stream profiles passes the
//     full oracle including check_tenant_partition.
Report run_multitenant_diff(const FuzzCase& c);

// Random case generation; deterministic in the Rng state.
FuzzCase random_case(Rng& rng);

// Greedy deterministic shrink: repeatedly drops trace spans, routines,
// blocks, edges and seeds, and simplifies block sizes/kinds, keeping each
// change only if run_case(c, injection) still fails. Returns the fixpoint.
FuzzCase shrink_case(const FuzzCase& c, Injection injection = Injection::kNone);

// Same shrink loop against an arbitrary failure predicate (`fails` must be
// true for `c`); used by --replay-diff to shrink replay-mode divergences.
FuzzCase shrink_case_with(const FuzzCase& c,
                          const std::function<bool(const FuzzCase&)>& fails);

// Paste-ready GoogleTest snippet reconstructing the case. `check_fn` names
// the verify:: entry point the emitted test calls (default "run_case").
std::string emit_cpp(const FuzzCase& c, std::string_view test_name,
                     std::string_view check_fn = "run_case");

}  // namespace stc::verify
