#include "verify/oracle.h"

#include <algorithm>
#include <string>

#include "cfg/types.h"
#include "sim/replay.h"
#include "sim/trace_cache.h"
#include "trace/fetch_stream.h"

namespace stc::verify {
namespace {

using cfg::BlockId;

std::string u64(std::uint64_t v) { return std::to_string(v); }

// "block #12 'name'" — identifies a block in error messages.
std::string block_ref(const cfg::ProgramImage& image, BlockId b) {
  std::string out = "block #" + u64(b);
  if (b < image.num_blocks()) {
    out += " '" + image.block(b).name + "'";
  }
  return out;
}

// Reports stop accumulating detail past this; walks can stop early.
constexpr std::uint64_t kGiveUpAfter = 64;

}  // namespace

void Report::fail(std::string message) {
  ++total_;
  if (errors_.size() < kMaxErrors) errors_.push_back(std::move(message));
}

void Report::merge(const Report& other, std::string_view context) {
  total_ += other.total_;
  for (const std::string& msg : other.errors_) {
    if (errors_.size() >= kMaxErrors) break;
    if (context.empty()) {
      errors_.push_back(msg);
    } else {
      errors_.push_back(std::string(context) + ": " + msg);
    }
  }
}

std::string Report::summary() const {
  if (ok()) return "OK";
  std::string out = u64(total_) + " violation(s):\n";
  for (const std::string& msg : errors_) {
    out += "  - " + msg + "\n";
  }
  if (total_ > errors_.size()) {
    out += "  ... and " + u64(total_ - errors_.size()) + " more\n";
  }
  return out;
}

std::uint64_t trace_instructions(const trace::BlockTrace& trace,
                                 const cfg::ProgramImage& image) {
  std::uint64_t insns = 0;
  trace.for_each([&](BlockId b) {
    if (b < image.num_blocks()) insns += image.block(b).insns;
  });
  return insns;
}

// ---- Invariant class 1: structure ----------------------------------------

Report check_structure(const cfg::ProgramImage& image,
                       const cfg::AddressMap& layout) {
  Report report;
  if (layout.size() != image.num_blocks()) {
    report.fail("layout '" + layout.name() + "' covers " + u64(layout.size()) +
                " blocks, image has " + u64(image.num_blocks()));
    return report;
  }

  struct Placed {
    std::uint64_t begin;
    std::uint64_t end;
    BlockId block;
  };
  std::vector<Placed> placed;
  placed.reserve(layout.size());
  for (BlockId b = 0; b < image.num_blocks(); ++b) {
    if (!layout.assigned(b)) {
      report.fail(block_ref(image, b) + " is unassigned (lost by the layout)");
      continue;
    }
    const std::uint64_t begin = layout.addr(b);
    const std::uint64_t bytes = image.block(b).bytes();
    if (begin > ~std::uint64_t{0} - bytes) {
      report.fail(block_ref(image, b) + " wraps the address space (addr " +
                  u64(begin) + " + " + u64(bytes) + " bytes)");
      continue;
    }
    placed.push_back({begin, begin + bytes, b});
  }

  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  for (std::size_t i = 1; i < placed.size(); ++i) {
    if (placed[i].begin < placed[i - 1].end) {
      report.fail(block_ref(image, placed[i - 1].block) + " [" +
                  u64(placed[i - 1].begin) + ", " + u64(placed[i - 1].end) +
                  ") overlaps " + block_ref(image, placed[i].block) + " [" +
                  u64(placed[i].begin) + ", " + u64(placed[i].end) + ")");
      if (report.total_found() >= kGiveUpAfter) break;
    }
  }
  return report;
}

Report check_replication_structure(
    const cfg::ProgramImage& original, const cfg::ProgramImage& extended,
    const std::vector<BlockId>& origin_blocks) {
  Report report;
  if (origin_blocks.size() != extended.num_blocks()) {
    report.fail("origin map covers " + u64(origin_blocks.size()) +
                " blocks, extended image has " + u64(extended.num_blocks()));
    return report;
  }
  if (extended.num_blocks() < original.num_blocks()) {
    report.fail("extended image (" + u64(extended.num_blocks()) +
                " blocks) lost blocks of the original (" +
                u64(original.num_blocks()) + ")");
    return report;
  }
  for (BlockId b = 0; b < extended.num_blocks(); ++b) {
    const BlockId origin = origin_blocks[b];
    if (b < original.num_blocks() && origin != b) {
      report.fail("original " + block_ref(original, b) +
                  " remapped to origin #" + u64(origin) +
                  " (original ids must be unchanged)");
      continue;
    }
    if (origin >= original.num_blocks()) {
      report.fail("clone " + block_ref(extended, b) +
                  " claims out-of-range origin #" + u64(origin));
      continue;
    }
    const cfg::BlockInfo& clone = extended.block(b);
    const cfg::BlockInfo& orig = original.block(origin);
    if (clone.insns != orig.insns) {
      report.fail("clone " + block_ref(extended, b) + " has " +
                  u64(clone.insns) + " insns, origin " +
                  block_ref(original, origin) + " has " + u64(orig.insns));
    }
    if (clone.kind != orig.kind) {
      report.fail("clone " + block_ref(extended, b) +
                  " changed block kind vs origin " +
                  block_ref(original, origin));
    }
    if (clone.index_in_routine != orig.index_in_routine) {
      report.fail("clone " + block_ref(extended, b) +
                  " sits at routine offset " + u64(clone.index_in_routine) +
                  ", origin at " + u64(orig.index_in_routine) +
                  " (clones must mirror whole routines)");
    }
    if (report.total_found() >= kGiveUpAfter) break;
  }
  return report;
}

// ---- Invariant class 2: replay equivalence -------------------------------

Report check_replay(const trace::BlockTrace& trace,
                    const cfg::ProgramImage& image,
                    const cfg::AddressMap& layout) {
  Report report;
  if (layout.size() != image.num_blocks()) {
    report.fail("layout does not cover the image; structure check applies");
    return report;
  }

  // Ground truth: the trace events themselves, sized by the image and
  // addressed by the map. The production adapters must reproduce them.
  trace::BlockTrace::Cursor truth(trace);
  trace::BlockRunStream stream(trace, image, layout);
  sim::FetchPipe pipe(trace, image, layout);

  std::uint64_t event = 0;
  std::uint64_t insns_seen = 0;
  BlockId cur = truth.done() ? cfg::kInvalidBlock : truth.next();
  while (cur != cfg::kInvalidBlock) {
    if (cur >= image.num_blocks()) {
      report.fail("event " + u64(event) + " names out-of-range block #" +
                  u64(cur));
      return report;
    }
    if (!layout.assigned(cur)) {
      report.fail("event " + u64(event) + ": " + block_ref(image, cur) +
                  " has no address");
      return report;
    }
    const cfg::BlockInfo& info = image.block(cur);
    const std::uint64_t addr = layout.addr(cur);
    const BlockId next = truth.done() ? cfg::kInvalidBlock : truth.next();
    const bool has_next = next != cfg::kInvalidBlock;
    const bool valid_next = has_next && next < image.num_blocks() &&
                            layout.assigned(next);
    const std::uint64_t seq_end = addr + std::uint64_t{info.insns} *
                                             cfg::kInsnBytes;
    const bool taken = valid_next && layout.addr(next) != seq_end;

    // BlockRunStream must agree field for field.
    trace::BlockRun run;
    if (!stream.next(run)) {
      report.fail("stream ended at event " + u64(event) + " of " +
                  u64(trace.num_events()));
      return report;
    }
    if (run.addr != addr || run.insns != info.insns) {
      report.fail("event " + u64(event) + " (" + block_ref(image, cur) +
                  "): stream run at addr " + u64(run.addr) + "/" +
                  u64(run.insns) + " insns, expected " + u64(addr) + "/" +
                  u64(info.insns));
    }
    if (run.ends_in_branch != cfg::ends_in_branch(info.kind)) {
      report.fail("event " + u64(event) + " (" + block_ref(image, cur) +
                  "): stream branch flag disagrees with block kind");
    }
    if (run.has_next != has_next ||
        (valid_next && run.next_addr != layout.addr(next))) {
      report.fail("event " + u64(event) + " (" + block_ref(image, cur) +
                  "): stream lookahead disagrees with the trace");
    }
    if (valid_next && run.taken != taken) {
      report.fail("event " + u64(event) + " (" + block_ref(image, cur) +
                  "): stream taken=" + (run.taken ? "1" : "0") +
                  ", first-principles taken=" + (taken ? "1" : "0"));
    }

    // FetchPipe must deliver the same block as individual instructions at
    // consecutive addresses.
    for (std::uint32_t k = 0; k < info.insns; ++k) {
      sim::FetchPipe::Insn insn;
      if (!pipe.peek(0, insn)) {
        report.fail("pipe ended inside event " + u64(event) + " (" +
                    block_ref(image, cur) + ") at instruction " + u64(k));
        return report;
      }
      const bool last = k + 1 == info.insns;
      const std::uint64_t want = addr + std::uint64_t{k} * cfg::kInsnBytes;
      if (insn.addr != want || insn.block_end != last ||
          insn.is_branch != (last && cfg::ends_in_branch(info.kind)) ||
          insn.taken != (last && taken)) {
        report.fail("event " + u64(event) + " (" + block_ref(image, cur) +
                    ") instruction " + u64(k) + ": pipe yields addr " +
                    u64(insn.addr) + ", expected " + u64(want) +
                    " (or flag mismatch)");
      }
      pipe.consume(1);
      ++insns_seen;
      if (report.total_found() >= kGiveUpAfter) return report;
    }

    ++event;
    cur = next;
  }

  trace::BlockRun extra;
  if (stream.next(extra)) {
    report.fail("stream yields runs past the " + u64(trace.num_events()) +
                " trace events");
  }
  if (!pipe.done()) {
    report.fail("pipe still has instructions after the trace ended");
  }
  if (event != trace.num_events()) {
    report.fail("replayed " + u64(event) + " events, trace records " +
                u64(trace.num_events()));
  }
  if (insns_seen != trace_instructions(trace, image)) {
    report.fail("replayed " + u64(insns_seen) + " instructions, trace holds " +
                u64(trace_instructions(trace, image)));
  }
  return report;
}

Report check_replicated_replay(const trace::BlockTrace& original_trace,
                               const trace::BlockTrace& transformed,
                               const cfg::ProgramImage& original,
                               const cfg::ProgramImage& extended,
                               const std::vector<BlockId>& origin_blocks) {
  Report report;
  if (origin_blocks.size() != extended.num_blocks()) {
    report.fail("origin map does not cover the extended image");
    return report;
  }
  if (original_trace.num_events() != transformed.num_events()) {
    report.fail("transform changed the event count: " +
                u64(original_trace.num_events()) + " -> " +
                u64(transformed.num_events()));
    return report;
  }
  trace::BlockTrace::Cursor orig(original_trace);
  trace::BlockTrace::Cursor repl(transformed);
  std::uint64_t event = 0;
  while (!orig.done()) {
    const BlockId o = orig.next();
    const BlockId t = repl.next();
    if (t >= extended.num_blocks()) {
      report.fail("event " + u64(event) +
                  ": transformed trace names out-of-range block #" + u64(t));
      return report;
    }
    if (origin_blocks[t] != o) {
      report.fail("event " + u64(event) + ": transformed " +
                  block_ref(extended, t) + " projects to origin #" +
                  u64(origin_blocks[t]) + ", original trace executed " +
                  block_ref(original, o));
      if (report.total_found() >= kGiveUpAfter) return report;
    }
    ++event;
  }
  return report;
}

// ---- Invariant class 3: simulator + occupancy invariants -----------------

Report check_cfa_occupancy(const cfg::ProgramImage& image,
                           const cfg::AddressMap& layout,
                           const core::MappingProvenance& provenance) {
  Report report;
  if (provenance.empty()) return report;  // no CFA contract
  if (provenance.pass_of.size() != image.num_blocks() ||
      layout.size() != image.num_blocks()) {
    report.fail("provenance/layout do not cover the image");
    return report;
  }
  const std::uint64_t cache = provenance.cache_bytes;
  const std::uint64_t cfa = provenance.cfa_bytes;
  if (cache == 0) {
    report.fail("provenance has cache_bytes == 0");
    return report;
  }
  if (cfa == 0) return report;  // no reservation: occupancy is trivial

  for (BlockId b = 0; b < image.num_blocks(); ++b) {
    if (!layout.assigned(b)) continue;  // structure check reports this
    const std::uint32_t pass = provenance.pass_of[b];
    const std::uint64_t addr = layout.addr(b);
    const std::uint64_t bytes = image.block(b).bytes();
    if (pass == 0) {
      // Figure 4: first-pass sequences own [0, cfa) of region 0.
      if (addr + bytes > cfa) {
        report.fail("pass-0 " + block_ref(image, b) + " [" + u64(addr) + ", " +
                    u64(addr + bytes) + ") leaves the CFA budget [0, " +
                    u64(cfa) + ")");
      }
    } else if (pass != core::MappingProvenance::kColdPass) {
      // Later passes must keep every region's CFA window free.
      const std::uint64_t offset = addr % cache;
      if (offset < cfa) {
        report.fail("pass-" + u64(pass) + " " + block_ref(image, b) +
                    " starts at region offset " + u64(offset) +
                    ", inside the reserved CFA window [0, " + u64(cfa) + ")");
      } else if (bytes > cache - offset) {
        // Straddles into the next region's reserved window.
        if (bytes <= cache - cfa) {
          report.fail("pass-" + u64(pass) + " " + block_ref(image, b) +
                      " (" + u64(bytes) + " bytes at region offset " +
                      u64(offset) + ") straddles into the next CFA window");
        } else if (offset != cfa) {
          report.fail("oversized pass-" + u64(pass) + " " +
                      block_ref(image, b) + " (" + u64(bytes) +
                      " bytes) does not start at a window boundary");
        }
      }
    }
    if (report.total_found() >= kGiveUpAfter) break;
  }
  return report;
}

Report check_tenant_partition(const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const core::MappingProvenance& provenance) {
  Report report;
  if (provenance.empty() || !provenance.partitioned()) return report;
  if (provenance.pass_of.size() != image.num_blocks() ||
      provenance.tenant_of.size() != image.num_blocks() ||
      layout.size() != image.num_blocks()) {
    report.fail("partitioned provenance/layout do not cover the image");
    return report;
  }
  const std::uint64_t cfa = provenance.cfa_bytes;
  const std::uint32_t groups = provenance.num_tenant_regions;
  if (cfa < groups) {
    report.fail("partitioned provenance has cfa_bytes " + u64(cfa) +
                " < num_tenant_regions " + u64(groups));
    return report;
  }
  // Window boundaries: groups+1 ascending offsets tiling [0, cfa).
  const auto& starts = provenance.tenant_region_start;
  if (starts.size() != std::size_t{groups} + 1 || starts.front() != 0 ||
      starts.back() != cfa) {
    report.fail("partitioned provenance has " + u64(starts.size()) +
                " region boundaries for " + u64(groups) +
                " regions (expected " + u64(groups + 1) +
                " offsets from 0 to cfa_bytes)");
    return report;
  }
  for (std::uint32_t g = 0; g < groups; ++g) {
    if (starts[g] >= starts[g + 1]) {
      report.fail("tenant region " + u64(g) + " is empty or reversed: [" +
                  u64(starts[g]) + ", " + u64(starts[g + 1]) + ")");
      return report;
    }
  }

  for (BlockId b = 0; b < image.num_blocks(); ++b) {
    if (!layout.assigned(b)) continue;  // structure check reports this
    const bool pass0 = provenance.pass_of[b] == 0;
    const std::uint32_t tenant = provenance.tenant_of[b];
    if (!pass0) {
      if (tenant != core::MappingProvenance::kNoTenant) {
        report.fail(block_ref(image, b) + " carries tenant " + u64(tenant) +
                    " but was not placed by a tenant's first pass");
      }
      continue;
    }
    if (tenant >= groups) {
      report.fail("pass-0 " + block_ref(image, b) + " has tenant id " +
                  u64(tenant) + ", expected [0, " + u64(groups) + ")");
      continue;
    }
    const std::uint64_t lo = starts[tenant];
    const std::uint64_t hi = starts[tenant + 1];
    const std::uint64_t addr = layout.addr(b);
    const std::uint64_t bytes = image.block(b).bytes();
    if (addr < lo || addr + bytes > hi) {
      report.fail("tenant-" + u64(tenant) + " pass-0 " + block_ref(image, b) +
                  " [" + u64(addr) + ", " + u64(addr + bytes) +
                  ") leaves its CFA sub-window [" + u64(lo) + ", " + u64(hi) +
                  ")");
    }
    if (report.total_found() >= kGiveUpAfter) break;
  }
  return report;
}

Report check_missrate_result(const sim::MissRateResult& result,
                             const sim::CacheStats& stats,
                             std::uint64_t expected_instructions) {
  Report report;
  if (result.instructions != expected_instructions) {
    report.fail("miss-rate run executed " + u64(result.instructions) +
                " instructions, trace holds " + u64(expected_instructions));
  }
  if (result.line_accesses != stats.accesses) {
    report.fail("driver counted " + u64(result.line_accesses) +
                " line accesses, cache counted " + u64(stats.accesses));
  }
  if (result.misses != stats.misses) {
    report.fail("driver counted " + u64(result.misses) +
                " misses, cache counted " + u64(stats.misses));
  }
  if (stats.misses + stats.victim_hits > stats.accesses) {
    report.fail("cache counters inconsistent: misses " + u64(stats.misses) +
                " + victim hits " + u64(stats.victim_hits) + " > accesses " +
                u64(stats.accesses));
  }
  return report;
}

Report check_fetch_result(const sim::FetchResult& result,
                          const sim::FetchParams& params,
                          std::uint64_t expected_instructions,
                          bool with_trace_cache) {
  Report report;
  if (result.instructions != expected_instructions) {
    report.fail("fetch run supplied " + u64(result.instructions) +
                " instructions, trace holds " + u64(expected_instructions));
  }
  if (result.instructions >
      std::uint64_t{params.width} * result.fetch_requests) {
    report.fail("supplied " + u64(result.instructions) +
                " instructions in " + u64(result.fetch_requests) +
                " requests of width " + u64(params.width));
  }
  const std::uint64_t penalty_units =
      params.penalty_per_line ? result.lines_missed : result.miss_requests;
  const std::uint64_t expect_cycles =
      result.fetch_requests +
      std::uint64_t{params.miss_penalty} * penalty_units;
  if (result.cycles != expect_cycles) {
    report.fail("cycle identity broken: " + u64(result.cycles) +
                " cycles, expected requests " + u64(result.fetch_requests) +
                " + penalty " + u64(params.miss_penalty) + " x " +
                u64(penalty_units));
  }
  if (result.miss_requests > result.fetch_requests) {
    report.fail("more missing requests (" + u64(result.miss_requests) +
                ") than requests (" + u64(result.fetch_requests) + ")");
  }
  if (result.lines_missed < result.miss_requests ||
      result.lines_missed > 2 * result.miss_requests) {
    report.fail("lines_missed " + u64(result.lines_missed) +
                " outside [miss_requests, 2 x miss_requests] = [" +
                u64(result.miss_requests) + ", " +
                u64(2 * result.miss_requests) + "]");
  }
  if (params.perfect_icache &&
      (result.miss_requests != 0 || result.lines_missed != 0)) {
    report.fail("perfect i-cache run reports misses");
  }
  if (with_trace_cache) {
    if (result.tc_hits + result.tc_misses != result.fetch_requests) {
      report.fail("tc_hits " + u64(result.tc_hits) + " + tc_misses " +
                  u64(result.tc_misses) + " != fetch_requests " +
                  u64(result.fetch_requests));
    }
    if (result.tc_probes != result.tc_hits + result.tc_misses) {
      report.fail("trace cache probed " + u64(result.tc_probes) +
                  " times for " + u64(result.tc_hits + result.tc_misses) +
                  " recorded outcomes");
    }
    if (result.tc_fills > result.tc_probes) {
      report.fail("trace cache filled " + u64(result.tc_fills) +
                  " entries on only " + u64(result.tc_probes) + " probes");
    }
    if (result.tc_fills > result.tc_misses) {
      report.fail("trace cache filled " + u64(result.tc_fills) +
                  " entries from only " + u64(result.tc_misses) + " misses");
    }
  } else if (result.tc_hits != 0 || result.tc_misses != 0 ||
             result.tc_fills != 0 || result.tc_probes != 0) {
    report.fail("SEQ.3-only run reports trace-cache activity");
  }
  return report;
}

Report check_frontend_result(const frontend::FrontEndResult& result,
                             const sim::FetchParams& params,
                             const frontend::FrontEndParams& fe_params,
                             std::uint64_t expected_instructions,
                             bool with_trace_cache) {
  Report report;
  const sim::FetchResult& fetch = result.fetch;
  const frontend::FrontEndStats& fe = result.frontend;

  // Baseline cycle identity plus the two front-end stall terms. (The
  // instruction-count, width, miss-bound and trace-cache identities are
  // checked by the check_fetch_result merge below.)
  const std::uint64_t penalty_units =
      params.penalty_per_line ? fetch.lines_missed : fetch.miss_requests;
  const std::uint64_t expect_cycles =
      fetch.fetch_requests +
      std::uint64_t{params.miss_penalty} * penalty_units +
      fe.bp_bubble_cycles + fe.prefetch_late_cycles;
  if (fetch.cycles != expect_cycles) {
    report.fail("front-end cycle identity broken: " + u64(fetch.cycles) +
                " cycles, expected requests " + u64(fetch.fetch_requests) +
                " + penalty " + u64(params.miss_penalty) + " x " +
                u64(penalty_units) + " + bubbles " +
                u64(fe.bp_bubble_cycles) + " + late " +
                u64(fe.prefetch_late_cycles));
  }
  if (fe.bp_bubble_cycles !=
      fe.bp_mispredicts * std::uint64_t{fe_params.mispredict_penalty}) {
    report.fail("bubble cycles " + u64(fe.bp_bubble_cycles) + " != " +
                u64(fe.bp_mispredicts) + " mispredicts x penalty " +
                u64(fe_params.mispredict_penalty));
  }
  if (fe.bp_mispredicts > fe.bp_lookups) {
    report.fail("more mispredicts (" + u64(fe.bp_mispredicts) +
                ") than lookups (" + u64(fe.bp_lookups) + ")");
  }
  if (fe.btb_lookups > fe.bp_lookups) {
    report.fail("more BTB lookups (" + u64(fe.btb_lookups) +
                ") than resolved transfers (" + u64(fe.bp_lookups) + ")");
  }
  if (fe.btb_misses > fe.btb_lookups) {
    report.fail("more BTB misses (" + u64(fe.btb_misses) +
                ") than BTB lookups (" + u64(fe.btb_lookups) + ")");
  }
  if (fe.ras_pops > fe.bp_lookups) {
    report.fail("more RAS pops (" + u64(fe.ras_pops) +
                ") than resolved transfers (" + u64(fe.bp_lookups) + ")");
  }
  if (fe.prefetch_useful + fe.prefetch_late + fe.prefetch_evicted >
      fe.prefetch_issued) {
    report.fail("prefetch outcomes useful " + u64(fe.prefetch_useful) +
                " + late " + u64(fe.prefetch_late) + " + evicted " +
                u64(fe.prefetch_evicted) + " exceed issued " +
                u64(fe.prefetch_issued));
  }
  if (fe.prefetch_late == 0 && fe.prefetch_late_cycles != 0) {
    report.fail("late-prefetch stall cycles without late prefetches");
  }
  if (fe_params.kind == frontend::BpredKind::kPerfect &&
      (fe.bp_lookups != 0 || fe.bp_mispredicts != 0 ||
       fe.bp_bubble_cycles != 0)) {
    report.fail("perfect predictor reports prediction activity");
  }
  if ((!fe_params.prefetch || params.perfect_icache) &&
      (fe.prefetch_issued != 0 || fe.prefetch_useful != 0 ||
       fe.prefetch_late != 0 || fe.prefetch_evicted != 0 ||
       fe.prefetch_late_cycles != 0)) {
    report.fail("prefetch counters nonzero with prefetching disabled");
  }

  // The baseline per-request miss bounds and trace-cache identities carry
  // over unchanged; reuse them on a copy whose stall cycles are deducted so
  // the baseline cycle identity applies.
  sim::FetchResult base = fetch;
  base.cycles -= fe.bp_bubble_cycles + fe.prefetch_late_cycles;
  report.merge(check_fetch_result(base, params, expected_instructions,
                                  with_trace_cache),
               "frontend/base");
  return report;
}

Report check_backend_result(const backend::BackendResult& result,
                            const sim::FetchParams& params,
                            const frontend::FrontEndParams& fe_params,
                            const backend::BackendParams& backend_params,
                            std::uint64_t expected_instructions) {
  Report report;
  const sim::FetchResult& fetch = result.fetch;
  const frontend::FrontEndStats& fe = result.frontend;
  const backend::BackendStats& be = result.backend;
  if (backend_params.off()) {
    report.fail("backend result produced with STC_BACKEND=off");
    return report;
  }

  // Conservation: everything fetched is retired, in ops and instructions.
  if (fetch.instructions != expected_instructions) {
    report.fail("backend fetched " + u64(fetch.instructions) +
                " instructions, trace executes " +
                u64(expected_instructions));
  }
  if (be.retired_insns != fetch.instructions) {
    report.fail("backend retired " + u64(be.retired_insns) +
                " instructions, fetch supplied " + u64(fetch.instructions));
  }
  if (be.retired_ops != be.dispatched_ops ||
      be.retired_ops != be.issued_ops) {
    report.fail("backend did not drain: retired " + u64(be.retired_ops) +
                ", dispatched " + u64(be.dispatched_ops) + ", issued " +
                u64(be.issued_ops) + " ops");
  }
  if (be.retired_ops > be.retired_insns) {
    report.fail("more retired ops (" + u64(be.retired_ops) +
                ") than instructions (" + u64(be.retired_insns) +
                "): some op covered an empty block");
  }
  if (expected_instructions > 0 && be.retired_ops == 0) {
    report.fail("a nonempty trace retired zero ops");
  }

  // One clock: fetch and the back end count the same cycles, and neither
  // fetch requests nor commits can outrun their per-cycle bounds.
  if (fetch.cycles != be.cycles) {
    report.fail("clock split: fetch counts " + u64(fetch.cycles) +
                " cycles, backend " + u64(be.cycles));
  }
  if (fetch.fetch_requests > be.cycles) {
    report.fail("more fetch requests (" + u64(fetch.fetch_requests) +
                ") than cycles (" + u64(be.cycles) + ")");
  }
  if (be.retired_ops >
      be.cycles * std::uint64_t{backend_params.commit_width}) {
    report.fail("retired " + u64(be.retired_ops) + " ops in " +
                u64(be.cycles) + " cycles exceeds commit width " +
                u64(backend_params.commit_width));
  }
  if (be.issued_ops > be.cycles * std::uint64_t{backend_params.issue_width}) {
    report.fail("issued " + u64(be.issued_ops) + " ops in " + u64(be.cycles) +
                " cycles exceeds issue width " +
                u64(backend_params.issue_width));
  }

  // Bounded structures: high-water marks and per-cycle occupancy sums.
  if (be.iq_peak > backend_params.iq_depth) {
    report.fail("IQ peak " + u64(be.iq_peak) + " exceeds depth " +
                u64(backend_params.iq_depth));
  }
  if (be.rob_peak > backend_params.rob_depth) {
    report.fail("ROB peak " + u64(be.rob_peak) + " exceeds depth " +
                u64(backend_params.rob_depth));
  }
  if (be.iq_occupancy_sum >
      be.cycles * std::uint64_t{backend_params.iq_depth}) {
    report.fail("IQ occupancy sum " + u64(be.iq_occupancy_sum) +
                " exceeds depth x cycles");
  }
  if (be.rob_occupancy_sum >
      be.cycles * std::uint64_t{backend_params.rob_depth}) {
    report.fail("ROB occupancy sum " + u64(be.rob_occupancy_sum) +
                " exceeds depth x cycles");
  }
  for (const auto& [name, value] :
       {std::pair<const char*, std::uint64_t>{"frontend_stalls",
                                              be.frontend_stall_cycles},
        {"issue_stalls", be.issue_stall_cycles},
        {"empty_cycles", be.empty_cycles}}) {
    if (value > be.cycles) {
      report.fail(std::string(name) + " " + u64(value) + " exceed cycles " +
                  u64(be.cycles));
    }
  }

  // Front-end predictor bounds that survive the unified clock (the serial
  // front-end cycle identity does not apply here).
  if (fe.bp_bubble_cycles !=
      fe.bp_mispredicts * std::uint64_t{fe_params.mispredict_penalty}) {
    report.fail("bubble cycles " + u64(fe.bp_bubble_cycles) + " != " +
                u64(fe.bp_mispredicts) + " mispredicts x penalty " +
                u64(fe_params.mispredict_penalty));
  }
  if (fe.bp_mispredicts > fe.bp_lookups) {
    report.fail("more mispredicts (" + u64(fe.bp_mispredicts) +
                ") than lookups (" + u64(fe.bp_lookups) + ")");
  }
  if (fe_params.kind == frontend::BpredKind::kPerfect &&
      (fe.bp_lookups != 0 || fe.bp_mispredicts != 0 ||
       fe.bp_bubble_cycles != 0)) {
    report.fail("perfect predictor reports prediction activity");
  }
  if (params.perfect_icache &&
      (fetch.miss_requests != 0 || fetch.lines_missed != 0)) {
    report.fail("perfect icache reports misses");
  }
  return report;
}

Report check_simulators(const trace::BlockTrace& trace,
                        const cfg::ProgramImage& image,
                        const cfg::AddressMap& layout,
                        const sim::CacheGeometry& geometry) {
  Report report;
  const std::uint64_t expected = trace_instructions(trace, image);

  // Independent recount of line probes: consecutive instructions on one line
  // probe once; a re-entered line probes again (the Section 7.1 semantics).
  std::uint64_t expect_line_accesses = 0;
  {
    const std::uint32_t line = geometry.line_bytes;
    std::uint64_t prev_line = ~std::uint64_t{0};
    trace::BlockTrace::Cursor cursor(trace);
    while (!cursor.done()) {
      const BlockId b = cursor.next();
      if (b >= image.num_blocks() || !layout.assigned(b)) continue;
      const std::uint64_t addr = layout.addr(b);
      const std::uint64_t first = addr / line;
      const std::uint64_t last =
          (addr + image.block(b).bytes() - 1) / line;
      for (std::uint64_t l = first; l <= last; ++l) {
        if (l == prev_line) continue;
        ++expect_line_accesses;
        prev_line = l;
      }
    }
  }

  // Miss-rate simulator, recounted through the observer hook.
  {
    sim::ICache cache(geometry);
    std::uint64_t obs_accesses = 0;
    std::uint64_t obs_misses = 0;
    std::uint64_t obs_misaligned = 0;
    cache.set_observer([&](std::uint64_t line_addr, bool hit) {
      ++obs_accesses;
      if (!hit) ++obs_misses;
      if (line_addr % geometry.line_bytes != 0) ++obs_misaligned;
    });
    const sim::MissRateResult result =
        sim::run_missrate(trace, image, layout, cache);
    report.merge(check_missrate_result(result, cache.stats(), expected),
                 "missrate");
    if (result.line_accesses != expect_line_accesses) {
      report.fail("missrate: driver probed " + u64(result.line_accesses) +
                  " lines, independent recount expects " +
                  u64(expect_line_accesses));
    }
    if (obs_accesses != cache.stats().accesses ||
        obs_misses != cache.stats().misses) {
      report.fail("missrate: observer saw " + u64(obs_accesses) +
                  " accesses / " + u64(obs_misses) +
                  " misses, stats record " + u64(cache.stats().accesses) +
                  " / " + u64(cache.stats().misses));
    }
    if (obs_misaligned != 0) {
      report.fail("missrate: " + u64(obs_misaligned) +
                  " observed probe addresses were not line-aligned");
    }
  }

  // SEQ.3 fetch unit; its lines_missed must equal the cache's miss count.
  {
    sim::ICache cache(geometry);
    const sim::FetchParams params;
    const sim::FetchResult result =
        sim::run_seq3(trace, image, layout, params, &cache);
    report.merge(check_fetch_result(result, params, expected, false), "seq3");
    if (result.lines_missed != cache.stats().misses) {
      report.fail("seq3: driver counted " + u64(result.lines_missed) +
                  " missed lines, cache counted " +
                  u64(cache.stats().misses));
    }
    if (cache.stats().accesses < result.fetch_requests ||
        cache.stats().accesses > 2 * result.fetch_requests) {
      report.fail("seq3: " + u64(cache.stats().accesses) +
                  " cache probes for " + u64(result.fetch_requests) +
                  " fetch requests (must be 1-2 per request)");
    }
  }

  // Trace cache in front of SEQ.3.
  {
    sim::ICache cache(geometry);
    const sim::FetchParams params;
    const sim::TraceCacheParams tc_params;
    const sim::FetchResult result = sim::run_trace_cache(
        trace, image, layout, params, tc_params, &cache);
    report.merge(check_fetch_result(result, params, expected, true), "tc");
  }
  return report;
}

// ---- Umbrella ------------------------------------------------------------

Report verify_layout(const trace::BlockTrace& trace,
                     const cfg::ProgramImage& image,
                     const cfg::AddressMap& layout,
                     const core::MappingProvenance* provenance,
                     const OracleOptions& options) {
  Report report;
  if (options.structure) {
    report.merge(check_structure(image, layout), layout.name());
  }
  if (!report.ok()) {
    // Replay and simulation assume a structurally sound map; running them on
    // a broken one would only add noise after the real finding.
    return report;
  }
  if (provenance != nullptr) {
    report.merge(check_cfa_occupancy(image, layout, *provenance),
                 layout.name());
    report.merge(check_tenant_partition(image, layout, *provenance),
                 layout.name());
  }
  if (options.replay) {
    report.merge(check_replay(trace, image, layout), layout.name());
  }
  if (options.simulators) {
    report.merge(check_simulators(trace, image, layout, options.geometry),
                 layout.name());
  }
  return report;
}

Report check_counters_equal(const CounterSet& expected,
                            const CounterSet& actual, std::string_view what) {
  Report report;
  const auto& e = expected.items();
  const auto& a = actual.items();
  if (e.size() != a.size()) {
    report.fail(std::string(what) + ": " + u64(a.size()) +
                " counters (expected " + u64(e.size()) + ")");
    return report;
  }
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (e[i].first != a[i].first) {
      report.fail(std::string(what) + ": counter #" + u64(i) + " is '" +
                  a[i].first + "' (expected '" + e[i].first + "')");
      continue;
    }
    if (e[i].second != a[i].second) {
      report.fail(std::string(what) + ": " + e[i].first + " = " +
                  u64(a[i].second) + " (interp " + u64(e[i].second) + ")");
    }
  }
  return report;
}

namespace {

// Every simulator's counters for one replay mode, plus the Table 3
// per-block miss attribution.
struct ModeCounters {
  CounterSet miss;
  CounterSet seq;
  CounterSet seq3;
  CounterSet tc;
  CounterSet fe_seq3;
  CounterSet fe_tc;
  CounterSet be;
  std::vector<std::uint64_t> per_block;
};

// A realistic speculative front end (gshare + FDIP) so the differential
// covers predictor/BTB/RAS cycle counts, not just the Table 3/4 baselines.
frontend::FrontEndParams replay_diff_frontend() {
  frontend::FrontEndParams fe;
  fe.kind = frontend::BpredKind::kGshare;
  fe.table_bits = 8;
  fe.prefetch = true;
  fe.ftq_depth = 8;
  return fe;
}

}  // namespace

backend::BackendParams replay_diff_backend() {
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  bp.iq_depth = 8;
  bp.rob_depth = 24;
  bp.fetch_buffer_ops = 12;
  return bp;
}

Report check_replay_modes(const trace::BlockTrace& trace,
                          const cfg::ProgramImage& image,
                          const cfg::AddressMap& layout,
                          const sim::CacheGeometry& geometry,
                          const backend::BackendParams* backend_params) {
  Report report;
  const sim::FetchParams fparams;
  const sim::TraceCacheParams tc_params;
  const frontend::FrontEndParams fe = replay_diff_frontend();
  const backend::BackendParams bp =
      backend_params != nullptr ? *backend_params : replay_diff_backend();

  ModeCounters interp;
  {
    sim::ICache cache(geometry);
    sim::run_missrate(trace, image, layout, cache, &interp.per_block)
        .export_counters(interp.miss);
    cache.stats().export_counters(interp.miss);
  }
  trace::measure_sequentiality(trace, image, layout)
      .export_counters(interp.seq);
  {
    sim::ICache cache(geometry);
    sim::run_seq3(trace, image, layout, fparams, &cache)
        .export_counters(interp.seq3);
    cache.stats().export_counters(interp.seq3);
  }
  {
    sim::ICache cache(geometry);
    sim::run_trace_cache(trace, image, layout, fparams, tc_params, &cache)
        .export_counters(interp.tc);
    cache.stats().export_counters(interp.tc);
  }
  {
    sim::ICache cache(geometry);
    const frontend::FrontEndResult r =
        frontend::run_seq3_frontend(trace, image, layout, fparams, fe, &cache);
    r.fetch.export_counters(interp.fe_seq3);
    r.frontend.export_counters(interp.fe_seq3);
    cache.stats().export_counters(interp.fe_seq3);
  }
  {
    sim::ICache cache(geometry);
    const frontend::FrontEndResult r = frontend::run_trace_cache_frontend(
        trace, image, layout, fparams, tc_params, fe, &cache);
    r.fetch.export_counters(interp.fe_tc);
    r.frontend.export_counters(interp.fe_tc);
    cache.stats().export_counters(interp.fe_tc);
  }
  {
    sim::ICache cache(geometry);
    const Result<backend::BackendResult> r = backend::run_seq3_backend(
        trace, image, layout, fparams, fe, bp, &cache);
    if (!r.is_ok()) {
      report.fail("backend[interp]: " + r.status().to_string());
    } else {
      r.value().fetch.export_counters(interp.be);
      r.value().frontend.export_counters(interp.be);
      r.value().backend.export_counters(interp.be);
      cache.stats().export_counters(interp.be);
      report.merge(check_backend_result(r.value(), fparams, fe, bp,
                                        trace_instructions(trace, image)),
                   "backend[interp]");
    }
  }

  for (const sim::ReplayMode mode :
       {sim::ReplayMode::kBatched, sim::ReplayMode::kCompiled}) {
    Result<sim::ReplayPlan> built = sim::build_replay_plan(
        mode, trace, image, layout, geometry.line_bytes, bp.spec());
    const std::string m = sim::to_string(mode);
    if (!built.is_ok()) {
      report.fail(m + ": plan build failed: " + built.status().to_string());
      continue;
    }
    const sim::ReplayPlan& plan = built.value();
    ModeCounters got;
    {
      sim::ICache cache(geometry);
      sim::replay_missrate(plan, cache, &got.per_block)
          .export_counters(got.miss);
      cache.stats().export_counters(got.miss);
    }
    sim::replay_sequentiality(plan).export_counters(got.seq);
    {
      sim::ICache cache(geometry);
      sim::run_seq3(plan, fparams, &cache).export_counters(got.seq3);
      cache.stats().export_counters(got.seq3);
    }
    {
      sim::ICache cache(geometry);
      sim::run_trace_cache(plan, fparams, tc_params, &cache)
          .export_counters(got.tc);
      cache.stats().export_counters(got.tc);
    }
    {
      sim::ICache cache(geometry);
      const frontend::FrontEndResult r =
          frontend::run_seq3_frontend(plan, fparams, fe, &cache);
      r.fetch.export_counters(got.fe_seq3);
      r.frontend.export_counters(got.fe_seq3);
      cache.stats().export_counters(got.fe_seq3);
    }
    {
      sim::ICache cache(geometry);
      const frontend::FrontEndResult r =
          frontend::run_trace_cache_frontend(plan, fparams, tc_params, fe,
                                             &cache);
      r.fetch.export_counters(got.fe_tc);
      r.frontend.export_counters(got.fe_tc);
      cache.stats().export_counters(got.fe_tc);
    }
    {
      sim::ICache cache(geometry);
      const Result<backend::BackendResult> r =
          backend::run_seq3_backend(plan, fparams, fe, bp, &cache);
      if (!r.is_ok()) {
        report.fail("backend[" + m + "]: " + r.status().to_string());
      } else {
        r.value().fetch.export_counters(got.be);
        r.value().frontend.export_counters(got.be);
        r.value().backend.export_counters(got.be);
        cache.stats().export_counters(got.be);
      }
    }

    report.merge(check_counters_equal(interp.miss, got.miss,
                                      "missrate[" + m + "]"));
    report.merge(check_counters_equal(interp.seq, got.seq,
                                      "sequentiality[" + m + "]"));
    report.merge(check_counters_equal(interp.seq3, got.seq3,
                                      "seq3[" + m + "]"));
    report.merge(check_counters_equal(interp.tc, got.tc,
                                      "trace_cache[" + m + "]"));
    report.merge(check_counters_equal(interp.fe_seq3, got.fe_seq3,
                                      "seq3+frontend[" + m + "]"));
    report.merge(check_counters_equal(interp.fe_tc, got.fe_tc,
                                      "trace_cache+frontend[" + m + "]"));
    report.merge(check_counters_equal(interp.be, got.be,
                                      "backend[" + m + "]"));
    if (got.per_block != interp.per_block) {
      std::size_t where = 0;
      while (where < interp.per_block.size() &&
             where < got.per_block.size() &&
             interp.per_block[where] == got.per_block[where]) {
        ++where;
      }
      report.fail("missrate[" + m +
                  "]: per-block miss attribution diverges at " +
                  block_ref(image, static_cast<BlockId>(where)));
    }
  }
  return report;
}

}  // namespace stc::verify
