// Locks the BENCH_ablate_backend.json report schema against a checked-in
// golden file.
//
// The real bench sweeps layout x predictor x cache x issue-queue depth over
// the TPC-D kernel; this lock rebuilds the same report shape
// deterministically from a small synthetic program through the REAL
// measurement cell (bench::measure_seq3_backend), so any change to the
// cell's metric set, counter order, or meta keys shows up as a golden
// diff. Regenerate with
//   STC_UPDATE_GOLDEN=1 ./build/tests/stc_verify_test \
//       --gtest_filter=BackendSchemaTest.*
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backend/backend.h"
#include "bench/common.h"
#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "support/experiment.h"
#include "testing/golden_compare.h"
#include "testing/json_parse.h"

#ifndef STC_VERIFY_TEST_DIR
#define STC_VERIFY_TEST_DIR "."
#endif

namespace stc {
namespace {

std::string golden_path() {
  return std::string(STC_VERIFY_TEST_DIR) +
         "/golden/BENCH_ablate_backend_golden.json";
}

// Deterministic stand-in for the TPC-D kernel: a three-branch loop whose
// head alternates direction every iteration (same shape as the bpred lock).
std::unique_ptr<cfg::ProgramImage> mini_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("mini");
  builder.routine("loop", mod,
                  {{"head", 2, cfg::BlockKind::kBranch},
                   {"near", 1, cfg::BlockKind::kBranch},
                   {"far", 1, cfg::BlockKind::kBranch}});
  return builder.build();
}

trace::BlockTrace mini_trace() {
  trace::BlockTrace trace;
  for (int i = 0; i < 200; ++i) {
    trace.append(0);
    trace.append(i % 2 == 0 ? 1 : 2);
  }
  return trace;
}

// One perfect and one gshare cell, both through the real cell so the lock
// covers the production export path rather than a re-implementation.
std::string build_report() {
  const auto image = mini_image();
  const auto layout = cfg::AddressMap::original(*image);
  const auto trace = mini_trace();
  const sim::CacheGeometry geometry{1024, 32, 1};

  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  bp.iq_depth = 4;
  bp.rob_depth = 16;

  ExperimentRunner runner("ablate_backend");
  runner.meta("backend", backend::to_string(bp.kind));
  runner.meta("decode_width", std::uint64_t{bp.decode_width});
  runner.meta("issue_width", std::uint64_t{bp.issue_width});
  runner.meta("commit_width", std::uint64_t{bp.commit_width});
  runner.meta("rob_per_iq", std::uint64_t{4});
  runner.meta("base_latency", std::uint64_t{bp.base_latency});
  runner.meta("mem_latency", std::uint64_t{bp.mem_latency});
  runner.meta("size_shift", std::uint64_t{bp.size_shift});
  runner.record_phase("setup", 1.5);
  runner.record_phase("workload", 0.25);
  runner.record_phase("layouts", 0.125);

  runner.add("perfect orig 1K iq4",
             {{"bpred", "perfect"},
              {"layout", "orig"},
              {"cache", "1024"},
              {"iq_depth", "4"}},
             [&] {
               const frontend::FrontEndParams fe;
               return bench::measure_seq3_backend(trace, *image, layout,
                                                  geometry, fe, bp);
             });
  runner.add("gshare orig 1K iq4",
             {{"bpred", "gshare"},
              {"layout", "orig"},
              {"cache", "1024"},
              {"iq_depth", "4"}},
             [&] {
               frontend::FrontEndParams fe;
               fe.kind = frontend::BpredKind::kGshare;
               fe.prefetch = true;
               return bench::measure_seq3_backend(trace, *image, layout,
                                                  geometry, fe, bp);
             });
  runner.run(1);
  return runner.report_json();
}

bool is_volatile(const std::string& path) {
  return path == "phases.replay" || path == "throughput.events_per_sec" ||
         path == "throughput.blocks_per_second" ||
         path == "throughput.instructions_per_second";
}

TEST(BackendSchemaTest, ReportMatchesGoldenFile) {
  testing::check_against_golden(build_report(), golden_path(), is_volatile);
}

// Schema split: both rows report ipc and the fourteen be_* counters; the
// realistic row adds mpki and the front-end counters on top of everything
// the perfect row has.
TEST(BackendSchemaTest, RealisticRowsExtendPerfectRows) {
  std::string err;
  const testing::JsonValue report = testing::parse_json(build_report(), &err);
  ASSERT_EQ(err, "");
  const testing::JsonValue* results = report.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->items.size(), 2u);

  const testing::JsonValue* perfect = results->items[0].find("counters");
  const testing::JsonValue* gshare = results->items[1].find("counters");
  ASSERT_TRUE(perfect != nullptr && gshare != nullptr);
  for (const auto& [key, value] : perfect->members) {
    EXPECT_TRUE(gshare->find(key) != nullptr) << key;
  }
  for (const char* key :
       {"be_cycles", "be_retired_ops", "be_retired_insns",
        "be_dispatched_ops", "be_issued_ops", "be_iq_peak", "be_rob_peak",
        "be_iq_occupancy", "be_rob_occupancy", "be_frontend_stalls",
        "be_dispatch_stall_iq", "be_dispatch_stall_rob", "be_issue_stalls",
        "be_empty_cycles"}) {
    EXPECT_TRUE(perfect->find(key) != nullptr) << key;
    EXPECT_TRUE(gshare->find(key) != nullptr) << key;
  }
  for (const char* key : {"bp_lookups", "bp_mispredicts"}) {
    EXPECT_TRUE(gshare->find(key) != nullptr) << key;
    EXPECT_TRUE(perfect->find(key) == nullptr) << key;
  }
  EXPECT_TRUE(results->items[0].find("metrics")->find("ipc") != nullptr);
  EXPECT_TRUE(results->items[1].find("metrics")->find("ipc") != nullptr);
  EXPECT_TRUE(results->items[1].find("metrics")->find("mpki") != nullptr);
  EXPECT_TRUE(results->items[0].find("metrics")->find("mpki") == nullptr);
}

}  // namespace
}  // namespace stc
