// Locks the BENCH_ablate_multitenant.json report schema against a
// checked-in golden file.
//
// The real bench composes STC_TENANTS recorded streams and grids layout x
// tenant-count x quantum; this lock rebuilds the same report shape
// deterministically from a small synthetic program, driving the exact
// measurement cell the bench uses (bench::measure_tenant_miss plus the
// SEQ.3 IPC merge). The per-tenant metric/counter names (miss_pct_t<i>,
// t<i>_misses, worst_miss_pct) are report-consumer-visible — a change here
// changes what EXPERIMENTS.md documents. Regenerate with
//   STC_UPDATE_GOLDEN=1 ./build/tests/stc_verify_test \
//       --gtest_filter=MultitenantSchemaTest.*
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "sim/icache.h"
#include "support/check.h"
#include "support/experiment.h"
#include "testing/golden_compare.h"
#include "testing/json_parse.h"
#include "workload/composer.h"

#ifndef STC_VERIFY_TEST_DIR
#define STC_VERIFY_TEST_DIR "."
#endif

namespace stc {
namespace {

std::string golden_path() {
  return std::string(STC_VERIFY_TEST_DIR) +
         "/golden/BENCH_ablate_multitenant_golden.json";
}

std::unique_ptr<cfg::ProgramImage> mini_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("mini");
  builder.routine("outer", mod,
                  {{"head", 2, cfg::BlockKind::kBranch},
                   {"call", 1, cfg::BlockKind::kCall},
                   {"tail", 1, cfg::BlockKind::kReturn}});
  builder.routine("leaf", mod, {{"body", 3, cfg::BlockKind::kReturn}});
  return builder.build();
}

// Two tenants walking the same kernel through different block mixes, so the
// per-tenant attribution is visibly non-uniform.
std::vector<workload::TenantStream> mini_streams() {
  std::vector<workload::TenantStream> streams(2);
  streams[0].name = "dss#0";
  streams[1].name = "oltp#1";
  for (int i = 0; i < 120; ++i) {
    streams[0].trace.append(0);
    streams[0].trace.append(1);
    streams[0].trace.append(3);
    streams[0].trace.append(2);
    streams[1].trace.append(3);
    streams[1].trace.append(3);
  }
  return streams;
}

// The bench's grid cell, rebuilt on the mini program: tenant-attributed
// miss rate with the SEQ.3 IPC and fetch counters merged in.
std::string build_report() {
  const auto image = mini_image();
  const auto layout = cfg::AddressMap::original(*image);
  const sim::CacheGeometry geometry{1024, 32, 1};

  workload::ComposeParams params;
  params.quantum_events = 16;
  params.arrival = workload::ArrivalKind::kRoundRobin;
  Result<workload::ComposedTrace> composed =
      workload::compose(mini_streams(), params);
  STC_CHECK_MSG(composed.is_ok(), "mini composition failed");
  const workload::ComposedTrace& trace = composed.value();

  ExperimentRunner runner("ablate_multitenant");
  runner.meta("cache_bytes", std::uint64_t{geometry.size_bytes});
  runner.meta("arrival", "rr");
  runner.meta("switches_t2_q16", trace.context_switches);
  runner.record_phase("setup", 1.5);
  runner.record_phase("workload", 0.25);
  runner.record_phase("layouts", 0.125);
  runner.record_phase("compose", 0.0625);

  for (const char* name : {"orig", "ops-part"}) {
    runner.add(std::string(name) + "_t2_q16",
               {{"layout", name},
                {"tenants", "2"},
                {"quantum", "16"},
                {"arrival", "rr"}},
               [&] {
                 ExperimentResult result =
                     bench::measure_tenant_miss(trace, *image, layout,
                                                geometry);
                 const auto fetch =
                     bench::measure_seq3(trace.trace, *image, layout, geometry);
                 result.metric("ipc", fetch.metric("ipc"));
                 result.counters().merge(fetch.counters());
                 return result;
               });
  }
  runner.run(1);
  return runner.report_json();
}

// Wall-clock-derived values (structure still locked).
bool is_volatile(const std::string& path) {
  return path == "phases.replay" || path == "throughput.events_per_sec" ||
         path == "throughput.blocks_per_second" ||
         path == "throughput.instructions_per_second";
}

TEST(MultitenantSchemaTest, ReportMatchesGoldenFile) {
  testing::check_against_golden(build_report(), golden_path(), is_volatile);
}

// The contract the ablation's consumers (EXPERIMENTS.md readers, the CI
// smoke) depend on, independent of golden bytes: every cell carries the
// four grid params, the aggregate and per-tenant miss metrics, the fairness
// headline, and the merged fetch counters.
TEST(MultitenantSchemaTest, TenantCellShapeIsStable) {
  std::string err;
  const testing::JsonValue report = testing::parse_json(build_report(), &err);
  ASSERT_EQ(err, "");
  EXPECT_EQ(report.find("schema_version")->number, 3.0);
  const testing::JsonValue* failures = report.find("failures");
  ASSERT_TRUE(failures != nullptr && failures->is_array());
  EXPECT_TRUE(failures->items.empty());

  const testing::JsonValue* results = report.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->items.size(), 2u);
  for (const testing::JsonValue& cell : results->items) {
    const testing::JsonValue* params = cell.find("params");
    const testing::JsonValue* metrics = cell.find("metrics");
    const testing::JsonValue* counters = cell.find("counters");
    ASSERT_TRUE(params != nullptr && metrics != nullptr && counters != nullptr)
        << cell.find("name")->text;
    for (const char* key : {"layout", "tenants", "quantum", "arrival"}) {
      EXPECT_TRUE(params->find(key) != nullptr) << key;
    }
    for (const char* key :
         {"miss_pct", "miss_pct_t0", "miss_pct_t1", "worst_miss_pct", "ipc"}) {
      EXPECT_TRUE(metrics->find(key) != nullptr) << key;
    }
    for (const char* key :
         {"instructions", "line_accesses", "misses", "blocks", "t0_misses",
          "t1_misses"}) {
      EXPECT_TRUE(counters->find(key) != nullptr) << key;
    }
    // The fairness headline is the max over the per-tenant rates.
    const double worst = metrics->find("worst_miss_pct")->number;
    EXPECT_GE(worst, metrics->find("miss_pct_t0")->number);
    EXPECT_GE(worst, metrics->find("miss_pct_t1")->number);
  }
}

}  // namespace
}  // namespace stc
