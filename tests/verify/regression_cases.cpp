// Seed corpus for the layout-equivalence fuzzer.
//
// Every test is a minimized FuzzCase in the exact format tools/stc_fuzz's
// shrinker prints, so new failures can be pasted here verbatim. The cases
// pin the degenerate shapes the pipeline must stay transparent on: empty
// programs, single-block programs, self-loops, zero-weight edges, blocks
// larger than a cache line (and than a whole inter-CFA window), duplicate
// seed lists, and extreme CFA budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "trace/block_trace.h"
#include "trace/trace_format.h"
#include "verify/fuzz.h"

// Shrunk from stc_fuzz --inject short-block --seed 1 (iteration 2): the
// smallest shape on which an off-by-one block size produces an overlap —
// two one-instruction blocks in one routine, CFA budget not line-aligned.
TEST(FuzzRegression, InjectedShortBlock) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 4096;
  c.cfa_bytes = 905;
  c.line_bytes = 64;
  c.routines = {
      {{{1, stc::cfg::BlockKind::kFallThrough},
        {1, stc::cfg::BlockKind::kFallThrough}},
       false},
  };
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, EmptyProgram) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, SingleBlockProgram) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 512;
  c.cfa_bytes = 128;
  c.line_bytes = 16;
  c.routines = {
      {{{1, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.trace = {0, 0, 0};
  c.seeds = {0};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, SelfLoopDominatesProfile) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{4, stc::cfg::BlockKind::kBranch}, {1, stc::cfg::BlockKind::kReturn}},
       false},
  };
  c.edges = {
      {0, 0, 1000},  // self-loop carries almost all weight
      {0, 1, 1},
  };
  c.trace = {0, 0, 0, 0, 0, 1};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, ZeroWeightEdges) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{2, stc::cfg::BlockKind::kBranch}, {3, stc::cfg::BlockKind::kReturn}},
       false},
      {{{5, stc::cfg::BlockKind::kReturn}}, true},
  };
  c.edges = {
      {0, 1, 0},  // zero-weight edges are legal profile output
      {0, 2, 0},
      {1, 0, 0},
  };
  c.trace = {0, 1, 2};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// A block far larger than a cache line, and larger than the whole window
// between CFA reservations (cache - cfa = 256 bytes < 100 insns * 4).
TEST(FuzzRegression, BlockLargerThanInterCfaWindow) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 512;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{100, stc::cfg::BlockKind::kBranch},
        {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{2, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {
      {0, 0, 50},
      {0, 1, 10},
  };
  c.trace = {0, 0, 1, 2, 0};
  c.seeds = {0};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, DuplicateSeedList) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 512;
  c.line_bytes = 32;
  c.routines = {
      {{{3, stc::cfg::BlockKind::kCall}, {2, stc::cfg::BlockKind::kReturn}},
       false},
      {{{4, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {
      {0, 2, 40},
      {2, 1, 40},
  };
  c.trace = {0, 2, 1, 0, 2, 1};
  c.seeds = {0, 0, 2, 2, 0};  // duplicates must not double-place blocks
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, ZeroCfaBudget) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 0;  // no reserved window at all
  c.line_bytes = 32;
  c.routines = {
      {{{6, stc::cfg::BlockKind::kBranch}, {2, stc::cfg::BlockKind::kReturn}},
       false},
  };
  c.edges = {{0, 1, 10}};
  c.trace = {0, 1, 0, 1};
  c.seeds = {0, 1};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, NearTotalCfaBudget) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 1020;  // one instruction of non-reserved space per region
  c.line_bytes = 32;
  c.routines = {
      {{{2, stc::cfg::BlockKind::kFallThrough},
        {5, stc::cfg::BlockKind::kReturn}},
       false},
      {{{7, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {{0, 1, 3}};
  c.trace = {0, 1, 2, 0, 1};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Front-end seed corpus: a call chain four frames deeper than the realistic
// oracle configuration's return-address stack (ras_depth 4), followed by a
// megamorphic dispatcher whose call target cycles through every routine.
// Exercises RAS overflow/underflow and BTB target churn under all layouts.
TEST(FuzzRegression, DeepCallReturnAndIndirectDispatcher) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      // Eight call frames: {kCall body, kReturn tail} each.
      {{{2, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{1, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{3, stc::cfg::BlockKind::kCall}, {2, stc::cfg::BlockKind::kReturn}},
       false},
      {{{1, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{2, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{4, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{1, stc::cfg::BlockKind::kCall}, {2, stc::cfg::BlockKind::kReturn}},
       false},
      {{{2, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      // The dispatcher: one megamorphic call site.
      {{{2, stc::cfg::BlockKind::kCall}}, false},
  };
  // Call all the way down (bodies 0,2,..,14), return all the way up
  // (tails 15,13,..,1), then the dispatcher (16) targets a different
  // routine entry on every visit.
  c.trace = {0, 2,  4,  6, 8, 10, 12, 14, 15, 13, 11, 9, 7, 5,  3, 1,
             16, 0, 16, 4, 16, 8,  16, 12, 16, 2,  16, 6, 16, 10, 16, 14};
  c.edges = {{0, 2, 4}, {2, 4, 4}, {16, 0, 2}, {16, 4, 2}};
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Back-end replay-diff corpus: run_replay_diff derives the machine shape
// from the case content (salt = blocks*7 + events*5 + line_bytes), so these
// two cases pin one in-order (odd salt) and one out-of-order (even salt)
// configuration through the interp/batched/compiled differential check.
// Call/return-heavy so every op pays the memory-latency charge and the
// tiny derived window actually back-pressures the front end.
TEST(FuzzRegression, ReplayDiffInOrderCallChain) {
  stc::verify::FuzzCase c;  // 4 blocks, 7 events, line 32: salt 95 (inorder)
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{3, stc::cfg::BlockKind::kCall}, {2, stc::cfg::BlockKind::kReturn}},
       false},
      {{{6, stc::cfg::BlockKind::kCall}, {1, stc::cfg::BlockKind::kReturn}},
       false},
  };
  c.edges = {{0, 2, 10}, {2, 3, 10}, {3, 1, 10}};
  c.trace = {0, 2, 3, 1, 0, 2, 3};
  const stc::verify::Report report = stc::verify::run_replay_diff(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, ReplayDiffOooBranchyLoop) {
  stc::verify::FuzzCase c;  // 4 blocks, 8 events, line 32: salt 100 (ooo)
  c.cache_bytes = 512;
  c.cfa_bytes = 128;
  c.line_bytes = 32;
  c.routines = {
      {{{9, stc::cfg::BlockKind::kBranch},
        {2, stc::cfg::BlockKind::kBranch},
        {12, stc::cfg::BlockKind::kFallThrough},
        {1, stc::cfg::BlockKind::kReturn}},
       false},
  };
  c.edges = {{0, 1, 20}, {1, 2, 15}, {2, 0, 15}, {1, 3, 5}};
  c.trace = {0, 1, 2, 0, 1, 2, 1, 3};
  const stc::verify::Report report = stc::verify::run_replay_diff(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Multi-tenant composer corpus: run_multitenant_diff derives the tenant
// count, quantum and arrival model from the case content (the same salt as
// run_replay_diff), so these cases pin distinct scheduler shapes through
// the composition invariants — determinism, conservation, single-tenant
// byte-identity, cross-engine replay identity, and the tenant-partitioned
// layout's full-oracle pass. The first pins a two-routine loop whose trace
// is long enough for several slices but short enough that the final slice
// is truncated at a stream boundary — the segment-provenance edge the
// conservation check is most sensitive to.
TEST(FuzzRegression, MultitenantTruncatedFinalSlice) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{3, stc::cfg::BlockKind::kBranch}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{5, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {
      {0, 1, 12},
      {1, 2, 8},
      {2, 0, 8},
  };
  c.trace = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0};
  const stc::verify::Report report = stc::verify::run_multitenant_diff(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// A CFA so small it affords exactly one byte per derived tenant: the
// partitioned layout's demand-weighted budgets collapse to their floors and
// every hot block spills to the shared later passes, which the oracle's
// check_tenant_partition must still accept (empty sub-windows are legal,
// empty *regions* are not).
TEST(FuzzRegression, MultitenantMinimalCfaFloors) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 512;
  c.cfa_bytes = 4;
  c.line_bytes = 32;
  c.routines = {
      {{{2, stc::cfg::BlockKind::kBranch}, {2, stc::cfg::BlockKind::kReturn}},
       false},
      {{{7, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {{0, 1, 6}, {1, 2, 4}};
  c.trace = {0, 1, 2, 2, 0, 1, 2, 0, 1};
  const stc::verify::Report report = stc::verify::run_multitenant_diff(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Pinned from the stc_fuzz --trace-bytes corpus after the v3 format grew a
// chunk-index footer: every byte of the footer (index entries, count, index
// CRC, trailing magic) is flipped and every truncation inside the footer is
// tried, and each mutant must either be rejected with a structured error or
// decode to a byte-identical round-trip — never a silently different trace.
TEST(FuzzRegression, TraceBytesV3IndexFooterMutations) {
  stc::trace::BlockTrace trace;
  std::uint32_t id = 0;
  // Short deltas until the payload spills past one chunk so the footer
  // indexes more than one entry (the cross-entry tiling checks fire).
  while (trace.num_chunks() < 3) {
    id = (id * 37 + 11) % 4096;
    trace.append(id);
  }
  const std::vector<std::uint8_t> original = trace.serialize();
  const std::size_t footer =
      stc::trace::format::footer_bytes(trace.num_chunks());
  ASSERT_GT(original.size(), footer);

  const auto accepts_only_roundtrip = [&](const std::vector<std::uint8_t>& m) {
    auto decoded = stc::trace::BlockTrace::deserialize(m.data(), m.size());
    return !decoded.is_ok() || decoded.value().serialize() == m;
  };
  std::vector<std::uint8_t> mutant = original;
  for (std::size_t off = original.size() - footer; off < original.size();
       ++off) {
    for (const std::uint8_t bit :
         {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0xff}) {
      mutant[off] = original[off] ^ static_cast<std::uint8_t>(bit);
      EXPECT_TRUE(accepts_only_roundtrip(mutant))
          << "bit flip 0x" << std::hex << int{bit} << " at offset " << std::dec
          << off;
      mutant[off] = original[off];
    }
    EXPECT_TRUE(accepts_only_roundtrip(
        std::vector<std::uint8_t>(original.begin(),
                                  original.begin() + static_cast<long>(off))))
        << "truncation at " << off;
  }
}

// Pins the compiled engine's SIMD tail: 61 events is 5 mod 8, so the 8-wide
// vector main loop (sim/replay.cpp kLanes) leaves a scalar tail — and the
// sequentiality kernel's one-event lookahead splits at a different boundary
// than the miss-rate kernel's. Both widths must agree with the interpreter
// bit for bit. Salt 4*7 + 61*5 + 32 = 365 (odd): in-order back end.
TEST(FuzzRegression, ReplayDiffSimdTailOddLength) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{5, stc::cfg::BlockKind::kBranch},
        {3, stc::cfg::BlockKind::kBranch},
        {8, stc::cfg::BlockKind::kFallThrough},
        {1, stc::cfg::BlockKind::kReturn}},
       false},
  };
  c.edges = {{0, 1, 40}, {1, 2, 30}, {2, 0, 30}, {1, 3, 10}};
  c.trace.clear();
  for (int i = 0; i < 20; ++i) {  // 20 loop trips then the exit: 61 events
    c.trace.insert(c.trace.end(), {0, 1, 2});
  }
  c.trace.push_back(3);
  ASSERT_EQ(c.trace.size() % 8, 5u);
  const stc::verify::Report report = stc::verify::run_replay_diff(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzRegression, TraceVisitsColdUnprofiledBlocks) {
  stc::verify::FuzzCase c;
  c.cache_bytes = 2048;
  c.cfa_bytes = 512;
  c.line_bytes = 64;
  c.routines = {
      {{{1, stc::cfg::BlockKind::kBranch}, {1, stc::cfg::BlockKind::kReturn}},
       false},
      {{{9, stc::cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {{0, 1, 5}};      // block 2 has no edges: it is layout-cold
  c.trace = {2, 2, 0, 1, 2};  // but the trace executes it most
  const stc::verify::Report report = stc::verify::run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}
