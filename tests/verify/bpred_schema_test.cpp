// Locks the BENCH_ablate_bpred.json report schema against a checked-in
// golden file.
//
// The real bench sweeps predictor x layout x cache over the TPC-D kernel;
// this lock rebuilds the same report shape deterministically from a small
// synthetic program, using the real simulators and the exact counter-export
// order of bench/common.cpp's measurement cells: a perfect row carries the
// plain fetch + cache counters (the Table 4 schema, unchanged), a realistic
// row adds the mpki metric and the twelve front-end counters. Regenerate
// with
//   STC_UPDATE_GOLDEN=1 ./build/tests/stc_verify_test \
//       --gtest_filter=BpredSchemaTest.*
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "support/experiment.h"
#include "testing/golden_compare.h"
#include "testing/json_parse.h"

#ifndef STC_VERIFY_TEST_DIR
#define STC_VERIFY_TEST_DIR "."
#endif

namespace stc {
namespace {

std::string golden_path() {
  return std::string(STC_VERIFY_TEST_DIR) +
         "/golden/BENCH_ablate_bpred_golden.json";
}

// Deterministic stand-in for the TPC-D kernel: a three-branch loop whose
// head alternates direction every iteration.
std::unique_ptr<cfg::ProgramImage> mini_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("mini");
  builder.routine("loop", mod,
                  {{"head", 2, cfg::BlockKind::kBranch},
                   {"near", 1, cfg::BlockKind::kBranch},
                   {"far", 1, cfg::BlockKind::kBranch}});
  return builder.build();
}

trace::BlockTrace mini_trace() {
  trace::BlockTrace trace;
  for (int i = 0; i < 200; ++i) {
    trace.append(0);
    trace.append(i % 2 == 0 ? 1 : 2);
  }
  return trace;
}

// One perfect and one gshare cell in the real cell schema (metric and
// counter insertion order copied from measure_seq3 / measure_seq3_bpred).
std::string build_report() {
  const auto image = mini_image();
  const auto layout = cfg::AddressMap::original(*image);
  const auto trace = mini_trace();
  const sim::CacheGeometry geometry{1024, 32, 1};
  const sim::FetchParams params;

  ExperimentRunner runner("ablate_bpred");
  runner.meta("table_bits", std::uint64_t{12});
  runner.meta("btb_entries", std::uint64_t{512});
  runner.meta("ras_depth", std::uint64_t{16});
  runner.meta("ftq_depth", std::uint64_t{8});
  runner.meta("prefetch_width", std::uint64_t{2});
  runner.meta("mispredict_penalty", std::uint64_t{5});
  runner.record_phase("setup", 1.5);
  runner.record_phase("workload", 0.25);
  runner.record_phase("layouts", 0.125);

  runner.add("perfect orig 1K",
             {{"bpred", "perfect"}, {"layout", "orig"}, {"cache", "1024"}},
             [&] {
               sim::ICache cache(geometry);
               const sim::FetchResult sim =
                   sim::run_seq3(trace, *image, layout, params, &cache);
               ExperimentResult r;
               r.metric("ipc", sim.ipc());
               sim.export_counters(r.counters());
               cache.stats().export_counters(r.counters());
               r.counters().add("blocks", trace.num_events());
               return r;
             });
  runner.add("gshare orig 1K",
             {{"bpred", "gshare"}, {"layout", "orig"}, {"cache", "1024"}},
             [&] {
               frontend::FrontEndParams fe;
               fe.kind = frontend::BpredKind::kGshare;
               fe.prefetch = true;
               sim::ICache cache(geometry);
               const frontend::FrontEndResult sim = frontend::run_seq3_frontend(
                   trace, *image, layout, params, fe, &cache);
               ExperimentResult r;
               r.metric("ipc", sim.fetch.ipc());
               r.metric("mpki",
                        sim.frontend.mispredicts_per_ki(sim.fetch.instructions));
               sim.fetch.export_counters(r.counters());
               sim.frontend.export_counters(r.counters());
               cache.stats().export_counters(r.counters());
               r.counters().add("blocks", trace.num_events());
               return r;
             });
  runner.run(1);
  return runner.report_json();
}

bool is_volatile(const std::string& path) {
  return path == "phases.replay" || path == "throughput.events_per_sec" ||
         path == "throughput.blocks_per_second" ||
         path == "throughput.instructions_per_second";
}

TEST(BpredSchemaTest, ReportMatchesGoldenFile) {
  testing::check_against_golden(build_report(), golden_path(), is_volatile);
}

// The schema split every consumer depends on: perfect rows carry exactly the
// plain counter set, realistic rows add mpki and the front-end counters.
TEST(BpredSchemaTest, RealisticRowsExtendPerfectRows) {
  std::string err;
  const testing::JsonValue report = testing::parse_json(build_report(), &err);
  ASSERT_EQ(err, "");
  const testing::JsonValue* results = report.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->items.size(), 2u);

  const testing::JsonValue* perfect = results->items[0].find("counters");
  const testing::JsonValue* gshare = results->items[1].find("counters");
  ASSERT_TRUE(perfect != nullptr && gshare != nullptr);
  // Every plain counter key also appears in the realistic row.
  for (const auto& [key, value] : perfect->members) {
    EXPECT_TRUE(gshare->find(key) != nullptr) << key;
  }
  for (const char* key :
       {"bp_lookups", "bp_mispredicts", "bp_bubble_cycles", "btb_lookups",
        "btb_misses", "ras_pushes", "ras_pops", "prefetch_issued",
        "prefetch_useful", "prefetch_late", "prefetch_evicted",
        "prefetch_late_cycles"}) {
    EXPECT_TRUE(gshare->find(key) != nullptr) << key;
    EXPECT_TRUE(perfect->find(key) == nullptr) << key;
  }
  EXPECT_TRUE(results->items[1].find("metrics")->find("mpki") != nullptr);
  EXPECT_TRUE(results->items[0].find("metrics")->find("mpki") == nullptr);
}

}  // namespace
}  // namespace stc
