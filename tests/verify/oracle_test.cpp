// The oracle must accept every layout the production algorithms emit and
// reject every seeded corruption: lost blocks, overlaps, CFA occupancy
// violations, and counter identities that do not add up.
#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "core/layouts.h"
#include "core/replication.h"
#include "core/stc_layout.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/oracle.h"

namespace stc::verify {
namespace {

struct Fixture {
  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
};

Fixture make_fixture(std::uint64_t seed, int routines = 30) {
  Fixture f;
  Rng rng(seed);
  f.image = testing::random_image(rng, routines);
  f.wcfg = testing::random_wcfg(*f.image, rng);
  f.trace = testing::random_trace(*f.image, rng, 4000);
  return f;
}

TEST(ReportTest, StartsCleanAndAccumulates) {
  Report r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.summary(), "OK");
  r.fail("first");
  r.fail("second");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.total_found(), 2u);
  EXPECT_EQ(r.errors().size(), 2u);
}

TEST(ReportTest, CapsStoredErrorsButCountsAll) {
  Report r;
  for (int i = 0; i < 100; ++i) r.fail("e" + std::to_string(i));
  EXPECT_EQ(r.total_found(), 100u);
  EXPECT_LT(r.errors().size(), 100u);
  // The summary still reports the true total.
  EXPECT_NE(r.summary().find("100"), std::string::npos);
}

TEST(ReportTest, MergePrefixesContext) {
  Report inner;
  inner.fail("broken");
  Report outer;
  outer.merge(inner, "layout=ops");
  ASSERT_EQ(outer.errors().size(), 1u);
  EXPECT_NE(outer.errors()[0].find("layout=ops"), std::string::npos);
  EXPECT_NE(outer.errors()[0].find("broken"), std::string::npos);
}

TEST(OracleTest, AcceptsEveryProductionLayout) {
  const Fixture f = make_fixture(101);
  for (const auto kind :
       {core::LayoutKind::kOrig, core::LayoutKind::kPettisHansen,
        core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
        core::LayoutKind::kStcOps}) {
    core::MappingProvenance provenance;
    const auto map = core::make_layout(kind, f.wcfg, 2048, 512, &provenance);
    const auto report = verify_layout(f.trace, *f.image, map, &provenance);
    EXPECT_TRUE(report.ok()) << core::to_string(kind) << "\n"
                             << report.summary();
  }
}

TEST(OracleTest, TraceInstructionsSumsBlockSizes) {
  cfg::ProgramBuilder builder;
  const auto mod = builder.module("m");
  builder.routine("r", mod,
                  {{"a", 3, cfg::BlockKind::kBranch},
                   {"b", 5, cfg::BlockKind::kReturn}});
  const auto image = builder.build();
  trace::BlockTrace trace;
  trace.append(0);
  trace.append(1);
  trace.append(0);
  EXPECT_EQ(trace_instructions(trace, *image), 3u + 5u + 3u);
}

// ---- Structure corruptions -------------------------------------------------

TEST(OracleTest, DetectsOverlappingBlocks) {
  const Fixture f = make_fixture(202);
  auto map = core::make_layout(core::LayoutKind::kOrig, f.wcfg, 2048, 512);
  // Move block 1 on top of block 0.
  map.set(1, map.addr(0));
  const auto report = check_structure(*f.image, map);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("overlap"), std::string::npos);
}

TEST(OracleTest, DetectsShortBlockOverlap) {
  // The off-by-one the fuzz driver injects: a block's successor placed one
  // instruction early overlaps the block's last instruction.
  cfg::ProgramBuilder builder;
  const auto mod = builder.module("m");
  builder.routine("r", mod,
                  {{"a", 4, cfg::BlockKind::kFallThrough},
                   {"b", 4, cfg::BlockKind::kReturn}});
  const auto image = builder.build();
  cfg::AddressMap map("short", image->num_blocks());
  map.set(0, 0);
  map.set(1, 4 * cfg::kInsnBytes - cfg::kInsnBytes);  // one insn too early
  const auto report = check_structure(*image, map);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("overlap"), std::string::npos);
}

TEST(OracleTest, DetectsUnassignedBlock) {
  const Fixture f = make_fixture(203);
  const auto full = core::make_layout(core::LayoutKind::kOrig, f.wcfg, 2048, 512);
  cfg::AddressMap map("partial", f.image->num_blocks());
  for (cfg::BlockId b = 0; b < f.image->num_blocks(); ++b) {
    if (b != 2) map.set(b, full.addr(b));
  }
  const auto report = check_structure(*f.image, map);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("unassigned"), std::string::npos);
}

// ---- Replay corruptions ----------------------------------------------------

TEST(OracleTest, ReplayAcceptsCleanLayouts) {
  const Fixture f = make_fixture(303);
  const auto map = core::make_layout(core::LayoutKind::kStcOps, f.wcfg, 2048, 512);
  const auto report = check_replay(f.trace, *f.image, map);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(OracleTest, ReplayDetectsRelocatedBlockMidTrace) {
  const Fixture f = make_fixture(304);
  auto map = core::make_layout(core::LayoutKind::kStcOps, f.wcfg, 2048, 512);
  // Teleport one traced block far away without breaking the permutation:
  // replay notices the address change, structure does not.
  cfg::BlockId victim = 0;
  bool found = false;
  f.trace.for_each([&](cfg::BlockId b) {
    if (!found) {
      victim = b;
      found = true;
    }
  });
  ASSERT_TRUE(found);
  map.set(victim, map.extent(*f.image) + 4096);
  const auto structure = check_structure(*f.image, map);
  EXPECT_TRUE(structure.ok()) << structure.summary();
  // The moved block changes its own fetch addresses; the independent walk
  // must still agree with the production stream (both read the same map), so
  // replay stays clean — but the full oracle's simulators see different
  // line behavior. What replay MUST catch is an inconsistent stream, which
  // we provoke by corrupting the map between ground truth and stream below.
  const auto replay = check_replay(f.trace, *f.image, map);
  EXPECT_TRUE(replay.ok()) << replay.summary();
}

// ---- CFA occupancy ---------------------------------------------------------

TEST(OracleTest, CfaAcceptsProductionProvenance) {
  const Fixture f = make_fixture(405);
  for (const auto kind :
       {core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
        core::LayoutKind::kStcOps}) {
    core::MappingProvenance provenance;
    const auto map = core::make_layout(kind, f.wcfg, 1024, 256, &provenance);
    ASSERT_FALSE(provenance.empty());
    const auto report = check_cfa_occupancy(*f.image, map, provenance);
    EXPECT_TRUE(report.ok()) << core::to_string(kind) << "\n"
                             << report.summary();
  }
}

TEST(OracleTest, CfaDetectsColdCodeMovedIntoReservedWindow) {
  const Fixture f = make_fixture(406);
  core::MappingProvenance provenance;
  auto map = core::make_layout(core::LayoutKind::kStcOps, f.wcfg, 1024, 256,
                               &provenance);
  ASSERT_FALSE(provenance.empty());
  // Find a later-pass block and move it into the second region's CFA window.
  bool moved = false;
  for (cfg::BlockId b = 0; b < f.image->num_blocks() && !moved; ++b) {
    const std::uint32_t pass = provenance.pass_of[b];
    if (pass != 0 && pass != core::MappingProvenance::kColdPass) {
      map.set(b, 1024 + 8);  // offset 8 of region 1: inside [0, 256)
      moved = true;
    }
  }
  ASSERT_TRUE(moved);
  const auto report = check_cfa_occupancy(*f.image, map, provenance);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("CFA"), std::string::npos);
}

TEST(OracleTest, CfaDetectsPass0EscapingTheWindow) {
  const Fixture f = make_fixture(407);
  core::MappingProvenance provenance;
  auto map = core::make_layout(core::LayoutKind::kStcOps, f.wcfg, 1024, 256,
                               &provenance);
  bool moved = false;
  for (cfg::BlockId b = 0; b < f.image->num_blocks() && !moved; ++b) {
    if (provenance.pass_of[b] == 0) {
      map.set(b, 512);  // past the 256-byte CFA
      moved = true;
    }
  }
  ASSERT_TRUE(moved);
  const auto report = check_cfa_occupancy(*f.image, map, provenance);
  ASSERT_FALSE(report.ok());
}

TEST(OracleTest, EmptyProvenanceCarriesNoContract) {
  const Fixture f = make_fixture(408);
  auto map = core::make_layout(core::LayoutKind::kOrig, f.wcfg, 1024, 256);
  const core::MappingProvenance provenance;  // empty
  EXPECT_TRUE(check_cfa_occupancy(*f.image, map, provenance).ok());
}

// ---- Tenant-partitioned CFA ------------------------------------------------

struct PartitionFixture {
  Fixture f;
  profile::WeightedCFG tenant_a;
  profile::WeightedCFG tenant_b;
  core::MappingProvenance provenance;
  core::StcResult result;
};

PartitionFixture make_partition_fixture(std::uint64_t seed) {
  PartitionFixture p;
  p.f = make_fixture(seed);
  Rng rng(seed + 1);
  p.tenant_a = testing::random_wcfg(*p.f.image, rng);
  p.tenant_b = testing::random_wcfg(*p.f.image, rng);
  core::StcParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 256;
  p.result = core::stc_layout_partitioned({&p.tenant_a, &p.tenant_b},
                                          core::SeedKind::kAuto, params,
                                          &p.provenance);
  return p;
}

TEST(OracleTest, TenantPartitionAcceptsProductionPartitionedLayouts) {
  const PartitionFixture p = make_partition_fixture(601);
  ASSERT_TRUE(p.provenance.partitioned());
  const auto partition =
      check_tenant_partition(*p.f.image, p.result.layout, p.provenance);
  EXPECT_TRUE(partition.ok()) << partition.summary();
  const auto occupancy =
      check_cfa_occupancy(*p.f.image, p.result.layout, p.provenance);
  EXPECT_TRUE(occupancy.ok()) << occupancy.summary();
}

TEST(OracleTest, TenantPartitionIsVacuousForUnpartitionedProvenance) {
  const Fixture f = make_fixture(602);
  core::MappingProvenance provenance;
  const auto map = core::make_layout(core::LayoutKind::kStcOps, f.wcfg, 1024,
                                     256, &provenance);
  ASSERT_FALSE(provenance.partitioned());
  EXPECT_TRUE(check_tenant_partition(*f.image, map, provenance).ok());
}

TEST(OracleTest, TenantPartitionDetectsBlockLeavingItsSubWindow) {
  PartitionFixture p = make_partition_fixture(603);
  // Move one tenant-0 pass-0 block to the far end of the CFA — almost
  // certainly inside another tenant's sub-window and outside its own.
  bool moved = false;
  auto map = p.result.layout;
  for (cfg::BlockId b = 0; b < p.f.image->num_blocks() && !moved; ++b) {
    if (p.provenance.pass_of[b] == 0 && p.provenance.tenant_of[b] == 0) {
      map.set(b, p.provenance.tenant_region_start.back() - 4);
      moved = true;
    }
  }
  ASSERT_TRUE(moved);
  const auto report = check_tenant_partition(*p.f.image, map, p.provenance);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("leaves its CFA sub-window"),
            std::string::npos);
}

TEST(OracleTest, TenantPartitionDetectsBogusTenantIds) {
  PartitionFixture p = make_partition_fixture(604);
  core::MappingProvenance corrupt = p.provenance;
  // A later-pass block claiming a tenant, and a pass-0 block claiming a
  // tenant id out of range.
  bool tagged_later = false;
  bool tagged_oob = false;
  for (cfg::BlockId b = 0; b < p.f.image->num_blocks(); ++b) {
    if (!tagged_later && corrupt.pass_of[b] != 0 &&
        corrupt.tenant_of[b] == core::MappingProvenance::kNoTenant) {
      corrupt.tenant_of[b] = 0;
      tagged_later = true;
    } else if (!tagged_oob && corrupt.pass_of[b] == 0) {
      corrupt.tenant_of[b] = corrupt.num_tenant_regions + 5;
      tagged_oob = true;
    }
  }
  ASSERT_TRUE(tagged_later);
  ASSERT_TRUE(tagged_oob);
  const auto report =
      check_tenant_partition(*p.f.image, p.result.layout, corrupt);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.total_found(), 2u);
}

TEST(OracleTest, TenantPartitionDetectsBrokenRegionBoundaries) {
  PartitionFixture p = make_partition_fixture(605);
  // Boundaries must be groups+1 offsets from 0 to cfa, strictly ascending.
  core::MappingProvenance corrupt = p.provenance;
  corrupt.tenant_region_start.pop_back();
  auto report =
      check_tenant_partition(*p.f.image, p.result.layout, corrupt);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("region boundaries"), std::string::npos);

  corrupt = p.provenance;
  corrupt.tenant_region_start[1] = corrupt.tenant_region_start[0];
  report = check_tenant_partition(*p.f.image, p.result.layout, corrupt);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("empty or reversed"), std::string::npos);
}

// ---- Replication -----------------------------------------------------------

TEST(OracleTest, ReplicationRoundTripIsClean) {
  const Fixture f = make_fixture(509);
  profile::Profile profile(*f.image);
  profile.consume(f.trace);
  core::ReplicationParams params;
  const core::Replicator replicator(*f.image, profile, params);
  const auto& extended = replicator.image();
  const auto structure = check_replication_structure(
      *f.image, extended, replicator.origin_blocks());
  EXPECT_TRUE(structure.ok()) << structure.summary();
  trace::BlockTrace transformed = replicator.transform(f.trace);
  const auto replay = check_replicated_replay(
      f.trace, transformed, *f.image, extended, replicator.origin_blocks());
  EXPECT_TRUE(replay.ok()) << replay.summary();
}

TEST(OracleTest, ReplicationDetectsMutatedCloneSize) {
  const Fixture f = make_fixture(510);
  profile::Profile profile(*f.image);
  profile.consume(f.trace);
  core::ReplicationParams params;
  params.min_routine_weight = 0.0;  // clone as aggressively as possible
  params.max_routine_bytes = 1 << 16;
  params.max_code_growth = 4.0;
  const core::Replicator replicator(*f.image, profile, params);
  const auto& extended = replicator.image();
  if (extended.num_blocks() == f.image->num_blocks()) {
    GTEST_SKIP() << "no clones produced for this seed";
  }
  // Lie about a clone's origin: point it at a different origin block with a
  // different size, which must trip the byte-identical check.
  auto origins = replicator.origin_blocks();
  const cfg::BlockId clone =
      static_cast<cfg::BlockId>(f.image->num_blocks());
  const auto clone_insns = extended.block(clone).insns;
  bool lied = false;
  for (cfg::BlockId b = 0; b < f.image->num_blocks(); ++b) {
    if (f.image->block(b).insns != clone_insns) {
      origins[clone] = b;
      lied = true;
      break;
    }
  }
  ASSERT_TRUE(lied);
  const auto report =
      check_replication_structure(*f.image, extended, origins);
  EXPECT_FALSE(report.ok());
}

// ---- Simulator counters ----------------------------------------------------

TEST(OracleTest, SimulatorChecksAcceptRealRuns) {
  const Fixture f = make_fixture(611);
  const auto map = core::make_layout(core::LayoutKind::kStcAuto, f.wcfg, 1024, 256);
  const auto report =
      check_simulators(f.trace, *f.image, map, {1024, 32, 1});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(OracleTest, FetchCheckDetectsCycleMismatch) {
  sim::FetchParams params;
  sim::FetchResult result;
  result.instructions = 100;
  result.fetch_requests = 40;
  result.miss_requests = 10;
  result.lines_missed = 10;
  result.cycles = 40;  // should be 40 + penalty * 10
  const auto report =
      check_fetch_result(result, params, 100, /*with_trace_cache=*/false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("cycle"), std::string::npos);
}

TEST(OracleTest, FetchCheckDetectsLostInstructions) {
  sim::FetchParams params;
  sim::FetchResult result;
  result.instructions = 90;  // trace says 100
  result.fetch_requests = 30;
  result.cycles = 30;
  const auto report =
      check_fetch_result(result, params, 100, /*with_trace_cache=*/false);
  EXPECT_FALSE(report.ok());
}

TEST(OracleTest, TraceCacheCheckDetectsFillsExceedingProbes) {
  sim::FetchParams params;
  sim::FetchResult result;
  result.instructions = 100;
  result.fetch_requests = 10;
  result.miss_requests = 0;
  result.cycles = 10;
  result.tc_hits = 6;
  result.tc_misses = 4;
  result.tc_probes = 10;
  result.tc_fills = 11;  // more fills than probes: impossible
  const auto report =
      check_fetch_result(result, params, 100, /*with_trace_cache=*/true);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("fill"), std::string::npos);
}

TEST(OracleTest, MissrateCheckDetectsInflatedMisses) {
  sim::MissRateResult result;
  result.instructions = 100;
  result.line_accesses = 20;
  result.misses = 25;  // misses > accesses
  sim::CacheStats stats;
  stats.accesses = 20;
  stats.misses = 25;
  const auto report = check_missrate_result(result, stats, 100);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace stc::verify
