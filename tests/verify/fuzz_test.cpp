// The fuzz harness itself: generation is deterministic and always yields
// self-consistent cases, clean cases pass every layout, the short-block
// injection is always caught, and the shrinker converges to a tiny still-
// failing case whose emitted snippet reconstructs it.
#include <gtest/gtest.h>

#include "support/rng.h"
#include "verify/fuzz.h"

namespace stc::verify {
namespace {

TEST(FuzzTest, RandomCasesAreSelfConsistent) {
  Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    const FuzzCase c = random_case(rng);
    std::string why;
    EXPECT_TRUE(check_case(c, &why)) << "iter " << i << ": " << why;
  }
}

TEST(FuzzTest, GenerationIsDeterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 20; ++i) {
    const FuzzCase ca = random_case(a);
    const FuzzCase cb = random_case(b);
    ASSERT_EQ(ca.routines.size(), cb.routines.size());
    ASSERT_EQ(ca.trace, cb.trace);
    ASSERT_EQ(ca.seeds, cb.seeds);
    ASSERT_EQ(ca.cache_bytes, cb.cache_bytes);
    ASSERT_EQ(ca.cfa_bytes, cb.cfa_bytes);
    ASSERT_EQ(ca.line_bytes, cb.line_bytes);
    for (std::size_t r = 0; r < ca.routines.size(); ++r) {
      ASSERT_EQ(ca.routines[r].blocks.size(), cb.routines[r].blocks.size());
      for (std::size_t blk = 0; blk < ca.routines[r].blocks.size(); ++blk) {
        ASSERT_EQ(ca.routines[r].blocks[blk].insns,
                  cb.routines[r].blocks[blk].insns);
        ASSERT_EQ(ca.routines[r].blocks[blk].kind,
                  cb.routines[r].blocks[blk].kind);
      }
    }
  }
}

TEST(FuzzTest, CleanCasesPassEveryLayout) {
  Rng rng(777);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = random_case(rng);
    const Report report = run_case(c);
    EXPECT_TRUE(report.ok()) << "iter " << i << "\n" << report.summary();
  }
}

TEST(FuzzTest, CheckCaseRejectsInconsistentCases) {
  FuzzCase c;
  c.routines.push_back({{{4, cfg::BlockKind::kReturn}}, false});
  std::string why;
  ASSERT_TRUE(check_case(c, &why)) << why;

  FuzzCase bad_trace = c;
  bad_trace.trace.push_back(5);  // only one block exists
  EXPECT_FALSE(check_case(bad_trace, &why));

  FuzzCase bad_edge = c;
  bad_edge.edges.push_back({0, 9, 1});
  EXPECT_FALSE(check_case(bad_edge, &why));

  FuzzCase bad_cfa = c;
  bad_cfa.cfa_bytes = bad_cfa.cache_bytes;  // cfa must be < cache
  EXPECT_FALSE(check_case(bad_cfa, &why));

  FuzzCase empty_routine = c;
  empty_routine.routines.push_back({{}, false});
  EXPECT_FALSE(check_case(empty_routine, &why));
}

// Finds a case where the short-block injection actually produces a failure
// (cases whose blocks never end up address-adjacent are immune).
bool find_injectable(std::uint64_t seed, int iters, FuzzCase* out) {
  for (int i = 0; i < iters; ++i) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i));
    const FuzzCase c = random_case(rng);
    if (!run_case(c, Injection::kShortBlock).ok()) {
      *out = c;
      return true;
    }
  }
  return false;
}

TEST(FuzzTest, ShortBlockInjectionIsCaught) {
  FuzzCase c;
  ASSERT_TRUE(find_injectable(5, 50, &c));
  const Report report = run_case(c, Injection::kShortBlock);
  ASSERT_FALSE(report.ok());
  // The corruption is an overlap; the structure check names it.
  EXPECT_NE(report.summary().find("overlap"), std::string::npos)
      << report.summary();
}

TEST(FuzzTest, ShrinkerProducesMinimalStillFailingCase) {
  FuzzCase c;
  ASSERT_TRUE(find_injectable(6, 50, &c));
  const FuzzCase shrunk = shrink_case(c, Injection::kShortBlock);
  // Still fails...
  EXPECT_FALSE(run_case(shrunk, Injection::kShortBlock).ok());
  // ...and is tiny: the overlap needs two address-adjacent blocks, which
  // never takes more than a couple of routines (ISSUE acceptance: <= 3).
  EXPECT_LE(shrunk.routines.size(), 3u);
  std::size_t blocks = 0;
  for (const auto& r : shrunk.routines) blocks += r.blocks.size();
  EXPECT_LE(blocks, 4u);
  // Shrinking never produces an inconsistent case.
  std::string why;
  EXPECT_TRUE(check_case(shrunk, &why)) << why;
}

TEST(FuzzTest, ShrinkIsIdempotentOnFixpoint) {
  FuzzCase c;
  ASSERT_TRUE(find_injectable(7, 50, &c));
  const FuzzCase once = shrink_case(c, Injection::kShortBlock);
  const FuzzCase twice = shrink_case(once, Injection::kShortBlock);
  EXPECT_EQ(once.routines.size(), twice.routines.size());
  EXPECT_EQ(once.trace.size(), twice.trace.size());
  EXPECT_EQ(once.edges.size(), twice.edges.size());
  EXPECT_EQ(once.seeds.size(), twice.seeds.size());
}

TEST(FuzzTest, EmitCppNamesTheCaseAndItsGeometry) {
  FuzzCase c;
  c.routines.push_back({{{2, cfg::BlockKind::kFallThrough},
                         {1, cfg::BlockKind::kReturn}},
                        false});
  c.trace = {0, 1};
  c.seeds = {0};
  c.cache_bytes = 512;
  c.cfa_bytes = 128;
  c.line_bytes = 16;
  const std::string code = emit_cpp(c, "Example");
  EXPECT_NE(code.find("TEST(FuzzRegression, Example)"), std::string::npos);
  EXPECT_NE(code.find("512"), std::string::npos);
  EXPECT_NE(code.find("128"), std::string::npos);
  EXPECT_NE(code.find("kFallThrough"), std::string::npos);
  EXPECT_NE(code.find("kReturn"), std::string::npos);
  EXPECT_NE(code.find("report.ok()"), std::string::npos);
}

TEST(FuzzTest, EmptyProgramCaseRunsClean) {
  FuzzCase c;  // zero routines, empty everything
  c.trace.clear();
  std::string why;
  ASSERT_TRUE(check_case(c, &why)) << why;
  const Report report = run_case(c);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace stc::verify
