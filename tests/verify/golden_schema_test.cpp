// Locks the BENCH_*.json report schema against a checked-in golden file.
//
// A deterministic ExperimentRunner grid is serialized and compared to
// tests/verify/golden/BENCH_golden.json with the shared golden comparer
// (tests/testing/golden_compare.h); wall-clock-derived fields (the replay
// phase and throughput rates) need only be present, numeric and sane.
// Regenerate the golden with
//   STC_UPDATE_GOLDEN=1 ./build/tests/stc_verify_test \
//       --gtest_filter=GoldenSchemaTest.*
// and review the diff — any change here is a report-consumer-visible change.
#include <gtest/gtest.h>

#include <string>

#include "support/experiment.h"
#include "testing/golden_compare.h"
#include "testing/json_parse.h"

#ifndef STC_VERIFY_TEST_DIR
#define STC_VERIFY_TEST_DIR "."
#endif

namespace stc {
namespace {

using testing::JsonValue;

std::string golden_path() {
  return std::string(STC_VERIFY_TEST_DIR) + "/golden/BENCH_golden.json";
}

// The fixed grid: two cells with metrics and counters, deterministic
// metadata, explicitly recorded setup/workload phases, one worker thread.
std::string build_report() {
  ExperimentRunner runner("golden");
  runner.meta("config", "schema-lock");
  runner.meta("scale_factor", 0.002);
  runner.meta("seed", std::uint64_t{19990401});
  runner.record_phase("setup", 1.5);
  runner.record_phase("workload", 0.25);
  runner.add("orig_c2048", {{"layout", "orig"}, {"cache", "2048"}}, [] {
    ExperimentResult r;
    r.metric("miss_pct", 6.5);
    r.metric("ipc", 1.25);
    r.counters().add("instructions", 100000);
    r.counters().add("blocks", 25000);
    r.counters().add("tc_probes", 5000);
    return r;
  });
  runner.add("ops_c2048", {{"layout", "ops"}, {"cache", "2048"}}, [] {
    ExperimentResult r;
    r.metric("miss_pct", 0.56);
    r.metric("ipc", 2.5);
    r.counters().add("instructions", 100000);
    r.counters().add("blocks", 25000);
    r.counters().add("tc_probes", 5000);
    return r;
  });
  runner.run(1);
  return runner.report_json();
}

// Paths whose VALUES are wall-clock dependent (structure still locked).
bool is_volatile(const std::string& path) {
  return path == "phases.replay" || path == "throughput.events_per_sec" ||
         path == "throughput.blocks_per_second" ||
         path == "throughput.instructions_per_second";
}

TEST(GoldenSchemaTest, ReportMatchesGoldenFile) {
  testing::check_against_golden(build_report(), golden_path(), is_volatile);
}

// Structural facts every consumer depends on, independent of the golden
// file's bytes: top-level key order and the per-cell shape.
TEST(GoldenSchemaTest, TopLevelShapeIsStable) {
  std::string err;
  const JsonValue report = testing::parse_json(build_report(), &err);
  ASSERT_EQ(err, "");
  ASSERT_TRUE(report.is_object());
  const char* expected[] = {"bench",      "schema_version", "threads",
                            "env",        "phases",         "throughput",
                            "totals",     "failures",       "results"};
  ASSERT_EQ(report.members.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(report.members[i].first, expected[i]) << "key #" << i;
  }
  EXPECT_EQ(report.find("schema_version")->number, 3.0);
  // Schema v3: the throughput block is mandatory and leads with
  // events_per_sec.
  const JsonValue* throughput = report.find("throughput");
  ASSERT_TRUE(throughput != nullptr && throughput->is_object());
  ASSERT_FALSE(throughput->members.empty());
  EXPECT_EQ(throughput->members[0].first, "events_per_sec");
  const JsonValue* failures = report.find("failures");
  ASSERT_TRUE(failures != nullptr && failures->is_array());
  EXPECT_TRUE(failures->items.empty());  // clean run
  EXPECT_EQ(report.find("bench")->text, "golden");

  const JsonValue* results = report.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  for (const JsonValue& cell : results->items) {
    ASSERT_TRUE(cell.is_object());
    ASSERT_GE(cell.members.size(), 3u);
    EXPECT_EQ(cell.members[0].first, "name");
    EXPECT_TRUE(cell.find("metrics") != nullptr);
    EXPECT_TRUE(cell.find("counters") != nullptr);
  }
}

TEST(GoldenSchemaTest, ResultsJsonIsDeterministic) {
  // results_json() (grid only, no timings) must be byte-identical across
  // runs — the property the parallel-vs-serial determinism test builds on.
  const auto build = [] {
    ExperimentRunner runner("det");
    runner.add("cell", [] {
      ExperimentResult r;
      r.metric("x", 1.5);
      r.counters().add("instructions", 10);
      return r;
    });
    runner.run(1);
    return runner.results_json();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace stc
