// Locks the BENCH_replay_throughput.json report schema against a checked-in
// golden file.
//
// The real bench grids simulator x replay-mode over the pinned Test trace;
// this lock rebuilds the same report shape deterministically from a small
// synthetic program, driving the exact measurement cell the bench uses
// (bench::measure_replay_cell): every cell carries events_per_sec and
// seconds, plan-backed cells add plan_seconds, and the counters are the
// simulator's real export including the "blocks" event count that schema
// v3's throughput.events_per_sec is derived from. tools/perf_gate.py parses
// this schema — a change here is a perf-gate-visible change. Regenerate with
//   STC_UPDATE_GOLDEN=1 ./build/tests/stc_verify_test \
//       --gtest_filter=ReplaySchemaTest.*
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench/common.h"
#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "support/experiment.h"
#include "testing/golden_compare.h"
#include "testing/json_parse.h"

#ifndef STC_VERIFY_TEST_DIR
#define STC_VERIFY_TEST_DIR "."
#endif

namespace stc {
namespace {

std::string golden_path() {
  return std::string(STC_VERIFY_TEST_DIR) +
         "/golden/BENCH_replay_throughput_golden.json";
}

// Deterministic stand-in for the pinned Test trace: two routines with a
// call/return pair so the seq3 and trace-cache cells exercise real control
// flow.
std::unique_ptr<cfg::ProgramImage> mini_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("mini");
  builder.routine("outer", mod,
                  {{"head", 2, cfg::BlockKind::kBranch},
                   {"call", 1, cfg::BlockKind::kCall},
                   {"tail", 1, cfg::BlockKind::kReturn}});
  builder.routine("leaf", mod, {{"body", 3, cfg::BlockKind::kReturn}});
  return builder.build();
}

trace::BlockTrace mini_trace() {
  trace::BlockTrace trace;
  for (int i = 0; i < 150; ++i) {
    trace.append(0);
    trace.append(1);
    trace.append(3);  // leaf body
    trace.append(2);
  }
  return trace;
}

// The bench's grid (simulator x mode), rebuilt on the mini program with the
// same runner name, params and single-worker run.
std::string build_report() {
  const auto image = mini_image();
  const auto layout = cfg::AddressMap::original(*image);
  const auto trace = mini_trace();
  const sim::CacheGeometry geometry{1024, 32, 1};

  ExperimentRunner runner("replay_throughput");
  runner.meta("cache_bytes", std::uint64_t{geometry.size_bytes});
  runner.record_phase("setup", 1.5);
  runner.record_phase("workload", 0.25);
  runner.record_phase("layouts", 0.125);

  const sim::ReplayMode modes[] = {sim::ReplayMode::kInterp,
                                   sim::ReplayMode::kBatched,
                                   sim::ReplayMode::kCompiled};
  const bench::ReplaySimKind kinds[] = {bench::ReplaySimKind::kMissRate,
                                        bench::ReplaySimKind::kSequentiality,
                                        bench::ReplaySimKind::kSeq3,
                                        bench::ReplaySimKind::kTraceCache};
  for (const bench::ReplaySimKind kind : kinds) {
    for (const sim::ReplayMode mode : modes) {
      runner.add(
          std::string(bench::to_string(kind)) + " " + sim::to_string(mode),
          {{"sim", bench::to_string(kind)}, {"mode", sim::to_string(mode)}},
          [&, kind, mode] {
            return bench::measure_replay_cell(trace, *image, layout, geometry,
                                              kind, mode);
          });
    }
  }
  runner.run(1);
  return runner.report_json();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Wall-clock-derived values: the replay phase, the schema-v3 throughput
// block, and every cell's timing metrics (structure still locked).
bool is_volatile(const std::string& path) {
  return path == "phases.replay" || path == "throughput.events_per_sec" ||
         path == "throughput.blocks_per_second" ||
         path == "throughput.instructions_per_second" ||
         (ends_with(path, ".metrics.events_per_sec") ||
          ends_with(path, ".metrics.seconds") ||
          ends_with(path, ".metrics.plan_seconds"));
}

TEST(ReplaySchemaTest, ReportMatchesGoldenFile) {
  testing::check_against_golden(build_report(), golden_path(), is_volatile);
}

// The contract tools/perf_gate.py depends on, independent of golden bytes:
// schema v3 with a mandatory throughput.events_per_sec, twelve clean cells,
// each carrying sim/mode params and an events_per_sec metric, plan-backed
// cells adding plan_seconds.
TEST(ReplaySchemaTest, PerfGateContractHolds) {
  std::string err;
  const testing::JsonValue report = testing::parse_json(build_report(), &err);
  ASSERT_EQ(err, "");
  EXPECT_EQ(report.find("schema_version")->number, 3.0);
  const testing::JsonValue* throughput = report.find("throughput");
  ASSERT_TRUE(throughput != nullptr && throughput->is_object());
  EXPECT_TRUE(throughput->find("events_per_sec") != nullptr);
  const testing::JsonValue* failures = report.find("failures");
  ASSERT_TRUE(failures != nullptr && failures->is_array());
  EXPECT_TRUE(failures->items.empty());

  const testing::JsonValue* results = report.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->items.size(), 12u);
  for (const testing::JsonValue& cell : results->items) {
    const testing::JsonValue* params = cell.find("params");
    const testing::JsonValue* metrics = cell.find("metrics");
    const testing::JsonValue* counters = cell.find("counters");
    ASSERT_TRUE(params != nullptr && metrics != nullptr && counters != nullptr)
        << cell.find("name")->text;
    ASSERT_TRUE(params->find("sim") != nullptr);
    ASSERT_TRUE(params->find("mode") != nullptr);
    EXPECT_TRUE(metrics->find("events_per_sec") != nullptr);
    EXPECT_TRUE(metrics->find("seconds") != nullptr);
    const bool interp = params->find("mode")->text == "interp";
    EXPECT_EQ(metrics->find("plan_seconds") != nullptr, !interp)
        << cell.find("name")->text;
    // The counter schema v3's throughput block totals over.
    EXPECT_TRUE(counters->find("blocks") != nullptr);
  }
}

}  // namespace
}  // namespace stc
