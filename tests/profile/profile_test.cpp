#include "profile/profile.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::profile {
namespace {

using cfg::BlockKind;

std::unique_ptr<cfg::ProgramImage> small_image() {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  b.routine("f", m,
            {{"A", 4, BlockKind::kBranch},
             {"B", 2, BlockKind::kBranch},
             {"C", 3, BlockKind::kReturn}});
  return b.build();
}

TEST(ProfileTest, CountsBlocksAndInstructions) {
  auto image = small_image();
  Profile p(*image);
  p.on_block(0);
  p.on_block(1);
  p.on_block(0);
  EXPECT_EQ(p.block_count(0), 2u);
  EXPECT_EQ(p.block_count(1), 1u);
  EXPECT_EQ(p.block_count(2), 0u);
  EXPECT_EQ(p.total_block_events(), 3u);
  EXPECT_EQ(p.total_instructions(), 4u + 2u + 4u);
}

TEST(ProfileTest, EdgesFromConsecutiveEvents) {
  auto image = small_image();
  Profile p(*image);
  p.on_block(0);
  p.on_block(1);
  p.on_block(0);
  p.on_block(1);
  EXPECT_EQ(p.edge_count(0, 1), 2u);
  EXPECT_EQ(p.edge_count(1, 0), 1u);
  EXPECT_EQ(p.edge_count(0, 0), 0u);
}

TEST(ProfileTest, BreakChainSuppressesEdge) {
  auto image = small_image();
  Profile p(*image);
  p.on_block(0);
  p.break_chain();
  p.on_block(1);
  EXPECT_EQ(p.edge_count(0, 1), 0u);
  EXPECT_EQ(p.block_count(1), 1u);
}

TEST(ProfileTest, ConsumeTraceMatchesDirectEvents) {
  auto image = small_image();
  trace::BlockTrace t;
  t.append(0);
  t.append(2);
  t.append(2);
  Profile direct(*image);
  direct.on_block(0);
  direct.on_block(2);
  direct.on_block(2);
  Profile via_trace(*image);
  via_trace.consume(t);
  EXPECT_EQ(direct.block_count(2), via_trace.block_count(2));
  EXPECT_EQ(direct.edge_count(2, 2), via_trace.edge_count(2, 2));
}

TEST(ProfileTest, EdgesListMatchesLookups) {
  auto image = small_image();
  Profile p(*image);
  p.on_block(0);
  p.on_block(1);
  p.on_block(2);
  const auto edges = p.edges();
  EXPECT_EQ(edges.size(), 2u);
  for (const auto& e : edges) {
    EXPECT_EQ(p.edge_count(e.from, e.to), e.count);
  }
}

TEST(WeightedCFGTest, SuccessorsSortedByCount) {
  auto image = small_image();
  Profile p(*image);
  // 0 -> 1 three times, 0 -> 2 once.
  for (int i = 0; i < 3; ++i) {
    p.on_block(0);
    p.on_block(1);
    p.break_chain();
  }
  p.on_block(0);
  p.on_block(2);
  const WeightedCFG cfg = WeightedCFG::from_profile(p);
  ASSERT_EQ(cfg.succs[0].size(), 2u);
  EXPECT_EQ(cfg.succs[0][0].to, 1u);
  EXPECT_EQ(cfg.succs[0][0].count, 3u);
  EXPECT_EQ(cfg.succs[0][1].to, 2u);
}

TEST(WeightedCFGTest, TransitionProbability) {
  auto image = small_image();
  Profile p(*image);
  for (int i = 0; i < 4; ++i) {
    p.on_block(0);
    p.on_block(i % 4 == 0 ? 2u : 1u);
    p.break_chain();
  }
  const WeightedCFG cfg = WeightedCFG::from_profile(p);
  // block 0 executed 4 times; 0->1 has count 3.
  EXPECT_DOUBLE_EQ(cfg.transition_prob(0, cfg.succs[0][0]), 0.75);
  EXPECT_DOUBLE_EQ(cfg.transition_prob(0, cfg.succs[0][1]), 0.25);
}

TEST(WeightedCFGTest, DeterministicTieBreakByBlockId) {
  auto image = small_image();
  Profile p(*image);
  p.on_block(0);
  p.on_block(2);
  p.break_chain();
  p.on_block(0);
  p.on_block(1);
  const WeightedCFG cfg = WeightedCFG::from_profile(p);
  // Equal counts: lower block id first.
  ASSERT_EQ(cfg.succs[0].size(), 2u);
  EXPECT_EQ(cfg.succs[0][0].to, 1u);
}

}  // namespace
}  // namespace stc::profile
