#include "profile/locality.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::profile {
namespace {

using cfg::BlockKind;

// Image with two routines: f = {A(4,branch), B(2,fall), C(3,return)},
// g = {D(5,call), E(1,return)}.
std::unique_ptr<cfg::ProgramImage> image_two_routines() {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  b.routine("f", m,
            {{"A", 4, BlockKind::kBranch},
             {"B", 2, BlockKind::kFallThrough},
             {"C", 3, BlockKind::kReturn}});
  b.routine("g", m,
            {{"D", 5, BlockKind::kCall}, {"E", 1, BlockKind::kReturn}});
  return b.build();
}

TEST(FootprintTest, CountsExecutedElements) {
  auto image = image_two_routines();
  Profile p(*image);
  p.on_block(0);  // A
  p.on_block(1);  // B
  const FootprintStats fp = footprint(p);
  EXPECT_EQ(fp.total_routines, 2u);
  EXPECT_EQ(fp.executed_routines, 1u);
  EXPECT_EQ(fp.total_blocks, 5u);
  EXPECT_EQ(fp.executed_blocks, 2u);
  EXPECT_EQ(fp.total_instructions, 15u);
  EXPECT_EQ(fp.executed_instructions, 6u);
  EXPECT_DOUBLE_EQ(fp.routine_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(fp.instruction_fraction(), 6.0 / 15.0);
}

TEST(FootprintTest, EmptyProfile) {
  auto image = image_two_routines();
  Profile p(*image);
  const FootprintStats fp = footprint(p);
  EXPECT_EQ(fp.executed_blocks, 0u);
  EXPECT_DOUBLE_EQ(fp.block_fraction(), 0.0);
}

TEST(CumulativeCurveTest, MonotoneAndEndsAtOne) {
  auto image = image_two_routines();
  Profile p(*image);
  for (int i = 0; i < 90; ++i) p.on_block(0);
  for (int i = 0; i < 9; ++i) p.on_block(1);
  p.on_block(2);
  const auto curve = cumulative_reference_curve(p);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], 0.90);
  EXPECT_DOUBLE_EQ(curve[1], 0.99);
  EXPECT_DOUBLE_EQ(curve[2], 1.0);
  EXPECT_EQ(blocks_for_fraction(curve, 0.9), 1u);
  EXPECT_EQ(blocks_for_fraction(curve, 0.95), 2u);
  EXPECT_EQ(blocks_for_fraction(curve, 1.0), 3u);
}

TEST(CumulativeCurveTest, SampleClampsPastEnd) {
  auto image = image_two_routines();
  Profile p(*image);
  p.on_block(0);
  const auto curve = cumulative_reference_curve(p);
  const auto points = sample_curve(curve, {0, 1, 100});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].fraction, 0.0);
  EXPECT_DOUBLE_EQ(points[1].fraction, 1.0);
  EXPECT_DOUBLE_EQ(points[2].fraction, 1.0);
}

TEST(ReuseDistanceTest, MeasuresInstructionGaps) {
  auto image = image_two_routines();
  // Trace: A B A  -> A re-referenced after A(4)+B(2) = 6 instructions.
  trace::BlockTrace t;
  t.append(0);
  t.append(1);
  t.append(0);
  Profile p(*image);
  p.consume(t);
  const ReuseDistanceStats stats = reuse_distances(t, p, 1.0);
  EXPECT_EQ(stats.histogram.total(), 1u);  // one reuse of A
  EXPECT_DOUBLE_EQ(stats.fraction_below(25), 1.0);
}

TEST(ReuseDistanceTest, HotSetRespectsCoverage) {
  auto image = image_two_routines();
  trace::BlockTrace t;
  for (int i = 0; i < 99; ++i) t.append(0);
  t.append(1);
  Profile p(*image);
  p.consume(t);
  const ReuseDistanceStats stats = reuse_distances(t, p, 0.9);
  // Only block A is needed to reach 90% coverage.
  EXPECT_EQ(stats.hot_blocks, 1u);
  EXPECT_GE(stats.coverage, 0.9);
  EXPECT_EQ(stats.histogram.total(), 98u);  // A reused 98 times
}

TEST(BlockTypeTest, StaticAndDynamicFractions) {
  auto image = image_two_routines();
  Profile p(*image);
  // Execute A(branch) twice, B(fall) once, D(call) once.
  p.on_block(0);
  p.on_block(0);
  p.on_block(1);
  p.on_block(3);
  const BlockTypeStats stats = block_type_stats(p);
  const auto& fall = stats.by_kind[static_cast<int>(BlockKind::kFallThrough)];
  const auto& branch = stats.by_kind[static_cast<int>(BlockKind::kBranch)];
  const auto& call = stats.by_kind[static_cast<int>(BlockKind::kCall)];
  const auto& ret = stats.by_kind[static_cast<int>(BlockKind::kReturn)];
  // 3 executed static blocks: 1 fall, 1 branch, 1 call.
  EXPECT_DOUBLE_EQ(fall.static_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(branch.static_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(call.static_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ret.static_fraction, 0.0);
  // 5 dynamic events: 2 branch, 1 fall, 1 call.
  EXPECT_DOUBLE_EQ(branch.dynamic_fraction, 0.5);
  EXPECT_DOUBLE_EQ(fall.dynamic_fraction, 0.25);
}

TEST(BlockTypeTest, FixedBehaviourDetection) {
  auto image = image_two_routines();
  Profile p(*image);
  // A alternates successors: not fixed. B always goes to C: fixed.
  for (int i = 0; i < 10; ++i) {
    p.on_block(0);
    p.on_block(i % 2 == 0 ? 1u : 2u);
    p.break_chain();
  }
  for (int i = 0; i < 10; ++i) {
    p.on_block(1);
    p.on_block(2);
    p.break_chain();
  }
  const BlockTypeStats stats = block_type_stats(p);
  const auto& branch = stats.by_kind[static_cast<int>(BlockKind::kBranch)];
  EXPECT_DOUBLE_EQ(branch.predictable, 0.0);  // A (the only branch) alternates
  const auto& fall = stats.by_kind[static_cast<int>(BlockKind::kFallThrough)];
  EXPECT_DOUBLE_EQ(fall.predictable, 1.0);  // B is deterministic
}

TEST(BlockTypeTest, OverallWeightedByDynamicCounts) {
  auto image = image_two_routines();
  Profile p(*image);
  // 9 deterministic B->C events, 1 alternating-free A event (no successor).
  for (int i = 0; i < 9; ++i) {
    p.on_block(1);
    p.on_block(2);
    p.break_chain();
  }
  const BlockTypeStats stats = block_type_stats(p);
  // All observed blocks behave fixedly here.
  EXPECT_DOUBLE_EQ(stats.overall_predictable, 1.0);
}

}  // namespace
}  // namespace stc::profile
