#include "db/hash_index.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace stc::db {
namespace {

RID rid_of(std::uint32_t n) { return RID{n, 0}; }

std::vector<RID> drain(IndexCursor& cursor) {
  std::vector<RID> out;
  RID rid;
  while (cursor.next(rid)) out.push_back(rid);
  return out;
}

TEST(HashIndexTest, EmptyLookup) {
  Kernel kernel;
  HashIndex index(kernel);
  EXPECT_TRUE(drain(*index.seek_equal(Value(std::int64_t{1}))).empty());
}

TEST(HashIndexTest, InsertAndProbe) {
  Kernel kernel;
  HashIndex index(kernel);
  index.insert(Value(std::int64_t{10}), rid_of(1));
  const auto hits = drain(*index.seek_equal(Value(std::int64_t{10})));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], rid_of(1));
  EXPECT_TRUE(drain(*index.seek_equal(Value(std::int64_t{11}))).empty());
}

TEST(HashIndexTest, GrowsUnderLoad) {
  Kernel kernel;
  HashIndex index(kernel, 16);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    index.insert(Value(static_cast<std::int64_t>(i)), rid_of(i));
  }
  EXPECT_GT(index.bucket_count(), 16u);
  index.check_invariants();
  for (std::uint32_t i : {0u, 500u, 999u}) {
    const auto hits =
        drain(*index.seek_equal(Value(static_cast<std::int64_t>(i))));
    ASSERT_EQ(hits.size(), 1u) << i;
    EXPECT_EQ(hits[0], rid_of(i));
  }
}

TEST(HashIndexTest, DuplicateKeys) {
  Kernel kernel;
  HashIndex index(kernel);
  for (std::uint32_t i = 0; i < 50; ++i) {
    index.insert(Value(std::int64_t{9}), rid_of(i));
  }
  EXPECT_EQ(drain(*index.seek_equal(Value(std::int64_t{9}))).size(), 50u);
}

TEST(HashIndexTest, StringKeys) {
  Kernel kernel;
  HashIndex index(kernel);
  index.insert(Value(std::string("MAIL")), rid_of(1));
  index.insert(Value(std::string("SHIP")), rid_of(2));
  const auto hits = drain(*index.seek_equal(Value(std::string("SHIP"))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], rid_of(2));
}

TEST(HashIndexTest, RandomizedAgainstReferenceMap) {
  Kernel kernel;
  HashIndex index(kernel, 16);
  Rng rng(55);
  std::vector<std::vector<std::uint32_t>> reference(64);
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.uniform(64));
    index.insert(Value(key), rid_of(i));
    reference[static_cast<std::size_t>(key)].push_back(i);
  }
  index.check_invariants();
  for (std::int64_t key = 0; key < 64; ++key) {
    const auto hits = drain(*index.seek_equal(Value(key)));
    EXPECT_EQ(hits.size(), reference[static_cast<std::size_t>(key)].size())
        << "key " << key;
  }
}

TEST(HashIndexTest, EntryCountTracksInserts) {
  Kernel kernel;
  HashIndex index(kernel);
  EXPECT_EQ(index.entry_count(), 0u);
  index.insert(Value(std::int64_t{1}), rid_of(1));
  index.insert(Value(std::int64_t{2}), rid_of(2));
  EXPECT_EQ(index.entry_count(), 2u);
}

TEST(HashIndexTest, KindReportsHash) {
  Kernel kernel;
  HashIndex index(kernel);
  EXPECT_EQ(index.kind(), IndexKind::kHash);
}

}  // namespace
}  // namespace stc::db
