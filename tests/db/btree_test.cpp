#include "db/btree.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace stc::db {
namespace {

RID rid_of(std::uint32_t n) { return RID{n, static_cast<std::uint16_t>(n % 7)}; }

std::vector<RID> drain(IndexCursor& cursor) {
  std::vector<RID> out;
  RID rid;
  while (cursor.next(rid)) out.push_back(rid);
  return out;
}

TEST(BTreeTest, EmptyLookup) {
  Kernel kernel;
  BTreeIndex index(kernel);
  auto cursor = index.seek_equal(Value(std::int64_t{5}));
  EXPECT_TRUE(drain(*cursor).empty());
  index.check_invariants();
}

TEST(BTreeTest, SingleInsertLookup) {
  Kernel kernel;
  BTreeIndex index(kernel);
  index.insert(Value(std::int64_t{5}), rid_of(1));
  const auto hits = drain(*index.seek_equal(Value(std::int64_t{5})));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], rid_of(1));
  EXPECT_TRUE(drain(*index.seek_equal(Value(std::int64_t{6}))).empty());
}

TEST(BTreeTest, SequentialInsertsCauseSplits) {
  Kernel kernel;
  BTreeIndex index(kernel);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    index.insert(Value(static_cast<std::int64_t>(i)), rid_of(i));
  }
  EXPECT_EQ(index.entry_count(), static_cast<std::uint64_t>(n));
  EXPECT_GT(index.height(), 2u);
  index.check_invariants();
  for (int i : {0, 1, 2499, 4999}) {
    const auto hits = drain(*index.seek_equal(Value(static_cast<std::int64_t>(i))));
    ASSERT_EQ(hits.size(), 1u) << i;
    EXPECT_EQ(hits[0], rid_of(i));
  }
}

TEST(BTreeTest, RandomInsertOrder) {
  Kernel kernel;
  BTreeIndex index(kernel);
  Rng rng(123);
  std::vector<int> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(i);
  rng.shuffle(keys);
  for (int k : keys) index.insert(Value(static_cast<std::int64_t>(k)), rid_of(k));
  index.check_invariants();
  for (int probe : {0, 1500, 2999}) {
    const auto hits =
        drain(*index.seek_equal(Value(static_cast<std::int64_t>(probe))));
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], rid_of(probe));
  }
}

TEST(BTreeTest, DuplicatesAllReturned) {
  Kernel kernel;
  BTreeIndex index(kernel);
  for (std::uint32_t i = 0; i < 100; ++i) {
    index.insert(Value(std::int64_t{42}), rid_of(i));
    index.insert(Value(std::int64_t{7}), rid_of(1000 + i));
  }
  index.check_invariants();
  EXPECT_EQ(drain(*index.seek_equal(Value(std::int64_t{42}))).size(), 100u);
  EXPECT_EQ(drain(*index.seek_equal(Value(std::int64_t{7}))).size(), 100u);
  EXPECT_TRUE(drain(*index.seek_equal(Value(std::int64_t{8}))).empty());
}

TEST(BTreeTest, RangeScanInclusiveBounds) {
  Kernel kernel;
  BTreeIndex index(kernel);
  for (int i = 0; i < 100; ++i) {
    index.insert(Value(static_cast<std::int64_t>(i)), rid_of(i));
  }
  const auto hits = drain(*index.seek_range(Value(std::int64_t{10}), true,
                                            Value(std::int64_t{20}), true));
  EXPECT_EQ(hits.size(), 11u);
  EXPECT_EQ(hits.front(), rid_of(10));
  EXPECT_EQ(hits.back(), rid_of(20));
}

TEST(BTreeTest, RangeScanExclusiveBounds) {
  Kernel kernel;
  BTreeIndex index(kernel);
  for (int i = 0; i < 100; ++i) {
    index.insert(Value(static_cast<std::int64_t>(i)), rid_of(i));
  }
  const auto hits = drain(*index.seek_range(Value(std::int64_t{10}), false,
                                            Value(std::int64_t{20}), false));
  EXPECT_EQ(hits.size(), 9u);
  EXPECT_EQ(hits.front(), rid_of(11));
  EXPECT_EQ(hits.back(), rid_of(19));
}

TEST(BTreeTest, UnboundedScansCoverEverything) {
  Kernel kernel;
  BTreeIndex index(kernel);
  for (int i = 0; i < 500; ++i) {
    index.insert(Value(static_cast<std::int64_t>(i)), rid_of(i));
  }
  EXPECT_EQ(drain(*index.seek_range(std::nullopt, true, std::nullopt, true))
                .size(),
            500u);
  EXPECT_EQ(drain(*index.seek_range(Value(std::int64_t{490}), true,
                                    std::nullopt, true))
                .size(),
            10u);
  EXPECT_EQ(drain(*index.seek_range(std::nullopt, true,
                                    Value(std::int64_t{9}), true))
                .size(),
            10u);
}

TEST(BTreeTest, RangeScanReturnsSortedKeys) {
  Kernel kernel;
  BTreeIndex index(kernel);
  Rng rng(321);
  for (int i = 0; i < 1000; ++i) {
    index.insert(Value(static_cast<std::int64_t>(rng.uniform(200))),
                 rid_of(static_cast<std::uint32_t>(i)));
  }
  // Full scan yields 1000 entries.
  const auto all = drain(*index.seek_range(std::nullopt, true, std::nullopt, true));
  EXPECT_EQ(all.size(), 1000u);
  index.check_invariants();
}

TEST(BTreeTest, StringKeys) {
  Kernel kernel;
  BTreeIndex index(kernel);
  index.insert(Value(std::string("FRANCE")), rid_of(1));
  index.insert(Value(std::string("GERMANY")), rid_of(2));
  index.insert(Value(std::string("BRAZIL")), rid_of(3));
  const auto hits = drain(*index.seek_equal(Value(std::string("GERMANY"))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], rid_of(2));
  // Range [BRAZIL, FRANCE] inclusive = 2 entries.
  EXPECT_EQ(drain(*index.seek_range(Value(std::string("BRAZIL")), true,
                                    Value(std::string("FRANCE")), true))
                .size(),
            2u);
}

TEST(BTreeTest, RangeBetweenDuplicateRuns) {
  Kernel kernel;
  BTreeIndex index(kernel);
  for (std::uint32_t i = 0; i < 60; ++i) {
    index.insert(Value(std::int64_t{1}), rid_of(i));
    index.insert(Value(std::int64_t{3}), rid_of(100 + i));
  }
  // Exclusive range (1, 3) is empty.
  EXPECT_TRUE(drain(*index.seek_range(Value(std::int64_t{1}), false,
                                      Value(std::int64_t{3}), false))
                  .empty());
  // Inclusive on the right only.
  EXPECT_EQ(drain(*index.seek_range(Value(std::int64_t{1}), false,
                                    Value(std::int64_t{3}), true))
                .size(),
            60u);
}

}  // namespace
}  // namespace stc::db
