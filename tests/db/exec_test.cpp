// Operator-level executor tests: each operator is checked against a naive
// reference computation over a small hand-loaded table.
#include "db/exec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "db/database.h"

namespace stc::db {
namespace {

// Table t(id INT unique, grp INT, val DOUBLE) with 20 rows:
// id = 0..19, grp = id % 4, val = id * 0.5.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_unique<Database>(64);
    TableInfo& t = db->create_table(
        "t", Schema({{"id", ValueType::kInt},
                     {"grp", ValueType::kInt},
                     {"val", ValueType::kDouble}}));
    for (std::int64_t i = 0; i < 20; ++i) {
      db->insert(t, {Value(i), Value(i % 4), Value(i * 0.5)});
    }
    db->create_index("t", "id", IndexKind::kBTree, true);
    db->create_index("t", "grp", IndexKind::kHash, false);
    table = db->catalog().lookup("T");
  }

  std::vector<Tuple> run(const PlanNode& plan) {
    return run_plan(db->kernel(), plan);
  }

  std::unique_ptr<Database> db;
  TableInfo* table = nullptr;
};

TEST_F(ExecTest, SeqScanReturnsAllRows) {
  auto plan = make_seq_scan(table);
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[0][0].as_int(), 0);
  EXPECT_EQ(rows[19][0].as_int(), 19);
}

TEST_F(ExecTest, SeqScanWithQual) {
  auto qual = Expr::make_compare(CmpOp::kLt, Expr::make_column(0),
                                 Expr::make_const(Value(std::int64_t{5})));
  auto plan = make_seq_scan(table, std::move(qual));
  EXPECT_EQ(run(*plan).size(), 5u);
}

TEST_F(ExecTest, BtreeIndexScanEquality) {
  const IndexInfo* index = table->index_on(0);
  ASSERT_NE(index, nullptr);
  auto plan = make_index_scan(table, index, Value(std::int64_t{7}), true,
                              Value(std::int64_t{7}), true);
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].as_int(), 7);
}

TEST_F(ExecTest, BtreeIndexScanRange) {
  const IndexInfo* index = table->index_on(0);
  auto plan = make_index_scan(table, index, Value(std::int64_t{5}), true,
                              Value(std::int64_t{9}), false);
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), 4u);  // 5,6,7,8
}

TEST_F(ExecTest, HashIndexScanEquality) {
  const IndexInfo* index = table->index_on(1);
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->index->kind(), IndexKind::kHash);
  auto plan = make_index_scan(table, index, Value(std::int64_t{2}), true,
                              Value(std::int64_t{2}), true);
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), 5u);  // grp == 2: ids 2,6,10,14,18
  for (const Tuple& row : rows) EXPECT_EQ(row[1].as_int(), 2);
}

TEST_F(ExecTest, FilterOperator) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kFilter;
  plan->qual = Expr::make_compare(CmpOp::kGe, Expr::make_column(0),
                                  Expr::make_const(Value(std::int64_t{18})));
  plan->children.push_back(make_seq_scan(table));
  EXPECT_EQ(run(*plan).size(), 2u);
}

TEST_F(ExecTest, ProjectComputesExpressions) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kProject;
  plan->exprs.push_back(Expr::make_arith(
      ArithOp::kMul, Expr::make_column(0),
      Expr::make_const(Value(std::int64_t{10}))));
  plan->children.push_back(make_seq_scan(table));
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[3][0].as_int(), 30);
  EXPECT_EQ(rows[3].size(), 1u);
}

TEST_F(ExecTest, LimitStopsEarly) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kLimit;
  plan->limit = 7;
  plan->children.push_back(make_seq_scan(table));
  EXPECT_EQ(run(*plan).size(), 7u);
}

TEST_F(ExecTest, LimitZeroYieldsNothing) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kLimit;
  plan->limit = 0;
  plan->children.push_back(make_seq_scan(table));
  EXPECT_TRUE(run(*plan).empty());
}

TEST_F(ExecTest, SortAscendingAndDescending) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kSort;
  plan->sort_keys.push_back({1, false});  // grp asc
  plan->sort_keys.push_back({0, true});   // id desc within grp
  plan->children.push_back(make_seq_scan(table));
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[0][1].as_int(), 0);
  EXPECT_EQ(rows[0][0].as_int(), 16);  // largest id within grp 0
  EXPECT_EQ(rows[19][1].as_int(), 3);
  EXPECT_EQ(rows[19][0].as_int(), 3);
}

TEST_F(ExecTest, SortIsStableOnEqualKeys) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kSort;
  plan->sort_keys.push_back({1, false});  // grp only
  plan->children.push_back(make_seq_scan(table));
  const auto rows = run(*plan);
  // Within each grp, original (id) order preserved.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][1].as_int() == rows[i - 1][1].as_int()) {
      EXPECT_GT(rows[i][0].as_int(), rows[i - 1][0].as_int());
    }
  }
}

TEST_F(ExecTest, AggregateGroupedSums) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kAggregate;
  plan->group_cols = {1};
  AggSpec sum;
  sum.op = AggOp::kSum;
  sum.arg = Expr::make_column(0);
  plan->aggs.push_back(std::move(sum));
  AggSpec count;
  count.op = AggOp::kCount;
  plan->aggs.push_back(std::move(count));
  plan->children.push_back(make_seq_scan(table));
  auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 4u);
  // grp g holds ids {g, g+4, g+8, g+12, g+16}: sum = 5g + 40, count = 5.
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return a[0].as_int() < b[0].as_int();
  });
  for (std::int64_t g = 0; g < 4; ++g) {
    EXPECT_EQ(rows[static_cast<std::size_t>(g)][1].as_int(), 5 * g + 40);
    EXPECT_EQ(rows[static_cast<std::size_t>(g)][2].as_int(), 5);
  }
}

TEST_F(ExecTest, AggregateGrandTotalOnEmptyInput) {
  auto scan_qual = Expr::make_compare(
      CmpOp::kLt, Expr::make_column(0), Expr::make_const(Value(std::int64_t{0})));
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kAggregate;
  AggSpec count;
  count.op = AggOp::kCount;
  plan->aggs.push_back(std::move(count));
  AggSpec sum;
  sum.op = AggOp::kSum;
  sum.arg = Expr::make_column(0);
  plan->aggs.push_back(std::move(sum));
  plan->children.push_back(make_seq_scan(table, std::move(scan_qual)));
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].as_int(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(ExecTest, AggregateMinMaxAvg) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kAggregate;
  for (AggOp op : {AggOp::kMin, AggOp::kMax, AggOp::kAvg}) {
    AggSpec spec;
    spec.op = op;
    spec.arg = Expr::make_column(0);
    plan->aggs.push_back(std::move(spec));
  }
  plan->children.push_back(make_seq_scan(table));
  const auto rows = run(*plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].as_int(), 0);
  EXPECT_EQ(rows[0][1].as_int(), 19);
  EXPECT_DOUBLE_EQ(rows[0][2].as_double(), 9.5);
}

// ---- joins ------------------------------------------------------------------

// Second table s(sid INT, tag STRING) with sid in {0..4} x 2 rows.
class JoinTest : public ExecTest {
 protected:
  void SetUp() override {
    ExecTest::SetUp();
    TableInfo& s = db->create_table(
        "s", Schema({{"sid", ValueType::kInt}, {"tag", ValueType::kString}}));
    for (std::int64_t i = 0; i < 10; ++i) {
      db->insert(s, {Value(i % 5), Value("tag-" + std::to_string(i))});
    }
    db->create_index("s", "sid", IndexKind::kBTree, false);
    stable = db->catalog().lookup("S");
  }

  // Reference: inner join t.grp == s.sid.
  std::size_t expected_join_size() const {
    // grp values 0..3 appear 5x each; sid 0..4 appears 2x each.
    // Matches: for grp g in 0..3: 5 * 2 = 10 -> 40 rows.
    return 40;
  }

  std::unique_ptr<PlanNode> join_plan(PlanKind kind) {
    auto plan = std::make_unique<PlanNode>();
    plan->kind = kind;
    plan->left_key = Expr::make_column(1);  // t.grp
    if (kind == PlanKind::kHashJoin || kind == PlanKind::kMergeJoin) {
      plan->right_key = Expr::make_column(0);  // s.sid
    }
    return plan;
  }

  TableInfo* stable = nullptr;
};

TEST_F(JoinTest, HashJoinMatchesReference) {
  auto plan = join_plan(PlanKind::kHashJoin);
  plan->children.push_back(make_seq_scan(table));
  plan->children.push_back(make_seq_scan(stable));
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), expected_join_size());
  for (const Tuple& row : rows) {
    EXPECT_EQ(row[1].as_int(), row[3].as_int());  // grp == sid
    EXPECT_EQ(row.size(), 5u);
  }
}

TEST_F(JoinTest, IndexNLJoinMatchesReference) {
  auto plan = join_plan(PlanKind::kIndexNLJoin);
  plan->table = stable;
  plan->index = stable->index_on(0);
  ASSERT_NE(plan->index, nullptr);
  plan->children.push_back(make_seq_scan(table));
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), expected_join_size());
  for (const Tuple& row : rows) EXPECT_EQ(row[1].as_int(), row[3].as_int());
}

TEST_F(JoinTest, MergeJoinMatchesReference) {
  auto plan = join_plan(PlanKind::kMergeJoin);
  auto sort_left = std::make_unique<PlanNode>();
  sort_left->kind = PlanKind::kSort;
  sort_left->sort_keys.push_back({1, false});
  sort_left->children.push_back(make_seq_scan(table));
  auto sort_right = std::make_unique<PlanNode>();
  sort_right->kind = PlanKind::kSort;
  sort_right->sort_keys.push_back({0, false});
  sort_right->children.push_back(make_seq_scan(stable));
  plan->children.push_back(std::move(sort_left));
  plan->children.push_back(std::move(sort_right));
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), expected_join_size());
  for (const Tuple& row : rows) EXPECT_EQ(row[1].as_int(), row[3].as_int());
}

TEST_F(JoinTest, NaiveNLJoinWithResidualEquality) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kNLJoin;
  plan->residual = Expr::make_compare(CmpOp::kEq, Expr::make_column(1),
                                      Expr::make_column(3));
  auto mat = std::make_unique<PlanNode>();
  mat->kind = PlanKind::kMaterialize;
  mat->children.push_back(make_seq_scan(stable));
  plan->children.push_back(make_seq_scan(table));
  plan->children.push_back(std::move(mat));
  const auto rows = run(*plan);
  EXPECT_EQ(rows.size(), expected_join_size());
}

TEST_F(JoinTest, JoinWithNoMatchesIsEmpty) {
  auto plan = join_plan(PlanKind::kHashJoin);
  auto qual = Expr::make_compare(CmpOp::kGt, Expr::make_column(0),
                                 Expr::make_const(Value(std::int64_t{100})));
  plan->children.push_back(make_seq_scan(table));
  plan->children.push_back(make_seq_scan(stable, std::move(qual)));
  EXPECT_TRUE(run(*plan).empty());
}

TEST_F(JoinTest, ResidualFiltersJoinOutput) {
  auto plan = join_plan(PlanKind::kHashJoin);
  plan->residual = Expr::make_compare(CmpOp::kLt, Expr::make_column(0),
                                      Expr::make_const(Value(std::int64_t{4})));
  plan->children.push_back(make_seq_scan(table));
  plan->children.push_back(make_seq_scan(stable));
  // ids 0..3, each with grp == id matching 2 s rows -> 8.
  EXPECT_EQ(run(*plan).size(), 8u);
}

TEST_F(JoinTest, MaterializeRewindsForEveryOuterRow) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kNLJoin;  // cross product
  auto mat = std::make_unique<PlanNode>();
  mat->kind = PlanKind::kMaterialize;
  mat->children.push_back(make_seq_scan(stable));
  plan->children.push_back(make_seq_scan(table));
  plan->children.push_back(std::move(mat));
  EXPECT_EQ(run(*plan).size(), 20u * 10u);
}

TEST_F(JoinTest, MergeJoinHandlesDuplicatesOnBothSides) {
  // Join t.grp (5 of each value 0..3) with s.sid (2 of each 0..4) exercises
  // the group-replay logic. Compare against hash join output size.
  auto hash = join_plan(PlanKind::kHashJoin);
  hash->children.push_back(make_seq_scan(table));
  hash->children.push_back(make_seq_scan(stable));
  const auto expected = run(*hash).size();

  auto merge = join_plan(PlanKind::kMergeJoin);
  auto sl = std::make_unique<PlanNode>();
  sl->kind = PlanKind::kSort;
  sl->sort_keys.push_back({1, false});
  sl->children.push_back(make_seq_scan(table));
  auto sr = std::make_unique<PlanNode>();
  sr->kind = PlanKind::kSort;
  sr->sort_keys.push_back({0, false});
  sr->children.push_back(make_seq_scan(stable));
  merge->children.push_back(std::move(sl));
  merge->children.push_back(std::move(sr));
  EXPECT_EQ(run(*merge).size(), expected);
}

}  // namespace
}  // namespace stc::db
