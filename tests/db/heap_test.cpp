#include "db/heap.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

struct Fixture {
  Fixture() : storage(kernel), buffer(kernel, storage, 16) {
    file = storage.create_file();
    heap = std::make_unique<HeapFile>(kernel, buffer, storage, file);
  }
  Tuple sample(std::int64_t i) const {
    return {Value(i), Value(static_cast<double>(i) * 1.5),
            Value("row-" + std::to_string(i)), Value::null()};
  }
  Kernel kernel;
  StorageManager storage;
  BufferManager buffer;
  std::uint32_t file = 0;
  std::unique_ptr<HeapFile> heap;
};

TEST(TupleCodecTest, RoundTripAllTypes) {
  Kernel kernel;
  const Tuple original = {Value(std::int64_t{-42}), Value(3.25),
                          Value(std::string("hello")), Value::null(),
                          Value(std::int64_t{1} << 40)};
  std::vector<std::uint8_t> bytes;
  tuple_encode(kernel, original, bytes);
  Tuple decoded;
  tuple_decode(kernel, bytes.data(), static_cast<std::uint16_t>(bytes.size()),
               decoded);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].compare(original[i]), 0) << "column " << i;
    EXPECT_EQ(decoded[i].type(), original[i].type()) << "column " << i;
  }
}

TEST(TupleCodecTest, EmptyTuple) {
  Kernel kernel;
  std::vector<std::uint8_t> bytes;
  tuple_encode(kernel, {}, bytes);
  Tuple decoded;
  tuple_decode(kernel, bytes.data(), static_cast<std::uint16_t>(bytes.size()),
               decoded);
  EXPECT_TRUE(decoded.empty());
}

TEST(HeapFileTest, InsertThenGet) {
  Fixture f;
  const RID rid = f.heap->insert(f.sample(7));
  Tuple out;
  f.heap->get(rid, out);
  EXPECT_EQ(out[0].as_int(), 7);
  EXPECT_EQ(out[2].as_string(), "row-7");
  EXPECT_EQ(f.heap->tuple_count(), 1u);
}

TEST(HeapFileTest, ManyInsertsSpanPages) {
  Fixture f;
  std::vector<RID> rids;
  for (std::int64_t i = 0; i < 2000; ++i) rids.push_back(f.heap->insert(f.sample(i)));
  EXPECT_GT(f.heap->page_count(), 1u);
  // Spot-check a few RIDs.
  for (std::int64_t i : {0, 999, 1999}) {
    Tuple out;
    f.heap->get(rids[static_cast<std::size_t>(i)], out);
    EXPECT_EQ(out[0].as_int(), i);
  }
}

TEST(HeapFileTest, ScannerVisitsEveryTupleInOrder) {
  Fixture f;
  const int n = 500;
  for (std::int64_t i = 0; i < n; ++i) f.heap->insert(f.sample(i));
  HeapFile::Scanner scanner(*f.heap);
  Tuple out;
  RID rid;
  std::int64_t expected = 0;
  while (scanner.next(out, rid)) {
    EXPECT_EQ(out[0].as_int(), expected);
    ++expected;
  }
  EXPECT_EQ(expected, n);
}

TEST(HeapFileTest, ScannerOnEmptyHeap) {
  Fixture f;
  HeapFile::Scanner scanner(*f.heap);
  Tuple out;
  RID rid;
  EXPECT_FALSE(scanner.next(out, rid));
}

TEST(HeapFileTest, ScanRidsMatchGet) {
  Fixture f;
  for (std::int64_t i = 0; i < 100; ++i) f.heap->insert(f.sample(i));
  HeapFile::Scanner scanner(*f.heap);
  Tuple scanned;
  RID rid;
  while (scanner.next(scanned, rid)) {
    Tuple fetched;
    f.heap->get(rid, fetched);
    ASSERT_EQ(fetched.size(), scanned.size());
    for (std::size_t c = 0; c < fetched.size(); ++c) {
      EXPECT_EQ(fetched[c].compare(scanned[c]), 0);
    }
  }
}

TEST(HeapFileTest, TracesThroughBufferManager) {
  Fixture f;
  for (std::int64_t i = 0; i < 50; ++i) f.heap->insert(f.sample(i));
  const std::uint64_t lookups_before = f.buffer.stats().lookups;
  HeapFile::Scanner scanner(*f.heap);
  Tuple out;
  RID rid;
  while (scanner.next(out, rid)) {
  }
  EXPECT_GT(f.buffer.stats().lookups, lookups_before);
}

}  // namespace
}  // namespace stc::db
