// Operator rewind semantics (the contract naive nested-loops relies on).
#include <gtest/gtest.h>

#include "db/database.h"
#include "db/exec.h"

namespace stc::db {
namespace {

class RewindTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_unique<Database>(32);
    TableInfo& t = db->create_table(
        "t", Schema({{"id", ValueType::kInt}}));
    for (std::int64_t i = 0; i < 10; ++i) db->insert(t, {Value(i)});
    db->create_index("t", "id", IndexKind::kBTree, true);
    table = db->catalog().lookup("T");
  }
  std::unique_ptr<Database> db;
  TableInfo* table = nullptr;
};

std::size_t drain(Kernel& k, Operator& op) {
  Tuple tuple;
  std::size_t n = 0;
  while (op.next(tuple)) ++n;
  (void)k;
  return n;
}

TEST_F(RewindTest, SeqScanRestartsFromTheTop) {
  auto plan = make_seq_scan(table);
  auto op = make_operator(db->kernel(), *plan);
  op->open();
  Tuple tuple;
  ASSERT_TRUE(op->next(tuple));
  ASSERT_TRUE(op->next(tuple));
  op->rewind();
  EXPECT_EQ(drain(db->kernel(), *op), 10u);
  op->close();
}

TEST_F(RewindTest, IndexScanRestartsItsCursor) {
  auto plan = make_index_scan(table, table->index_on(0),
                              Value(std::int64_t{2}), true,
                              Value(std::int64_t{7}), true);
  auto op = make_operator(db->kernel(), *plan);
  op->open();
  Tuple tuple;
  ASSERT_TRUE(op->next(tuple));
  op->rewind();
  EXPECT_EQ(drain(db->kernel(), *op), 6u);  // ids 2..7
  op->close();
}

TEST_F(RewindTest, MaterializeRewindsWithoutReopeningChild) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kMaterialize;
  plan->children.push_back(make_seq_scan(table));
  auto op = make_operator(db->kernel(), *plan);
  op->open();
  EXPECT_EQ(drain(db->kernel(), *op), 10u);
  const std::uint64_t lookups_after_open = db->buffer().stats().lookups;
  op->rewind();
  EXPECT_EQ(drain(db->kernel(), *op), 10u);
  // The second pass comes from the materialized buffer: no page traffic.
  EXPECT_EQ(db->buffer().stats().lookups, lookups_after_open);
  op->close();
}

TEST_F(RewindTest, SortRewindsToFirstRow) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kSort;
  plan->sort_keys.push_back({0, true});
  plan->children.push_back(make_seq_scan(table));
  auto op = make_operator(db->kernel(), *plan);
  op->open();
  Tuple tuple;
  ASSERT_TRUE(op->next(tuple));
  EXPECT_EQ(tuple[0].as_int(), 9);
  op->rewind();
  ASSERT_TRUE(op->next(tuple));
  EXPECT_EQ(tuple[0].as_int(), 9);
  op->close();
}

TEST_F(RewindTest, UnsupportedOperatorAborts) {
  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kFilter;
  plan->qual = Expr::make_const(Value(std::int64_t{1}));
  plan->children.push_back(make_seq_scan(table));
  auto op = make_operator(db->kernel(), *plan);
  op->open();
  EXPECT_DEATH(op->rewind(), "does not support rewind");
  op->close();
}

}  // namespace
}  // namespace stc::db
