#include "db/value.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::null().is_null());
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value(std::string("abc")).as_string(), "abc");
}

TEST(ValueTest, IntComparesNumerically) {
  EXPECT_LT(Value(std::int64_t{1}).compare(Value(std::int64_t{2})), 0);
  EXPECT_EQ(Value(std::int64_t{5}).compare(Value(std::int64_t{5})), 0);
  EXPECT_GT(Value(std::int64_t{9}).compare(Value(std::int64_t{2})), 0);
}

TEST(ValueTest, MixedIntDoubleComparison) {
  EXPECT_EQ(Value(std::int64_t{2}).compare(Value(2.0)), 0);
  EXPECT_LT(Value(std::int64_t{2}).compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).compare(Value(std::int64_t{3})), 0);
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value(std::string("abc")).compare(Value(std::string("abd"))), 0);
  EXPECT_EQ(Value(std::string("x")).compare(Value(std::string("x"))), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::null().compare(Value(std::int64_t{0})), 0);
  EXPECT_GT(Value(std::string("")).compare(Value::null()), 0);
  EXPECT_EQ(Value::null().compare(Value::null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(std::int64_t{7}).hash(), Value(std::int64_t{7}).hash());
  EXPECT_EQ(Value(std::string("key")).hash(), Value(std::string("key")).hash());
  EXPECT_NE(Value(std::int64_t{7}).hash(), Value(std::int64_t{8}).hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::null().to_string(), "NULL");
  EXPECT_EQ(Value(std::int64_t{-3}).to_string(), "-3");
  EXPECT_EQ(Value(std::string("hi")).to_string(), "hi");
  EXPECT_EQ(Value(1.5).to_string(), "1.5000");
}

TEST(DateTest, EpochAndKnownDates) {
  EXPECT_EQ(date_from_ymd(1970, 1, 1), 0);
  EXPECT_EQ(date_from_ymd(1970, 1, 2), 1);
  EXPECT_EQ(date_from_ymd(1969, 12, 31), -1);
  EXPECT_EQ(date_from_ymd(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripAcrossYears) {
  for (int year = 1990; year <= 2000; ++year) {
    for (int month = 1; month <= 12; ++month) {
      const std::int64_t days = date_from_ymd(year, month, 15);
      int y = 0;
      int m = 0;
      int d = 0;
      ymd_from_date(days, y, m, d);
      EXPECT_EQ(y, year);
      EXPECT_EQ(m, month);
      EXPECT_EQ(d, 15);
    }
  }
}

TEST(DateTest, LeapYearHandling) {
  const std::int64_t feb29 = date_from_ymd(1996, 2, 29);
  const std::int64_t mar1 = date_from_ymd(1996, 3, 1);
  EXPECT_EQ(mar1 - feb29, 1);
  int y = 0;
  int m = 0;
  int d = 0;
  ymd_from_date(feb29, y, m, d);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
}

TEST(DateTest, ParseAndFormat) {
  const std::int64_t days = parse_date("1994-06-17");
  EXPECT_EQ(format_date(days), "1994-06-17");
  EXPECT_EQ(year_of(days), 1994);
}

TEST(DateTest, OrderingMatchesCalendar) {
  EXPECT_LT(parse_date("1992-01-01"), parse_date("1998-08-02"));
  EXPECT_LT(parse_date("1995-03-14"), parse_date("1995-03-15"));
}

}  // namespace
}  // namespace stc::db
