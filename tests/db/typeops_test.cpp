#include "db/typeops.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

TEST(CmpDispatchTest, AgreesWithValueCompare) {
  Kernel k;
  const Value values[] = {Value(std::int64_t{-5}), Value(std::int64_t{0}),
                          Value(std::int64_t{7}),  Value(1.5),
                          Value(7.0),              Value(std::string("abc")),
                          Value(std::string("abd"))};
  for (const Value& a : values) {
    for (const Value& b : values) {
      // Strings only compare with strings (as in the engine's type system).
      const bool a_str = a.type() == ValueType::kString;
      const bool b_str = b.type() == ValueType::kString;
      if (a_str != b_str) continue;
      EXPECT_EQ(cmp_dispatch(k, a, b), a.compare(b))
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(CmpDispatchTest, NullsHandledOnTheNullPath) {
  Kernel k;
  EXPECT_EQ(cmp_dispatch(k, Value::null(), Value::null()), 0);
  EXPECT_LT(cmp_dispatch(k, Value::null(), Value(std::int64_t{1})), 0);
  EXPECT_GT(cmp_dispatch(k, Value(std::int64_t{1}), Value::null()), 0);
}

TEST(CmpDispatchTest, EmitsKernelBlocks) {
  Kernel k;
  const std::uint64_t before = k.exec().blocks_emitted();
  cmp_dispatch(k, Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_GT(k.exec().blocks_emitted(), before + 2);
}

TEST(HashDispatchTest, AgreesWithValueHash) {
  Kernel k;
  for (const Value& v : {Value(std::int64_t{42}), Value(2.5),
                         Value(std::string("lineitem")), Value::null()}) {
    EXPECT_EQ(hash_dispatch(k, v), v.hash());
  }
}

TEST(HashDispatchTest, LongStringsEmitPerChunkBlocks) {
  Kernel k;
  const std::uint64_t before = k.exec().blocks_emitted();
  hash_dispatch(k, Value(std::string(64, 'x')));
  const std::uint64_t long_cost = k.exec().blocks_emitted() - before;
  const std::uint64_t before2 = k.exec().blocks_emitted();
  hash_dispatch(k, Value(std::string(1, 'x')));
  const std::uint64_t short_cost = k.exec().blocks_emitted() - before2;
  EXPECT_GT(long_cost, short_cost);
}

}  // namespace
}  // namespace stc::db
