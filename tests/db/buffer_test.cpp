#include "db/buffer.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

struct Fixture {
  Fixture() : storage(kernel), buffer(kernel, storage, 4) {
    file = storage.create_file();
    for (int i = 0; i < 8; ++i) storage.allocate_page(file);
  }
  Kernel kernel;
  StorageManager storage;
  BufferManager buffer;
  std::uint32_t file = 0;
};

TEST(BufferManagerTest, PinFetchesFromStorage) {
  Fixture f;
  const std::uint64_t reads_before = f.storage.stats().page_reads;
  f.buffer.pin({f.file, 0});
  EXPECT_EQ(f.storage.stats().page_reads, reads_before + 1);
  f.buffer.unpin({f.file, 0}, false);
}

TEST(BufferManagerTest, SecondPinHits) {
  Fixture f;
  f.buffer.pin({f.file, 0});
  f.buffer.unpin({f.file, 0}, false);
  f.buffer.pin({f.file, 0});
  f.buffer.unpin({f.file, 0}, false);
  EXPECT_EQ(f.buffer.stats().hits, 1u);
  EXPECT_EQ(f.buffer.stats().lookups, 2u);
  EXPECT_EQ(f.storage.stats().page_reads, 1u);
}

TEST(BufferManagerTest, EvictsLruWhenFull) {
  Fixture f;
  for (std::uint32_t p = 0; p < 4; ++p) {
    f.buffer.pin({f.file, p});
    f.buffer.unpin({f.file, p}, false);
  }
  // Touch page 0 so page 1 becomes LRU, then bring in page 4.
  f.buffer.pin({f.file, 0});
  f.buffer.unpin({f.file, 0}, false);
  f.buffer.pin({f.file, 4});
  f.buffer.unpin({f.file, 4}, false);
  EXPECT_EQ(f.buffer.stats().evictions, 1u);
  // Page 1 must now miss; page 0 must hit.
  const std::uint64_t hits = f.buffer.stats().hits;
  f.buffer.pin({f.file, 0});
  f.buffer.unpin({f.file, 0}, false);
  EXPECT_EQ(f.buffer.stats().hits, hits + 1);
  const std::uint64_t reads = f.storage.stats().page_reads;
  f.buffer.pin({f.file, 1});
  f.buffer.unpin({f.file, 1}, false);
  EXPECT_EQ(f.storage.stats().page_reads, reads + 1);
}

TEST(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  Fixture f;
  Page& page = f.buffer.pin({f.file, 0});
  const std::uint8_t data[] = {42};
  page.insert_record(data, 1);
  f.buffer.unpin({f.file, 0}, /*dirty=*/true);
  // Force page 0 out.
  for (std::uint32_t p = 1; p <= 4; ++p) {
    f.buffer.pin({f.file, p});
    f.buffer.unpin({f.file, p}, false);
  }
  EXPECT_EQ(f.buffer.stats().dirty_writebacks, 1u);
  // The mutation must be durable in storage.
  Page read;
  f.storage.read_page({f.file, 0}, read);
  EXPECT_EQ(read.slot_count(), 1u);
}

TEST(BufferManagerTest, PinnedPagesAreNotEvicted) {
  Fixture f;
  f.buffer.pin({f.file, 0});  // stays pinned
  for (std::uint32_t p = 1; p < 6; ++p) {
    f.buffer.pin({f.file, p});
    f.buffer.unpin({f.file, p}, false);
  }
  // Page 0 must still hit without a storage read.
  const std::uint64_t reads = f.storage.stats().page_reads;
  f.buffer.pin({f.file, 0});
  EXPECT_EQ(f.storage.stats().page_reads, reads);
  f.buffer.unpin({f.file, 0}, false);
  f.buffer.unpin({f.file, 0}, false);
}

TEST(BufferManagerTest, FlushAllWritesDirtyFrames) {
  Fixture f;
  Page& page = f.buffer.pin({f.file, 2});
  const std::uint8_t data[] = {7};
  page.insert_record(data, 1);
  f.buffer.unpin({f.file, 2}, true);
  const std::uint64_t writes = f.storage.stats().page_writes;
  f.buffer.flush_all();
  EXPECT_EQ(f.storage.stats().page_writes, writes + 1);
  // A second flush has nothing to do.
  f.buffer.flush_all();
  EXPECT_EQ(f.storage.stats().page_writes, writes + 1);
}

TEST(BufferManagerDeathTest, UnpinWithoutPinAborts) {
  Fixture f;
  EXPECT_DEATH(f.buffer.unpin({f.file, 0}, false), "not pinned");
}

TEST(BufferManagerDeathTest, AllFramesPinnedAborts) {
  Fixture f;
  for (std::uint32_t p = 0; p < 4; ++p) f.buffer.pin({f.file, p});
  EXPECT_DEATH(f.buffer.pin({f.file, 4}), "exhausted");
}

TEST(BufferManagerTest, MultiplePinsRequireMultipleUnpins) {
  Fixture f;
  f.buffer.pin({f.file, 0});
  f.buffer.pin({f.file, 0});
  f.buffer.unpin({f.file, 0}, false);
  // Still pinned once: must survive heavy traffic.
  for (std::uint32_t p = 1; p < 6; ++p) {
    f.buffer.pin({f.file, p});
    f.buffer.unpin({f.file, p}, false);
  }
  const std::uint64_t reads = f.storage.stats().page_reads;
  f.buffer.pin({f.file, 0});
  EXPECT_EQ(f.storage.stats().page_reads, reads);
  f.buffer.unpin({f.file, 0}, false);
  f.buffer.unpin({f.file, 0}, false);
}

}  // namespace
}  // namespace stc::db
