#include "db/expr.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

Value eval(Kernel& k, const Expr& e) { return eval_expr(k, e, {}); }

std::unique_ptr<Expr> num(std::int64_t v) {
  return Expr::make_const(Value(v));
}
std::unique_ptr<Expr> dbl(double v) { return Expr::make_const(Value(v)); }
std::unique_ptr<Expr> str(const char* v) {
  return Expr::make_const(Value(std::string(v)));
}

TEST(ExprTest, ConstAndColumn) {
  Kernel k;
  EXPECT_EQ(eval(k, *num(7)).as_int(), 7);
  const Tuple row = {Value(std::int64_t{1}), Value(std::string("x"))};
  EXPECT_EQ(eval_expr(k, *Expr::make_column(1), row).as_string(), "x");
}

TEST(ExprTest, AllComparisonOperators) {
  Kernel k;
  const struct {
    CmpOp op;
    std::int64_t l, r;
    bool expected;
  } cases[] = {
      {CmpOp::kEq, 2, 2, true},  {CmpOp::kEq, 2, 3, false},
      {CmpOp::kNe, 2, 3, true},  {CmpOp::kNe, 2, 2, false},
      {CmpOp::kLt, 1, 2, true},  {CmpOp::kLt, 2, 2, false},
      {CmpOp::kLe, 2, 2, true},  {CmpOp::kLe, 3, 2, false},
      {CmpOp::kGt, 3, 2, true},  {CmpOp::kGt, 2, 2, false},
      {CmpOp::kGe, 2, 2, true},  {CmpOp::kGe, 1, 2, false},
  };
  for (const auto& c : cases) {
    const auto e = Expr::make_compare(c.op, num(c.l), num(c.r));
    EXPECT_EQ(eval(k, *e).as_int(), c.expected ? 1 : 0);
  }
}

TEST(ExprTest, ComparisonWithNullIsFalse) {
  Kernel k;
  const auto e =
      Expr::make_compare(CmpOp::kEq, Expr::make_const(Value::null()), num(1));
  EXPECT_EQ(eval(k, *e).as_int(), 0);
}

TEST(ExprTest, LogicAndOrNot) {
  Kernel k;
  const auto t = [&] { return num(1); };
  const auto f = [&] { return num(0); };
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kAnd, t(), t())).as_int(), 1);
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kAnd, t(), f())).as_int(), 0);
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kOr, f(), t())).as_int(), 1);
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kOr, f(), f())).as_int(), 0);
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kNot, f())).as_int(), 1);
  EXPECT_EQ(eval(k, *Expr::make_logic(LogicOp::kNot, t())).as_int(), 0);
}

TEST(ExprTest, ShortCircuitSkipsRhs) {
  Kernel k;
  // RHS would divide by zero; AND false must not evaluate it.
  auto rhs = Expr::make_arith(ArithOp::kDiv, num(1), num(0));
  auto e = Expr::make_logic(LogicOp::kAnd, num(0), std::move(rhs));
  EXPECT_EQ(eval(k, *e).as_int(), 0);
  auto rhs2 = Expr::make_arith(ArithOp::kDiv, num(1), num(0));
  auto e2 = Expr::make_logic(LogicOp::kOr, num(1), std::move(rhs2));
  EXPECT_EQ(eval(k, *e2).as_int(), 1);
}

TEST(ExprTest, IntegerArithmetic) {
  Kernel k;
  EXPECT_EQ(eval(k, *Expr::make_arith(ArithOp::kAdd, num(2), num(3))).as_int(), 5);
  EXPECT_EQ(eval(k, *Expr::make_arith(ArithOp::kSub, num(2), num(3))).as_int(), -1);
  EXPECT_EQ(eval(k, *Expr::make_arith(ArithOp::kMul, num(4), num(3))).as_int(), 12);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  Kernel k;
  const Value v = eval(k, *Expr::make_arith(ArithOp::kDiv, num(7), num(2)));
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 3.5);
}

TEST(ExprTest, MixedArithmeticPromotesToDouble) {
  Kernel k;
  const Value v = eval(k, *Expr::make_arith(ArithOp::kMul, num(3), dbl(0.5)));
  EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  Kernel k;
  const auto e = Expr::make_arith(ArithOp::kAdd,
                                  Expr::make_const(Value::null()), num(1));
  EXPECT_TRUE(eval(k, *e).is_null());
}

TEST(ExprDeathTest, DivisionByZeroAborts) {
  Kernel k;
  const auto e = Expr::make_arith(ArithOp::kDiv, num(1), num(0));
  EXPECT_DEATH((void)eval(k, *e), "division by zero");
}

TEST(ExprTest, YearExtractsFromDate) {
  Kernel k;
  const auto e = Expr::make_year(num(parse_date("1995-06-17")));
  EXPECT_EQ(eval(k, *e).as_int(), 1995);
}

TEST(ExprTest, LikeFastPaths) {
  Kernel k;
  const auto check = [&](const char* text, const char* pattern) {
    const auto e = Expr::make_like(str(text), pattern);
    return eval(k, *e).as_int() == 1;
  };
  EXPECT_TRUE(check("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_FALSE(check("STANDARD TIN", "PROMO%"));
  EXPECT_TRUE(check("LARGE POLISHED BRASS", "%BRASS"));
  EXPECT_FALSE(check("LARGE POLISHED STEEL", "%BRASS"));
  EXPECT_TRUE(check("dark green ivory", "%green%"));
  EXPECT_FALSE(check("dark red ivory", "%green%"));
}

TEST(ExprTest, LikeGeneralPatterns) {
  Kernel k;
  const auto check = [&](const char* text, const char* pattern) {
    const auto e = Expr::make_like(str(text), pattern);
    return eval(k, *e).as_int() == 1;
  };
  EXPECT_TRUE(check("Customer stuff Complaints here", "%Customer%Complaints%"));
  EXPECT_FALSE(check("Customer praise only", "%Customer%Complaints%"));
  EXPECT_TRUE(check("MEDIUM POLISHED TIN", "MEDIUM POLISHED%"));
  EXPECT_TRUE(check("abc", "a_c"));
  EXPECT_FALSE(check("abbc", "a_c"));
  EXPECT_TRUE(check("anything", "%"));
  EXPECT_TRUE(check("", "%"));
  EXPECT_FALSE(check("", "a%"));
}

TEST(LikeMatchReferenceTest, AgreesWithInstrumentedEvaluator) {
  Kernel k;
  const char* texts[] = {"", "a", "ab", "hello world", "aaab", "xyzzy"};
  const char* patterns[] = {"%", "a%", "%b", "%o w%", "a_a%", "xyz__", "_"};
  for (const char* text : texts) {
    for (const char* pattern : patterns) {
      const auto e = Expr::make_like(str(text), pattern);
      EXPECT_EQ(eval(k, *e).as_int() == 1, like_match(text, pattern))
          << "'" << text << "' LIKE '" << pattern << "'";
    }
  }
}

TEST(ExprTest, InSetAndNegation) {
  Kernel k;
  auto set = std::make_shared<ValueSet>();
  set->insert(Value(std::int64_t{1}));
  set->insert(Value(std::int64_t{3}));
  EXPECT_EQ(eval(k, *Expr::make_in_set(num(1), set, false)).as_int(), 1);
  EXPECT_EQ(eval(k, *Expr::make_in_set(num(2), set, false)).as_int(), 0);
  EXPECT_EQ(eval(k, *Expr::make_in_set(num(2), set, true)).as_int(), 1);
  EXPECT_EQ(eval(k, *Expr::make_in_set(num(3), set, true)).as_int(), 0);
}

TEST(ExprTest, CaseWhenPicksArm) {
  Kernel k;
  auto e = Expr::make_case(num(1), str("then"), str("else"));
  EXPECT_EQ(eval(k, *e).as_string(), "then");
  auto e2 = Expr::make_case(num(0), str("then"), str("else"));
  EXPECT_EQ(eval(k, *e2).as_string(), "else");
}

TEST(ExprTest, CloneIsDeepAndEquivalent) {
  Kernel k;
  auto original = Expr::make_logic(
      LogicOp::kAnd, Expr::make_compare(CmpOp::kGt, Expr::make_column(0), num(5)),
      Expr::make_like(Expr::make_column(1), "PROMO%"));
  auto copy = original->clone();
  const Tuple row = {Value(std::int64_t{6}), Value(std::string("PROMO X"))};
  EXPECT_EQ(eval_expr(k, *original, row).as_int(), 1);
  EXPECT_EQ(eval_expr(k, *copy, row).as_int(), 1);
  // Mutating the copy must not affect the original.
  copy->children[0]->children[1]->constant = Value(std::int64_t{100});
  EXPECT_EQ(eval_expr(k, *original, row).as_int(), 1);
  EXPECT_EQ(eval_expr(k, *copy, row).as_int(), 0);
}

TEST(ExprTest, RemapColumns) {
  Kernel k;
  auto e = Expr::make_compare(CmpOp::kEq, Expr::make_column(0),
                              Expr::make_column(1));
  e->remap_columns({3, 2});
  const Tuple row = {Value(std::int64_t{9}), Value(std::int64_t{9}),
                     Value(std::int64_t{5}), Value(std::int64_t{5})};
  EXPECT_EQ(eval_expr(k, *e, row).as_int(), 1);
  EXPECT_EQ(e->max_column(), 3);
}

TEST(ExprTest, EvalPredicateTruthiness) {
  Kernel k;
  EXPECT_TRUE(eval_predicate(k, *num(1), {}));
  EXPECT_FALSE(eval_predicate(k, *num(0), {}));
  EXPECT_FALSE(eval_predicate(k, *Expr::make_const(Value::null()), {}));
  EXPECT_FALSE(eval_predicate(k, *dbl(0.0), {}));
  EXPECT_TRUE(eval_predicate(k, *dbl(0.5), {}));
}

}  // namespace
}  // namespace stc::db
