// Database facade tests: schema definition, index maintenance on insert,
// and the SQL entry points.
#include "db/database.h"

#include <gtest/gtest.h>

namespace stc::db {
namespace {

Schema people_schema() {
  return Schema({{"id", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"age", ValueType::kInt}});
}

TEST(DatabaseTest, CreateTableUppercasesIdentifiers) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  EXPECT_EQ(t.name, "PEOPLE");
  EXPECT_EQ(t.schema.column(0).name, "ID");
  EXPECT_NE(db.catalog().lookup("PEOPLE"), nullptr);
  EXPECT_EQ(db.catalog().lookup("nope"), nullptr);
}

TEST(DatabaseTest, InsertMaintainsAllIndexes) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  db.create_index("people", "id", IndexKind::kBTree, true);
  db.create_index("people", "age", IndexKind::kHash, false);
  for (std::int64_t i = 0; i < 100; ++i) {
    db.insert(t, {Value(i), Value("p" + std::to_string(i)), Value(i % 10)});
  }
  ASSERT_EQ(t.indexes.size(), 2u);
  EXPECT_EQ(t.indexes[0].index->entry_count(), 100u);
  EXPECT_EQ(t.indexes[1].index->entry_count(), 100u);
  // Probe both.
  RID rid;
  auto by_id = t.indexes[0].index->seek_equal(Value(std::int64_t{42}));
  EXPECT_TRUE(by_id->next(rid));
  int age_hits = 0;
  auto by_age = t.indexes[1].index->seek_equal(Value(std::int64_t{3}));
  while (by_age->next(rid)) ++age_hits;
  EXPECT_EQ(age_hits, 10);
}

TEST(DatabaseTest, IndexCreatedAfterLoadBackfills) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  for (std::int64_t i = 0; i < 50; ++i) {
    db.insert(t, {Value(i), Value("x"), Value(i)});
  }
  db.create_index("people", "id", IndexKind::kBTree, true);
  EXPECT_EQ(t.indexes[0].index->entry_count(), 50u);
}

TEST(DatabaseTest, RunQueryEndToEnd) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  for (std::int64_t i = 0; i < 30; ++i) {
    db.insert(t, {Value(i), Value("p" + std::to_string(i)), Value(20 + i % 5)});
  }
  const QueryResult result = db.run_query(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age ORDER BY age");
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[0][0].as_int(), 20);
  EXPECT_EQ(result.rows[0][1].as_int(), 6);
  EXPECT_EQ(result.schema.column(1).name, "N");
  EXPECT_FALSE(result.plan_text.empty());
}

TEST(DatabaseTest, PlanWithoutExecution) {
  Database db(32);
  db.create_table("people", people_schema());
  const auto plan = db.plan("SELECT id FROM people WHERE id = 1");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->out_schema.size(), 1u);
}

TEST(DatabaseTest, QueriesEmitKernelBlocksOnlyWithSink) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  db.insert(t, {Value(std::int64_t{1}), Value("a"), Value(std::int64_t{9})});
  class Counter : public cfg::TraceSink {
   public:
    void on_block(cfg::BlockId) override { ++events; }
    std::uint64_t events = 0;
  } counter;
  db.kernel().set_sink(&counter);
  db.run_query("SELECT name FROM people WHERE id = 1");
  db.kernel().set_sink(nullptr);
  const std::uint64_t with_sink = counter.events;
  EXPECT_GT(with_sink, 100u);
  db.run_query("SELECT name FROM people WHERE id = 1");
  EXPECT_EQ(counter.events, with_sink);  // sink detached: no more events
}

TEST(DatabaseDeathTest, InsertArityChecked) {
  Database db(32);
  TableInfo& t = db.create_table("people", people_schema());
  EXPECT_DEATH(db.insert(t, {Value(std::int64_t{1})}), "");
}

TEST(DatabaseDeathTest, CreateIndexValidatesNames) {
  Database db(32);
  db.create_table("people", people_schema());
  EXPECT_DEATH(db.create_index("missing", "id", IndexKind::kBTree, true),
               "unknown table");
  EXPECT_DEATH(db.create_index("people", "missing", IndexKind::kBTree, true),
               "unknown column");
}

}  // namespace
}  // namespace stc::db
