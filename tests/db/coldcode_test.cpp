#include "db/coldcode.h"

#include <gtest/gtest.h>

#include "db/tpcd/dbgen.h"
#include "db/tpcd/schema.h"

namespace stc::db::util {
namespace {

TEST(ErrFormatTest, ComposesCodeAndDetail) {
  Kernel k;
  EXPECT_EQ(format_error(k, ErrorCode::kSyntax, "near FROM"),
            "ERROR 1: syntax error -- near FROM");
  EXPECT_EQ(format_error(k, ErrorCode::kInternal, ""),
            "ERROR 6: internal error");
}

TEST(FmtRowTest, PipeSeparatedColumns) {
  Kernel k;
  const Tuple row = {Value(std::int64_t{1}), Value(std::string("x")),
                     Value::null()};
  EXPECT_EQ(format_row(k, row), "1 | x | NULL");
  EXPECT_EQ(format_row(k, {}), "");
}

TEST(FmtMoneyTest, GroupsThousands) {
  Kernel k;
  EXPECT_EQ(format_money(k, 0.0), "$0.00");
  EXPECT_EQ(format_money(k, 1234567.891), "$1,234,567.89");
  EXPECT_EQ(format_money(k, -42.5), "-$42.50");
}

TEST(CfgParseTest, KeyValuePairsWithComments) {
  Kernel k;
  const auto config = parse_config(k,
                                   "buffer_frames = 128\n"
                                   "# a comment line\n"
                                   "scale_factor = 0.1  # trailing\n"
                                   "\n"
                                   "name = postgres\n");
  EXPECT_EQ(config.size(), 3u);
  EXPECT_EQ(config.at("buffer_frames"), "128");
  EXPECT_EQ(config.at("scale_factor"), "0.1");
  EXPECT_EQ(config.at("name"), "postgres");
}

TEST(CfgParseDeathTest, MalformedLineAborts) {
  Kernel k;
  EXPECT_DEATH(parse_config(k, "this is not a pair\n"), "malformed");
}

TEST(Crc32Test, KnownVector) {
  Kernel k;
  const char* text = "123456789";
  EXPECT_EQ(crc32(k, reinterpret_cast<const std::uint8_t*>(text), 9),
            0xcbf43926u);
}

TEST(Crc32Test, EmptyInput) {
  Kernel k;
  EXPECT_EQ(crc32(k, nullptr, 0), 0u);
}

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_unique<Database>(64);
    tpcd::GenConfig config;
    config.scale_factor = 0.0005;
    tpcd::build_database(*db, config, IndexKind::kBTree);
  }
  std::unique_ptr<Database> db;
};

TEST_F(MaintenanceTest, VacuumVisitsEveryTuple) {
  const VacuumStats stats = vacuum_table(*db, "NATION");
  EXPECT_EQ(stats.tuples_seen, 25u);
  EXPECT_GE(stats.pages_visited, 1u);
}

TEST_F(MaintenanceTest, AnalyzeComputesMinMax) {
  const AnalyzeStats stats = analyze_table(*db, "REGION");
  EXPECT_EQ(stats.rows, 5u);
  EXPECT_EQ(stats.min_values[0].as_int(), 0);
  EXPECT_EQ(stats.max_values[0].as_int(), 4);
  EXPECT_EQ(stats.min_values[1].as_string(), "AFRICA");
}

TEST_F(MaintenanceTest, IntegrityCheckPassesOnFreshLoad) {
  const std::uint64_t verified = check_table_integrity(*db, "SUPPLIER");
  // supplier has 2 indexes; every row verified against both.
  const std::uint64_t rows =
      db->catalog().lookup("SUPPLIER")->heap->tuple_count();
  EXPECT_EQ(verified, rows * 2);
}

TEST_F(MaintenanceTest, VacuumUnknownTableAborts) {
  EXPECT_DEATH(vacuum_table(*db, "NO_SUCH_TABLE"), "unknown table");
}

}  // namespace
}  // namespace stc::db::util
