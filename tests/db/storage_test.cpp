#include "db/storage.h"

#include <gtest/gtest.h>

#include <cstring>

namespace stc::db {
namespace {

TEST(PageTest, StartsEmpty) {
  Page page;
  EXPECT_EQ(page.slot_count(), 0u);
  EXPECT_EQ(page.free_offset(), kPageBytes);
  EXPECT_GT(page.free_space(), kPageBytes - 16);
}

TEST(PageTest, InsertAndReadBack) {
  Page page;
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  const std::uint16_t slot = page.insert_record(data, sizeof data);
  EXPECT_EQ(slot, 0u);
  EXPECT_EQ(page.slot_count(), 1u);
  std::uint16_t length = 0;
  const std::uint8_t* read = page.record(slot, length);
  ASSERT_EQ(length, sizeof data);
  EXPECT_EQ(0, std::memcmp(read, data, sizeof data));
}

TEST(PageTest, MultipleRecordsKeepTheirContents) {
  Page page;
  std::vector<std::vector<std::uint8_t>> records;
  for (std::uint8_t i = 0; i < 50; ++i) {
    records.push_back(std::vector<std::uint8_t>(i + 1, i));
    page.insert_record(records.back().data(),
                       static_cast<std::uint16_t>(records.back().size()));
  }
  for (std::uint16_t s = 0; s < 50; ++s) {
    std::uint16_t length = 0;
    const std::uint8_t* data = page.record(s, length);
    ASSERT_EQ(length, records[s].size());
    EXPECT_EQ(0, std::memcmp(data, records[s].data(), length));
  }
}

TEST(PageTest, FreeSpaceDecreasesWithInserts) {
  Page page;
  const std::uint32_t before = page.free_space();
  const std::uint8_t data[100] = {};
  page.insert_record(data, 100);
  EXPECT_EQ(page.free_space(), before - 100 - 4);  // record + slot entry
}

TEST(PageDeathTest, OverfullInsertAborts) {
  Page page;
  std::vector<std::uint8_t> big(kPageBytes, 0);
  // Fill the page almost completely, then overflow it.
  page.insert_record(big.data(), static_cast<std::uint16_t>(page.free_space()));
  EXPECT_DEATH(page.insert_record(big.data(), 64), "does not fit");
}

TEST(PageDeathTest, BadSlotAborts) {
  Page page;
  std::uint16_t length = 0;
  EXPECT_DEATH(page.record(0, length), "slot out of range");
}

TEST(StorageManagerTest, CreateFilesAndAllocatePages) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint32_t f1 = sm.create_file();
  const std::uint32_t f2 = sm.create_file();
  EXPECT_NE(f1, f2);
  EXPECT_EQ(sm.file_page_count(f1), 0u);
  EXPECT_EQ(sm.allocate_page(f1), 0u);
  EXPECT_EQ(sm.allocate_page(f1), 1u);
  EXPECT_EQ(sm.file_page_count(f1), 2u);
  EXPECT_EQ(sm.file_page_count(f2), 0u);
  EXPECT_EQ(sm.stats().pages_allocated, 2u);
}

TEST(StorageManagerTest, WriteThenReadRoundTrip) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint32_t f = sm.create_file();
  sm.allocate_page(f);
  Page page;
  const std::uint8_t data[] = {9, 8, 7};
  page.insert_record(data, 3);
  sm.write_page({f, 0}, page);
  Page read;
  sm.read_page({f, 0}, read);
  EXPECT_EQ(read.slot_count(), 1u);
  std::uint16_t length = 0;
  EXPECT_EQ(0, std::memcmp(read.record(0, length), data, 3));
  EXPECT_EQ(sm.stats().page_reads, 1u);
  EXPECT_EQ(sm.stats().page_writes, 1u);
}

TEST(StorageManagerTest, TruncateDropsPages) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint32_t f = sm.create_file();
  sm.allocate_page(f);
  sm.allocate_page(f);
  sm.truncate_file(f);
  EXPECT_EQ(sm.file_page_count(f), 0u);
}

TEST(StorageManagerTest, SyncVisitsEveryPage) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint32_t f = sm.create_file();
  sm.allocate_page(f);
  sm.allocate_page(f);
  const std::uint64_t writes_before = sm.stats().page_writes;
  sm.sync_file(f);
  EXPECT_EQ(sm.stats().page_writes, writes_before + 2);
}

TEST(StorageManagerDeathTest, OutOfBoundsReadAborts) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint32_t f = sm.create_file();
  Page page;
  EXPECT_DEATH(sm.read_page({f, 0}, page), "out of bounds");
}

TEST(StorageManagerTest, EmitsKernelBlocks) {
  Kernel kernel;
  StorageManager sm(kernel);
  const std::uint64_t before = kernel.exec().blocks_emitted();
  sm.create_file();
  EXPECT_GT(kernel.exec().blocks_emitted(), before);
}

}  // namespace
}  // namespace stc::db
