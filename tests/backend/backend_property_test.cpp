// Property tests for the unified fetch->IPC pipeline: the oracle's counter
// identities hold over random machines and programs, the window bounds are
// never exceeded, the machine always drains, results are deterministic
// under repetition and thread-level concurrency, the three replay engines
// are bit-identical, and the degenerate program families from
// tests/testing/synthetic.h do not wedge the pipeline.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "backend/pipeline.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/oracle.h"

namespace stc::backend {
namespace {

using testing::degenerate_image;
using testing::random_image;
using testing::random_trace;

constexpr sim::CacheGeometry kGeometry{1024, 32, 1};

BackendParams random_params(Rng& rng) {
  BackendParams p;
  p.kind = rng.chance(0.5) ? BackendKind::kOoo : BackendKind::kInOrder;
  p.decode_width = 1 + static_cast<std::uint32_t>(rng.uniform(6));
  p.issue_width = 1 + static_cast<std::uint32_t>(rng.uniform(6));
  p.commit_width = 1 + static_cast<std::uint32_t>(rng.uniform(6));
  p.iq_depth = 1 + static_cast<std::uint32_t>(rng.uniform(24));
  p.rob_depth = p.iq_depth + static_cast<std::uint32_t>(rng.uniform(48));
  p.fetch_buffer_ops = 1 + static_cast<std::uint32_t>(rng.uniform(24));
  p.base_latency = static_cast<std::uint32_t>(rng.uniform(3));
  p.mem_latency = static_cast<std::uint32_t>(rng.uniform(8));
  p.size_shift = 1 + static_cast<std::uint32_t>(rng.uniform(4));
  return p;
}

frontend::FrontEndParams random_frontend(Rng& rng) {
  frontend::FrontEndParams fe;
  if (rng.chance(0.5)) {
    fe.kind = frontend::BpredKind::kGshare;
    fe.prefetch = rng.chance(0.5);
  }
  return fe;
}

CounterSet run_counters(const trace::BlockTrace& trace,
                        const cfg::ProgramImage& image,
                        const cfg::AddressMap& layout,
                        const frontend::FrontEndParams& fe,
                        const BackendParams& bp) {
  sim::ICache cache(kGeometry);
  const Result<BackendResult> r = run_seq3_backend(
      trace, image, layout, sim::FetchParams{}, fe, bp, &cache);
  CounterSet out;
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  if (r.is_ok()) {
    r.value().fetch.export_counters(out);
    r.value().frontend.export_counters(out);
    r.value().backend.export_counters(out);
    cache.stats().export_counters(out);
  }
  return out;
}

TEST(BackendPropertyTest, OracleIdentitiesHoldOnRandomMachines) {
  Rng rng(20260807);
  for (int trial = 0; trial < 30; ++trial) {
    const auto image = random_image(rng, 4);
    const auto trace = random_trace(*image, rng, 300);
    const auto layout = cfg::AddressMap::original(*image);
    const BackendParams bp = random_params(rng);
    const frontend::FrontEndParams fe = random_frontend(rng);
    sim::ICache cache(kGeometry);
    const Result<BackendResult> r = run_seq3_backend(
        trace, *image, layout, sim::FetchParams{}, fe, bp, &cache);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const verify::Report report = verify::check_backend_result(
        r.value(), sim::FetchParams{}, fe, bp,
        verify::trace_instructions(trace, *image));
    EXPECT_TRUE(report.ok()) << "trial " << trial << ": " << report.summary();
  }
}

TEST(BackendPropertyTest, WindowBoundsAreNeverExceeded) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto image = random_image(rng, 3);
    const auto trace = random_trace(*image, rng, 200);
    const auto layout = cfg::AddressMap::original(*image);
    const BackendParams bp = random_params(rng);
    sim::ICache cache(kGeometry);
    const Result<BackendResult> r =
        run_seq3_backend(trace, *image, layout, sim::FetchParams{},
                         frontend::FrontEndParams{}, bp, &cache);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const BackendStats& be = r.value().backend;
    EXPECT_LE(be.iq_peak, bp.iq_depth) << "trial " << trial;
    EXPECT_LE(be.rob_peak, bp.rob_depth) << "trial " << trial;
    // Per-cycle occupancy sums can never exceed bound x cycles either.
    EXPECT_LE(be.iq_occupancy_sum, be.cycles * bp.iq_depth) << "trial " << trial;
    EXPECT_LE(be.rob_occupancy_sum, be.cycles * bp.rob_depth)
        << "trial " << trial;
  }
}

TEST(BackendPropertyTest, DrainLeavesZeroInFlightOps) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto image = random_image(rng, 3);
    const auto trace = random_trace(*image, rng, 250);
    const auto layout = cfg::AddressMap::original(*image);
    const BackendParams bp = random_params(rng);
    sim::ICache cache(kGeometry);
    const Result<BackendResult> r =
        run_seq3_backend(trace, *image, layout, sim::FetchParams{},
                         frontend::FrontEndParams{}, bp, &cache);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const BackendStats& be = r.value().backend;
    // A drained machine retired everything it ever accepted, and every
    // retired op passed through issue.
    EXPECT_EQ(be.retired_ops, be.dispatched_ops) << "trial " << trial;
    EXPECT_EQ(be.retired_ops, be.issued_ops) << "trial " << trial;
    EXPECT_EQ(be.retired_insns,
              verify::trace_instructions(trace, *image))
        << "trial " << trial;
    // The unified clock: fetch and the back end end on the same cycle.
    EXPECT_EQ(be.cycles, r.value().fetch.cycles) << "trial " << trial;
  }
}

TEST(BackendPropertyTest, CommitOrderMatchesDispatchOrder) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const BackendParams bp = random_params(rng);
    BackendStats stats;
    Backend be(bp, &stats);
    std::vector<std::uint64_t> dispatched, committed;
    be.set_commit_observer(
        [&](const BackendOp& o) { committed.push_back(o.addr); });
    std::uint64_t now = 0;
    for (int i = 0; i < 200; ++i) {
      while (!be.can_dispatch()) be.step(now++);
      BackendOp o;
      o.addr = static_cast<std::uint64_t>(i) * 4;
      o.insns = 1 + static_cast<std::uint32_t>(rng.uniform(12));
      o.latency = 1 + static_cast<std::uint32_t>(rng.uniform(7));
      o.dest = static_cast<std::uint8_t>(rng.uniform(sim::kBackendRegs));
      o.src1 = static_cast<std::uint8_t>(rng.uniform(sim::kBackendRegs));
      o.src2 = static_cast<std::uint8_t>(rng.uniform(sim::kBackendRegs));
      ASSERT_TRUE(be.dispatch(o).is_ok());
      dispatched.push_back(o.addr);
    }
    for (; !be.empty() && now < 100000; ++now) be.step(now);
    ASSERT_TRUE(be.empty());
    EXPECT_EQ(committed, dispatched) << "trial " << trial;
  }
}

TEST(BackendPropertyTest, DeterministicAcrossRepeatsAndThreads) {
  Rng rng(17);
  const auto image = random_image(rng, 4);
  const auto trace = random_trace(*image, rng, 400);
  const auto layout = cfg::AddressMap::original(*image);
  const BackendParams bp = random_params(rng);
  const frontend::FrontEndParams fe = random_frontend(rng);

  const CounterSet reference = run_counters(trace, *image, layout, fe, bp);
  const CounterSet repeat = run_counters(trace, *image, layout, fe, bp);
  EXPECT_TRUE(
      verify::check_counters_equal(reference, repeat, "sequential repeat")
          .ok());

  // Concurrent runs on shared read-only inputs (each with a private cache)
  // must reproduce the reference bit for bit — the wakeup logic may not
  // depend on anything but its inputs.
  std::vector<CounterSet> concurrent(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < concurrent.size(); ++t) {
    threads.emplace_back([&, t] {
      concurrent[t] = run_counters(trace, *image, layout, fe, bp);
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < concurrent.size(); ++t) {
    const verify::Report report = verify::check_counters_equal(
        reference, concurrent[t], "concurrent run");
    EXPECT_TRUE(report.ok()) << "thread " << t << ": " << report.summary();
  }
}

TEST(BackendPropertyTest, ReplayEnginesAreBitIdentical) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const auto image = random_image(rng, 4);
    const auto trace = random_trace(*image, rng, 300);
    const auto layout = cfg::AddressMap::original(*image);
    const BackendParams bp = random_params(rng);
    const frontend::FrontEndParams fe = random_frontend(rng);
    const CounterSet reference = run_counters(trace, *image, layout, fe, bp);
    for (const sim::ReplayMode mode :
         {sim::ReplayMode::kBatched, sim::ReplayMode::kCompiled}) {
      const Result<sim::ReplayPlan> plan = sim::build_replay_plan(
          mode, trace, *image, layout, kGeometry.line_bytes, bp.spec());
      ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
      // Compiled plans embed the back-end tables; batched plans recompute.
      EXPECT_EQ(plan.value().backend().valid(),
                mode == sim::ReplayMode::kCompiled);
      sim::ICache cache(kGeometry);
      const Result<BackendResult> r = run_seq3_backend(
          plan.value(), sim::FetchParams{}, fe, bp, &cache);
      ASSERT_TRUE(r.is_ok()) << r.status().to_string();
      CounterSet got;
      r.value().fetch.export_counters(got);
      r.value().frontend.export_counters(got);
      r.value().backend.export_counters(got);
      cache.stats().export_counters(got);
      const verify::Report report = verify::check_counters_equal(
          reference, got, sim::to_string(mode));
      EXPECT_TRUE(report.ok()) << "trial " << trial << " "
                               << sim::to_string(mode) << ": "
                               << report.summary();
    }
  }
}

TEST(BackendPropertyTest, DegenerateFamiliesDoNotWedgeThePipeline) {
  Rng rng(23);
  for (int family = 0; family < testing::kNumDegenerateFamilies; ++family) {
    const auto image = degenerate_image(rng, family);
    trace::BlockTrace trace;
    if (image->num_blocks() > 0) trace = random_trace(*image, rng, 150);
    const auto layout = cfg::AddressMap::original(*image);
    const BackendParams bp = random_params(rng);
    sim::ICache cache(kGeometry);
    const Result<BackendResult> r =
        run_seq3_backend(trace, *image, layout, sim::FetchParams{},
                         frontend::FrontEndParams{}, bp, &cache);
    ASSERT_TRUE(r.is_ok())
        << testing::degenerate_family_name(family) << ": "
        << r.status().to_string();
    const verify::Report report = verify::check_backend_result(
        r.value(), sim::FetchParams{}, frontend::FrontEndParams{}, bp,
        verify::trace_instructions(trace, *image));
    EXPECT_TRUE(report.ok()) << testing::degenerate_family_name(family)
                             << ": " << report.summary();
  }
}

TEST(BackendPropertyTest, EmptyTraceRunsZeroCycles) {
  Rng rng(29);
  const auto image = random_image(rng, 2);
  const auto layout = cfg::AddressMap::original(*image);
  BackendParams bp;
  bp.kind = BackendKind::kOoo;
  sim::ICache cache(kGeometry);
  const Result<BackendResult> r =
      run_seq3_backend(trace::BlockTrace{}, *image, layout,
                       sim::FetchParams{}, frontend::FrontEndParams{}, bp,
                       &cache);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().backend.cycles, 0u);
  EXPECT_EQ(r.value().backend.retired_ops, 0u);
  EXPECT_EQ(r.value().fetch.cycles, 0u);
}

TEST(BackendPropertyTest, SingleEntryWindowStillDrainsDeepCallChains) {
  // iq=1/rob=1 is the most serializing legal machine; a call/return-heavy
  // trace exercises the mem-latency charge on every op.
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("m");
  builder.routine("caller", mod,
                  {{"c0", 4, cfg::BlockKind::kCall},
                   {"c1", 4, cfg::BlockKind::kCall},
                   {"c2", 2, cfg::BlockKind::kReturn}});
  builder.routine("leaf", mod, {{"l0", 6, cfg::BlockKind::kReturn}});
  const auto image = builder.build();
  const auto layout = cfg::AddressMap::original(*image);
  trace::BlockTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.append(0);  // c0 (call)
    trace.append(3);  // l0 (return)
    trace.append(1);  // c1 (call)
    trace.append(3);  // l0 (return)
    trace.append(2);  // c2 (return)
  }
  BackendParams bp;
  bp.kind = BackendKind::kInOrder;
  bp.iq_depth = 1;
  bp.rob_depth = 1;
  bp.decode_width = 1;
  bp.issue_width = 1;
  bp.commit_width = 1;
  sim::ICache cache(kGeometry);
  const Result<BackendResult> r =
      run_seq3_backend(trace, *image, layout, sim::FetchParams{},
                       frontend::FrontEndParams{}, bp, &cache);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const BackendStats& be = r.value().backend;
  EXPECT_EQ(be.retired_ops, trace.num_events());
  EXPECT_EQ(be.retired_insns, verify::trace_instructions(trace, *image));
  EXPECT_EQ(be.iq_peak, 1u);
  EXPECT_EQ(be.rob_peak, 1u);
  // Every op pays the memory charge; the run must be latency-dominated.
  EXPECT_GT(be.cycles, trace.num_events() * 2);
  const verify::Report report = verify::check_backend_result(
      r.value(), sim::FetchParams{}, frontend::FrontEndParams{}, bp,
      verify::trace_instructions(trace, *image));
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace stc::backend
