// Unit tests for the execution back end: parameter parsing and environment
// knobs, the BackendSpec cost model shared with the replay plans, and the
// issue/commit machine's scoreboard semantics (true dependencies stall,
// renamed hazards do not, in-order stops at the queue head, commit is
// strictly program order, the dispatch faultpoint surfaces structurally).
#include "backend/backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "support/faultpoint.h"
#include "support/stats.h"

namespace stc::backend {
namespace {

// Sets one environment variable for the test's scope, restoring the previous
// value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

BackendParams ooo_params() {
  BackendParams p;
  p.kind = BackendKind::kOoo;
  return p;
}

BackendOp op(std::uint8_t dest, std::uint8_t src1, std::uint32_t latency = 1,
             std::uint32_t insns = 1, std::uint8_t src2 = 15) {
  BackendOp o;
  o.addr = 0;
  o.insns = insns;
  o.latency = latency;
  o.dest = dest;
  o.src1 = src1;
  o.src2 = src2;
  return o;
}

// Steps until the machine drains (bounded so a scheduling bug fails the
// test instead of hanging it). Returns the cycle count consumed.
std::uint64_t drain(Backend& be, std::uint64_t start = 0) {
  std::uint64_t now = start;
  for (; !be.empty() && now < start + 10000; ++now) be.step(now);
  EXPECT_TRUE(be.empty()) << "machine failed to drain";
  return now;
}

TEST(BackendParamsTest, ToStringAndParseRoundTrip) {
  for (const BackendKind kind :
       {BackendKind::kOff, BackendKind::kInOrder, BackendKind::kOoo}) {
    BackendKind parsed;
    ASSERT_TRUE(parse_backend(to_string(kind), &parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  BackendKind parsed;
  EXPECT_FALSE(parse_backend("tomasulo", &parsed));
  EXPECT_FALSE(parse_backend("Ooo", &parsed));
  EXPECT_FALSE(parse_backend("", &parsed));
}

TEST(BackendParamsTest, EnvironmentDefaultsAreOff) {
  ScopedEnv b("STC_BACKEND", nullptr);
  ScopedEnv iq("STC_IQ_DEPTH", nullptr);
  ScopedEnv rob("STC_ROB_DEPTH", nullptr);
  const Result<BackendParams> p = BackendParams::try_from_environment();
  ASSERT_TRUE(p.is_ok());
  EXPECT_TRUE(p.value().off());
  EXPECT_EQ(p.value().iq_depth, 16u);
  EXPECT_EQ(p.value().rob_depth, 64u);
}

TEST(BackendParamsTest, EnvironmentOverridesApply) {
  ScopedEnv b("STC_BACKEND", "ooo");
  ScopedEnv iq("STC_IQ_DEPTH", "8");
  ScopedEnv rob("STC_ROB_DEPTH", "24");
  const Result<BackendParams> p = BackendParams::try_from_environment();
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().kind, BackendKind::kOoo);
  EXPECT_EQ(p.value().iq_depth, 8u);
  EXPECT_EQ(p.value().rob_depth, 24u);
}

TEST(BackendParamsTest, EnvironmentGarbageIsAStructuredError) {
  {
    ScopedEnv b("STC_BACKEND", "scoreboard");
    const Result<BackendParams> p = BackendParams::try_from_environment();
    ASSERT_FALSE(p.is_ok());
    EXPECT_NE(p.status().message().find("STC_BACKEND"), std::string::npos);
  }
  ScopedEnv b("STC_BACKEND", "ooo");
  ScopedEnv iq("STC_IQ_DEPTH", "0");
  const Result<BackendParams> p = BackendParams::try_from_environment();
  ASSERT_FALSE(p.is_ok());
  EXPECT_NE(p.status().message().find("STC_IQ_DEPTH"), std::string::npos);
}

TEST(BackendSpecTest, FingerprintSeparatesConfigsAndZeroesWhenDisabled) {
  sim::BackendSpec off;
  EXPECT_EQ(off.fingerprint(), 0u);
  sim::BackendSpec a;
  a.enabled = true;
  sim::BackendSpec b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a, b);
  b.mem_latency += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a, b);
  sim::BackendSpec c = a;
  c.size_shift += 1;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  // A params struct projects into the spec used for plan keying.
  BackendParams p = ooo_params();
  p.mem_latency = a.mem_latency;
  p.base_latency = a.base_latency;
  p.size_shift = a.size_shift;
  EXPECT_EQ(p.spec(), a);
  EXPECT_TRUE(p.spec().enabled);
}

TEST(BackendSpecTest, OpLatencyFollowsCostModelAndClampsToOne) {
  sim::BackendSpec spec;
  spec.enabled = true;
  spec.base_latency = 1;
  spec.mem_latency = 3;
  spec.size_shift = 2;
  // base + insns/4, plus the memory charge only for call/return blocks.
  EXPECT_EQ(sim::backend_op_latency(spec, 1, cfg::BlockKind::kFallThrough),
            1u);
  EXPECT_EQ(sim::backend_op_latency(spec, 8, cfg::BlockKind::kBranch), 3u);
  EXPECT_EQ(sim::backend_op_latency(spec, 8, cfg::BlockKind::kCall), 6u);
  EXPECT_EQ(sim::backend_op_latency(spec, 8, cfg::BlockKind::kReturn), 6u);
  // A zero-base config still never produces a free op.
  spec.base_latency = 0;
  spec.mem_latency = 0;
  spec.size_shift = 20;
  EXPECT_EQ(sim::backend_op_latency(spec, 3, cfg::BlockKind::kFallThrough),
            1u);
}

TEST(BackendSpecTest, OpRegistersDeriveFromLayoutAddress) {
  std::uint8_t dest = 0xff, src1 = 0xff, src2 = 0xff;
  sim::backend_op_regs(/*addr=*/16, /*insns=*/4, &dest, &src1, &src2);
  // word = addr / 4 = 4: dest 4, src1 (4+4)%16, src2 (4/16+7)%16.
  EXPECT_EQ(dest, 4);
  EXPECT_EQ(src1, 8);
  EXPECT_EQ(src2, 7);
  for (std::uint64_t addr = 0; addr < 4096; addr += 52) {
    sim::backend_op_regs(addr, 13, &dest, &src1, &src2);
    EXPECT_LT(dest, sim::kBackendRegs);
    EXPECT_LT(src1, sim::kBackendRegs);
    EXPECT_LT(src2, sim::kBackendRegs);
  }
}

TEST(BackendTest, DispatchRespectsIqAndRobBounds) {
  BackendParams p = ooo_params();
  p.iq_depth = 2;
  p.rob_depth = 3;
  BackendStats stats;
  Backend be(p, &stats);
  ASSERT_TRUE(be.can_dispatch());
  ASSERT_TRUE(be.dispatch(op(1, 2)).is_ok());
  ASSERT_TRUE(be.dispatch(op(2, 3)).is_ok());
  // Two waiting ops fill the issue queue before the ROB fills.
  EXPECT_TRUE(be.iq_full());
  EXPECT_FALSE(be.rob_full());
  EXPECT_FALSE(be.can_dispatch());
  // Issuing frees IQ entries but not ROB entries.
  be.step(0);
  EXPECT_FALSE(be.iq_full());
  ASSERT_TRUE(be.dispatch(op(3, 4)).is_ok());
  EXPECT_TRUE(be.rob_full());
  EXPECT_FALSE(be.can_dispatch());
  EXPECT_EQ(stats.iq_peak, 2u);
  EXPECT_EQ(stats.rob_peak, 3u);
  drain(be, 1);
}

TEST(BackendTest, TrueDependencyBlocksIssueUntilProducerCompletes) {
  BackendStats stats;
  Backend be(ooo_params(), &stats);
  ASSERT_TRUE(be.dispatch(op(/*dest=*/1, /*src1=*/0, /*latency=*/3)).is_ok());
  ASSERT_TRUE(be.dispatch(op(/*dest=*/2, /*src1=*/1)).is_ok());  // RAW on r1
  be.step(0);  // producer issues (done at cycle 3), consumer waits
  EXPECT_EQ(stats.issued_ops, 1u);
  EXPECT_EQ(be.iq_size(), 1u);
  be.step(1);
  be.step(2);
  EXPECT_EQ(stats.issued_ops, 1u);  // still waiting at cycles 1-2
  EXPECT_GE(stats.issue_stall_cycles, 2u);
  be.step(3);  // producer completes and retires; consumer issues
  EXPECT_EQ(stats.issued_ops, 2u);
  EXPECT_EQ(stats.retired_ops, 1u);
  drain(be, 4);
  EXPECT_EQ(stats.retired_ops, 2u);
}

TEST(BackendTest, WriteHazardsNeverStall) {
  BackendStats stats;
  Backend be(ooo_params(), &stats);
  // WAW: both write r1; WAR: the second reads r2 which the third writes.
  ASSERT_TRUE(be.dispatch(op(/*dest=*/1, /*src1=*/0, /*latency=*/5)).is_ok());
  ASSERT_TRUE(be.dispatch(op(/*dest=*/1, /*src1=*/2)).is_ok());
  ASSERT_TRUE(be.dispatch(op(/*dest=*/2, /*src1=*/3)).is_ok());
  be.step(0);
  // Renamed-by-sequence dependence tracking: none of these wait.
  EXPECT_EQ(stats.issued_ops, 3u);
  EXPECT_EQ(be.iq_size(), 0u);
  drain(be, 1);
}

TEST(BackendTest, InOrderStopsAtNotReadyQueueHead) {
  BackendParams p = ooo_params();
  p.kind = BackendKind::kInOrder;
  BackendStats stats;
  Backend be(p, &stats);
  ASSERT_TRUE(be.dispatch(op(/*dest=*/1, /*src1=*/0, /*latency=*/4)).is_ok());
  ASSERT_TRUE(be.dispatch(op(/*dest=*/2, /*src1=*/1)).is_ok());  // blocked
  ASSERT_TRUE(be.dispatch(op(/*dest=*/3, /*src1=*/4)).is_ok());  // ready
  be.step(0);
  EXPECT_EQ(stats.issued_ops, 1u);  // only the producer
  be.step(1);
  // The ready young op must NOT issue around the blocked head in order.
  EXPECT_EQ(stats.issued_ops, 1u);
  EXPECT_EQ(be.iq_size(), 2u);
  const std::uint64_t cycles = drain(be, 2);
  EXPECT_EQ(stats.issued_ops, 3u);
  EXPECT_GT(cycles, 4u);
}

TEST(BackendTest, OooIssuesAroundBlockedHead) {
  BackendStats stats;
  Backend be(ooo_params(), &stats);
  ASSERT_TRUE(be.dispatch(op(/*dest=*/1, /*src1=*/0, /*latency=*/4)).is_ok());
  ASSERT_TRUE(be.dispatch(op(/*dest=*/2, /*src1=*/1)).is_ok());  // blocked
  ASSERT_TRUE(be.dispatch(op(/*dest=*/3, /*src1=*/4)).is_ok());  // ready
  be.step(0);
  EXPECT_EQ(stats.issued_ops, 2u);  // producer + independent young op
  EXPECT_EQ(be.iq_size(), 1u);
  drain(be, 1);
}

TEST(BackendTest, CommitObserverSeesStrictProgramOrder) {
  BackendParams p = ooo_params();
  p.iq_depth = 32;
  p.rob_depth = 32;
  p.commit_width = 2;
  BackendStats stats;
  Backend be(p, &stats);
  std::vector<std::uint64_t> committed;
  be.set_commit_observer(
      [&](const BackendOp& o) { committed.push_back(o.addr); });
  // Independent ops with wildly different latencies: out-of-order
  // completion, in-order retirement.
  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 12; ++i) {
    BackendOp o = op(static_cast<std::uint8_t>(i % 8),
                     static_cast<std::uint8_t>(8 + i % 7),
                     /*latency=*/1 + ((i * 7) % 9));
    o.addr = 1000 + i * 4;
    expected.push_back(o.addr);
    ASSERT_TRUE(be.dispatch(o).is_ok());
  }
  drain(be);
  EXPECT_EQ(committed, expected);
}

TEST(BackendTest, StatsExportOrderIsStable) {
  BackendStats stats;
  stats.cycles = 1;
  CounterSet out;
  stats.export_counters(out);
  const std::vector<std::string> expected = {
      "be_cycles",          "be_retired_ops",
      "be_retired_insns",   "be_dispatched_ops",
      "be_issued_ops",      "be_iq_peak",
      "be_rob_peak",        "be_iq_occupancy",
      "be_rob_occupancy",   "be_frontend_stalls",
      "be_dispatch_stall_iq", "be_dispatch_stall_rob",
      "be_issue_stalls",    "be_empty_cycles"};
  ASSERT_EQ(out.items().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out.items()[i].first, expected[i]) << "counter #" << i;
  }
}

TEST(BackendTest, DispatchFaultpointSurfacesStructurally) {
  fault::reset();
  BackendStats stats;
  Backend be(ooo_params(), &stats);
  fault::arm("backend.dispatch", 1);
  const Status s = be.dispatch(op(1, 2));
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.to_string().find("backend.dispatch"), std::string::npos)
      << s.to_string();
  // The faulted op was never inserted; the machine is still clean.
  EXPECT_EQ(stats.dispatched_ops, 0u);
  EXPECT_TRUE(be.empty());
  // The fault was one-shot: the retry dispatches normally.
  EXPECT_TRUE(be.dispatch(op(1, 2)).is_ok());
  EXPECT_EQ(stats.dispatched_ops, 1u);
  drain(be);
  fault::reset();
}

TEST(BackendTest, RetiredInsnsAccumulateBlockSizes) {
  BackendStats stats;
  Backend be(ooo_params(), &stats);
  ASSERT_TRUE(be.dispatch(op(1, 2, 1, /*insns=*/7)).is_ok());
  ASSERT_TRUE(be.dispatch(op(2, 3, 1, /*insns=*/5)).is_ok());
  drain(be);
  EXPECT_EQ(stats.retired_ops, 2u);
  EXPECT_EQ(stats.retired_insns, 12u);
  EXPECT_EQ(stats.dispatched_ops, 2u);
  EXPECT_EQ(stats.issued_ops, 2u);
}

}  // namespace
}  // namespace stc::backend
