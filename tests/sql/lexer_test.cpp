#include "db/sql/lexer.h"

#include <gtest/gtest.h>

namespace stc::db::sql {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersUpperCased) {
  const auto tokens = tokenize("select L_shipdate FROM lineitem");
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "L_SHIPDATE");
  EXPECT_EQ(tokens[2].text, "FROM");
  EXPECT_EQ(tokens[3].text, "LINEITEM");
}

TEST(LexerTest, NumbersIntAndDouble) {
  const auto tokens = tokenize("42 3.14 0.05");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 0.05);
}

TEST(LexerTest, StringLiteralsPreserveCase) {
  const auto tokens = tokenize("'Brand#23' 'MED BOX'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "Brand#23");
  EXPECT_EQ(tokens[1].text, "MED BOX");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  const auto tokens = tokenize("( ) , . * + - / = <> != < <= > >=");
  const TokenKind expected[] = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
      TokenKind::kDot,    TokenKind::kStar,   TokenKind::kPlus,
      TokenKind::kMinus,  TokenKind::kSlash,  TokenKind::kEq,
      TokenKind::kNe,     TokenKind::kNe,     TokenKind::kLt,
      TokenKind::kLe,     TokenKind::kGt,     TokenKind::kGe,
      TokenKind::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, QualifiedColumnSplitsOnDot) {
  const auto tokens = tokenize("n1.n_name");
  EXPECT_EQ(tokens[0].text, "N1");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].text, "N_NAME");
}

TEST(LexerTest, OffsetsRecorded) {
  const auto tokens = tokenize("a  bb");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerDeathTest, UnterminatedStringAborts) {
  EXPECT_DEATH(tokenize("'oops"), "unterminated");
}

TEST(LexerDeathTest, StrayCharacterAborts) {
  EXPECT_DEATH(tokenize("a ; b"), "unexpected character");
}

}  // namespace
}  // namespace stc::db::sql
