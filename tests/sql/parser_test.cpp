#include "db/sql/parser.h"

#include <gtest/gtest.h>

namespace stc::db::sql {
namespace {

struct ParserTest : ::testing::Test {
  Kernel kernel;
  std::unique_ptr<AstQuery> parse(const std::string& sql) {
    return parse_query(kernel, sql);
  }
};

TEST_F(ParserTest, MinimalSelect) {
  const auto q = parse("SELECT a FROM t");
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->kind, AstExprKind::kColumnRef);
  EXPECT_EQ(q->select[0].expr->name, "A");
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].table, "T");
  EXPECT_EQ(q->from[0].alias, "T");
  EXPECT_EQ(q->where, nullptr);
}

TEST_F(ParserTest, AliasesAndQualifiedColumns) {
  const auto q = parse("SELECT p.x AS out1, q.y FROM t1 p, t2 q");
  EXPECT_EQ(q->select[0].alias, "OUT1");
  EXPECT_EQ(q->select[0].expr->qualifier, "P");
  EXPECT_EQ(q->select[1].expr->qualifier, "Q");
  EXPECT_EQ(q->from[0].alias, "P");
  EXPECT_EQ(q->from[1].alias, "Q");
}

TEST_F(ParserTest, WhereWithPrecedence) {
  const auto q = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // OR at the top, AND below it on the right.
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->kind, AstExprKind::kLogic);
  EXPECT_EQ(q->where->logic, LogicOp::kOr);
  EXPECT_EQ(q->where->children[1]->logic, LogicOp::kAnd);
}

TEST_F(ParserTest, ArithmeticPrecedence) {
  const auto q = parse("SELECT a + b * c FROM t");
  const AstExpr& e = *q->select[0].expr;
  EXPECT_EQ(e.kind, AstExprKind::kArith);
  EXPECT_EQ(e.arith, ArithOp::kAdd);
  EXPECT_EQ(e.children[1]->arith, ArithOp::kMul);
}

TEST_F(ParserTest, ParenthesesOverridePrecedence) {
  const auto q = parse("SELECT (a + b) * c FROM t");
  const AstExpr& e = *q->select[0].expr;
  EXPECT_EQ(e.arith, ArithOp::kMul);
  EXPECT_EQ(e.children[0]->arith, ArithOp::kAdd);
}

TEST_F(ParserTest, DateLiteral) {
  const auto q = parse("SELECT a FROM t WHERE d >= DATE '1994-01-01'");
  const AstExpr& cmp = *q->where;
  EXPECT_EQ(cmp.kind, AstExprKind::kCompare);
  EXPECT_EQ(cmp.cmp, CmpOp::kGe);
  EXPECT_EQ(cmp.children[1]->constant.as_int(), parse_date("1994-01-01"));
}

TEST_F(ParserTest, BetweenExpands) {
  const auto q = parse("SELECT a FROM t WHERE d BETWEEN 1 AND 5");
  EXPECT_EQ(q->where->kind, AstExprKind::kBetween);
  EXPECT_EQ(q->where->children.size(), 3u);
}

TEST_F(ParserTest, LikePattern) {
  const auto q = parse("SELECT a FROM t WHERE name LIKE 'PROMO%'");
  EXPECT_EQ(q->where->kind, AstExprKind::kLike);
  EXPECT_EQ(q->where->pattern, "PROMO%");
}

TEST_F(ParserTest, NotLike) {
  const auto q = parse("SELECT a FROM t WHERE NOT name LIKE 'X%'");
  EXPECT_EQ(q->where->kind, AstExprKind::kLogic);
  EXPECT_EQ(q->where->logic, LogicOp::kNot);
  EXPECT_EQ(q->where->children[0]->kind, AstExprKind::kLike);
}

TEST_F(ParserTest, InListWithValues) {
  const auto q = parse("SELECT a FROM t WHERE x IN (1, 2, 3)");
  EXPECT_EQ(q->where->kind, AstExprKind::kInList);
  EXPECT_EQ(q->where->in_list.size(), 3u);
  EXPECT_FALSE(q->where->negated);
}

TEST_F(ParserTest, NotInSubquery) {
  const auto q =
      parse("SELECT a FROM t WHERE x NOT IN (SELECT y FROM u)");
  EXPECT_EQ(q->where->kind, AstExprKind::kInSubquery);
  EXPECT_TRUE(q->where->negated);
  ASSERT_NE(q->where->subquery, nullptr);
  EXPECT_EQ(q->where->subquery->from[0].table, "U");
}

TEST_F(ParserTest, ScalarSubqueryInComparison) {
  const auto q =
      parse("SELECT a FROM t WHERE v > (SELECT MAX(v) FROM t)");
  EXPECT_EQ(q->where->children[1]->kind, AstExprKind::kScalarSubquery);
}

TEST_F(ParserTest, DerivedTable) {
  const auto q =
      parse("SELECT mpk FROM (SELECT k AS mpk FROM u GROUP BY k) m");
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].alias, "M");
  ASSERT_NE(q->from[0].subquery, nullptr);
  EXPECT_EQ(q->from[0].subquery->group_by.size(), 1u);
}

TEST_F(ParserTest, Aggregates) {
  const auto q = parse(
      "SELECT SUM(a), COUNT(*), AVG(b), MIN(c), MAX(d) FROM t GROUP BY g");
  EXPECT_EQ(q->select[0].expr->agg, AggOp::kSum);
  EXPECT_TRUE(q->select[1].expr->agg_star);
  EXPECT_EQ(q->select[2].expr->agg, AggOp::kAvg);
  EXPECT_EQ(q->select[3].expr->agg, AggOp::kMin);
  EXPECT_EQ(q->select[4].expr->agg, AggOp::kMax);
}

TEST_F(ParserTest, YearAndCasewhenFunctions) {
  const auto q = parse(
      "SELECT YEAR(d), CASEWHEN(a = 1, x, y) FROM t");
  EXPECT_EQ(q->select[0].expr->kind, AstExprKind::kYear);
  EXPECT_EQ(q->select[1].expr->kind, AstExprKind::kCaseWhen);
  EXPECT_EQ(q->select[1].expr->children.size(), 3u);
}

TEST_F(ParserTest, OrderByPositionsAndNames) {
  const auto q = parse(
      "SELECT a, b FROM t ORDER BY 1 DESC, b ASC, a");
  ASSERT_EQ(q->order_by.size(), 3u);
  EXPECT_EQ(q->order_by[0].position, 1);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->order_by[1].expr->name, "B");
  EXPECT_FALSE(q->order_by[1].descending);
  EXPECT_FALSE(q->order_by[2].descending);
}

TEST_F(ParserTest, GroupByAndLimit) {
  const auto q = parse("SELECT g, COUNT(*) FROM t GROUP BY g LIMIT 10");
  EXPECT_EQ(q->group_by.size(), 1u);
  ASSERT_TRUE(q->limit.has_value());
  EXPECT_EQ(*q->limit, 10u);
}

TEST_F(ParserTest, UnaryMinus) {
  const auto q = parse("SELECT -a FROM t");
  EXPECT_EQ(q->select[0].expr->kind, AstExprKind::kNegate);
}

TEST_F(ParserTest, EmitsParserKernelBlocks) {
  const std::uint64_t before = kernel.exec().blocks_emitted();
  parse("SELECT a FROM t WHERE b = 1");
  EXPECT_GT(kernel.exec().blocks_emitted(), before + 10);
}

TEST_F(ParserTest, SyntaxErrorAborts) {
  EXPECT_DEATH(parse("SELECT FROM"), "");
  EXPECT_DEATH(parse("SELECT a"), "expected keyword");
  EXPECT_DEATH(parse("SELECT a FROM t WHERE"), "");
}

}  // namespace
}  // namespace stc::db::sql
