// Planner tests: index selection, pushdown, join methods, subquery folding,
// aggregation — checked via plan shapes and (mostly) via executed results
// compared against hand-computed answers on a small schema.
#include "db/sql/planner.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/sql/parser.h"

namespace stc::db {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_unique<Database>(64);
    TableInfo& t = db->create_table(
        "emp", Schema({{"eid", ValueType::kInt},
                       {"dept", ValueType::kInt},
                       {"salary", ValueType::kDouble},
                       {"name", ValueType::kString}}));
    for (std::int64_t i = 0; i < 30; ++i) {
      db->insert(t, {Value(i), Value(i % 3), Value(1000.0 + 10 * i),
                     Value("emp-" + std::to_string(i))});
    }
    TableInfo& d = db->create_table(
        "dept", Schema({{"did", ValueType::kInt}, {"dname", ValueType::kString}}));
    for (std::int64_t i = 0; i < 3; ++i) {
      db->insert(d, {Value(i), Value("dept-" + std::to_string(i))});
    }
    db->create_index("emp", "eid", IndexKind::kBTree, true);
    db->create_index("emp", "dept", IndexKind::kBTree, false);
    db->create_index("dept", "did", IndexKind::kBTree, true);
  }

  std::unique_ptr<PlanNode> plan(const std::string& sql,
                                 sql::PlannerOptions options = {}) {
    return db->plan(sql, options);
  }
  QueryResult run(const std::string& sql, sql::PlannerOptions options = {}) {
    return db->run_query(sql, options);
  }

  std::unique_ptr<Database> db;
};

bool plan_contains(const PlanNode& node, PlanKind kind) {
  if (node.kind == kind) return true;
  for (const auto& child : node.children) {
    if (plan_contains(*child, kind)) return true;
  }
  return false;
}

TEST_F(PlannerTest, EqualityOnUniqueIndexBecomesIndexScan) {
  const auto p = plan("SELECT name FROM emp WHERE eid = 7");
  EXPECT_TRUE(plan_contains(*p, PlanKind::kIndexScan));
  EXPECT_FALSE(plan_contains(*p, PlanKind::kSeqScan));
  const auto result = run("SELECT name FROM emp WHERE eid = 7");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_string(), "emp-7");
}

TEST_F(PlannerTest, RangePredicateUsesBtreeBounds) {
  const auto p = plan("SELECT eid FROM emp WHERE eid >= 10 AND eid < 15");
  EXPECT_TRUE(plan_contains(*p, PlanKind::kIndexScan));
  const auto result = run("SELECT eid FROM emp WHERE eid >= 10 AND eid < 15");
  EXPECT_EQ(result.rows.size(), 5u);
}

TEST_F(PlannerTest, NonIndexedPredicateFallsBackToSeqScan) {
  const auto p = plan("SELECT eid FROM emp WHERE salary > 1200.0");
  EXPECT_TRUE(plan_contains(*p, PlanKind::kSeqScan));
  const auto result = run("SELECT eid FROM emp WHERE salary > 1200.0");
  EXPECT_EQ(result.rows.size(), 9u);  // salaries 1210..1290
}

TEST_F(PlannerTest, DisablingIndexesForcesSeqScan) {
  sql::PlannerOptions options;
  options.use_indexes = false;
  const auto p = plan("SELECT name FROM emp WHERE eid = 7", options);
  EXPECT_TRUE(plan_contains(*p, PlanKind::kSeqScan));
  EXPECT_FALSE(plan_contains(*p, PlanKind::kIndexScan));
  EXPECT_EQ(run("SELECT name FROM emp WHERE eid = 7", options).rows.size(), 1u);
}

TEST_F(PlannerTest, ResidualQualKeptAfterIndexSelection) {
  const auto result =
      run("SELECT eid FROM emp WHERE eid >= 10 AND eid < 20 AND dept = 1");
  // eids 10..19 with eid % 3 == 1: 10, 13, 16, 19.
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST_F(PlannerTest, JoinProducesCorrectRows) {
  const auto result = run(
      "SELECT name, dname FROM emp, dept WHERE dept = did AND eid < 6");
  EXPECT_EQ(result.rows.size(), 6u);
  for (const Tuple& row : result.rows) {
    // emp-i belongs to dept-(i%3).
    const std::string& name = row[0].as_string();
    const std::string& dname = row[1].as_string();
    const int i = std::stoi(name.substr(4));
    EXPECT_EQ(dname, "dept-" + std::to_string(i % 3));
  }
}

TEST_F(PlannerTest, JoinStrategyOptionsAllAgree) {
  const char* sql =
      "SELECT eid, dname FROM emp, dept WHERE dept = did ORDER BY eid";
  sql::PlannerOptions hash;
  hash.join_strategy = sql::PlannerOptions::JoinStrategy::kHash;
  sql::PlannerOptions merge;
  merge.join_strategy = sql::PlannerOptions::JoinStrategy::kMerge;
  sql::PlannerOptions nl;
  nl.join_strategy = sql::PlannerOptions::JoinStrategy::kNestedLoop;
  const auto a = run(sql, hash);
  const auto b = run(sql, merge);
  const auto c = run(sql, nl);
  const auto d = run(sql);  // auto
  ASSERT_EQ(a.rows.size(), 30u);
  ASSERT_EQ(b.rows.size(), 30u);
  ASSERT_EQ(c.rows.size(), 30u);
  ASSERT_EQ(d.rows.size(), 30u);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i][0].compare(b.rows[i][0]), 0);
    EXPECT_EQ(a.rows[i][1].compare(b.rows[i][1]), 0);
    EXPECT_EQ(a.rows[i][0].compare(c.rows[i][0]), 0);
    EXPECT_EQ(a.rows[i][0].compare(d.rows[i][0]), 0);
  }
}

TEST_F(PlannerTest, JoinStrategyShapesDiffer) {
  const char* sql = "SELECT eid FROM emp, dept WHERE dept = did";
  sql::PlannerOptions hash;
  hash.join_strategy = sql::PlannerOptions::JoinStrategy::kHash;
  EXPECT_TRUE(plan_contains(*plan(sql, hash), PlanKind::kHashJoin));
  sql::PlannerOptions merge;
  merge.join_strategy = sql::PlannerOptions::JoinStrategy::kMerge;
  EXPECT_TRUE(plan_contains(*plan(sql, merge), PlanKind::kMergeJoin));
  sql::PlannerOptions nl;
  nl.join_strategy = sql::PlannerOptions::JoinStrategy::kNestedLoop;
  EXPECT_TRUE(plan_contains(*plan(sql, nl), PlanKind::kNLJoin));
}

TEST_F(PlannerTest, GroupByWithAggregates) {
  const auto result = run(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, MIN(eid) AS lo "
      "FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(result.rows.size(), 3u);
  for (std::int64_t g = 0; g < 3; ++g) {
    const Tuple& row = result.rows[static_cast<std::size_t>(g)];
    EXPECT_EQ(row[0].as_int(), g);
    EXPECT_EQ(row[1].as_int(), 10);
    EXPECT_EQ(row[3].as_int(), g);  // min eid in dept g
  }
}

TEST_F(PlannerTest, ExpressionOverAggregates) {
  const auto result =
      run("SELECT SUM(salary) / COUNT(*) AS avg1, AVG(salary) AS avg2 FROM emp");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].as_double(),
                   result.rows[0][1].as_double());
}

TEST_F(PlannerTest, GrandAggregateWithoutGroupBy) {
  const auto result = run("SELECT COUNT(*) AS n FROM emp WHERE dept = 0");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 10);
}

TEST_F(PlannerTest, ScalarSubqueryFoldedToConstant) {
  const auto result = run(
      "SELECT eid FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 29);
}

TEST_F(PlannerTest, InSubqueryFoldedToSet) {
  const auto result = run(
      "SELECT eid FROM emp WHERE dept IN (SELECT did FROM dept WHERE did <> 1)"
      " ORDER BY eid");
  EXPECT_EQ(result.rows.size(), 20u);
}

TEST_F(PlannerTest, NotInSubquery) {
  const auto result = run(
      "SELECT eid FROM emp WHERE dept NOT IN (SELECT did FROM dept "
      "WHERE did = 0)");
  EXPECT_EQ(result.rows.size(), 20u);
}

TEST_F(PlannerTest, DerivedTableWithJoin) {
  const auto result = run(
      "SELECT dname, total FROM dept, "
      "(SELECT dept AS dkey, SUM(salary) AS total FROM emp GROUP BY dept) s "
      "WHERE did = dkey ORDER BY dname");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].as_string(), "dept-0");
  // dept-0 salaries: 1000 + 10*(0,3,...,27) = 10*(sum) + 10000.
  double expected = 0;
  for (int i = 0; i < 30; i += 3) expected += 1000.0 + 10 * i;
  EXPECT_DOUBLE_EQ(result.rows[0][1].as_double(), expected);
}

TEST_F(PlannerTest, OrderByAliasAndPosition) {
  const auto by_alias = run(
      "SELECT eid AS k, salary FROM emp ORDER BY k DESC LIMIT 3");
  ASSERT_EQ(by_alias.rows.size(), 3u);
  EXPECT_EQ(by_alias.rows[0][0].as_int(), 29);
  const auto by_pos =
      run("SELECT eid, salary FROM emp ORDER BY 1 DESC LIMIT 3");
  EXPECT_EQ(by_pos.rows[0][0].as_int(), 29);
}

TEST_F(PlannerTest, LimitAppliedAfterSort) {
  const auto result =
      run("SELECT eid FROM emp ORDER BY eid DESC LIMIT 5");
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[0][0].as_int(), 29);
  EXPECT_EQ(result.rows[4][0].as_int(), 25);
}

TEST_F(PlannerTest, BetweenBecomesIndexRange) {
  const auto result =
      run("SELECT eid FROM emp WHERE eid BETWEEN 3 AND 6 ORDER BY eid");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0][0].as_int(), 3);
  EXPECT_EQ(result.rows[3][0].as_int(), 6);
}

TEST_F(PlannerTest, OutputSchemaUsesAliases) {
  const auto result = run("SELECT eid AS employee, salary FROM emp LIMIT 1");
  ASSERT_EQ(result.schema.size(), 2u);
  EXPECT_EQ(result.schema.column(0).name, "EMPLOYEE");
  EXPECT_EQ(result.schema.column(1).name, "SALARY");
}

TEST_F(PlannerTest, ExplainMentionsChosenOperators) {
  const auto p = plan("SELECT name FROM emp WHERE eid = 3");
  const std::string text = p->explain();
  EXPECT_NE(text.find("IndexScan"), std::string::npos);
  EXPECT_NE(text.find("Project"), std::string::npos);
}

TEST_F(PlannerTest, CrossJoinFallsBackToNestedLoop) {
  const auto result = run("SELECT eid, did FROM emp, dept WHERE eid < 2");
  EXPECT_EQ(result.rows.size(), 6u);  // 2 emps x 3 depts
}

TEST_F(PlannerTest, SelfJoinWithAliases) {
  const auto result = run(
      "SELECT a.eid, b.eid FROM emp a, emp b "
      "WHERE a.dept = b.dept AND a.eid = 0 AND b.eid < 9");
  // dept 0 members below 9: 0, 3, 6.
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(PlannerTest, UnknownTableAborts) {
  EXPECT_DEATH(run("SELECT x FROM missing"), "unknown table");
}

TEST_F(PlannerTest, UnknownColumnAborts) {
  EXPECT_DEATH(run("SELECT nope FROM emp"), "unknown column");
}

}  // namespace
}  // namespace stc::db
