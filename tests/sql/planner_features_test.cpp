// End-to-end SQL feature tests against hand-computed answers: expression
// functions, IN lists, OR predicates, derived tables, subquery edge cases.
#include <gtest/gtest.h>

#include "db/database.h"

namespace stc::db {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_unique<Database>(64);
    TableInfo& t = db->create_table(
        "sales", Schema({{"id", ValueType::kInt},
                         {"region", ValueType::kString},
                         {"amount", ValueType::kDouble},
                         {"day", ValueType::kInt},
                         {"tag", ValueType::kString}}));
    // 24 rows: regions cycle N/S/E/W, days span 1995-1996, amounts = 10*id.
    const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
    for (std::int64_t i = 0; i < 24; ++i) {
      const int year = i < 12 ? 1995 : 1996;
      db->insert(t, {Value(i), Value(std::string(regions[i % 4])),
                     Value(10.0 * static_cast<double>(i)),
                     Value(date_from_ymd(year, 1 + static_cast<int>(i % 12), 15)),
                     Value(std::string(i % 3 == 0 ? "PROMO sale" : "plain"))});
    }
    db->create_index("sales", "id", IndexKind::kBTree, true);
  }
  QueryResult run(const std::string& sql) { return db->run_query(sql); }
  std::unique_ptr<Database> db;
};

TEST_F(SqlFeaturesTest, YearFunctionGroups) {
  const auto r = run(
      "SELECT YEAR(day) AS y, COUNT(*) AS n FROM sales GROUP BY y ORDER BY y");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_int(), 1995);
  EXPECT_EQ(r.rows[0][1].as_int(), 12);
  EXPECT_EQ(r.rows[1][0].as_int(), 1996);
}

TEST_F(SqlFeaturesTest, CaseWhenInsideAggregate) {
  const auto r = run(
      "SELECT SUM(CASEWHEN(region = 'NORTH', amount, 0.0)) AS north, "
      "SUM(amount) AS total FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  // NORTH rows: ids 0,4,8,12,16,20 -> amounts 0+40+80+120+160+200 = 600.
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_double(), 600.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), 2760.0);  // 10 * (0+..+23)
}

TEST_F(SqlFeaturesTest, LikePrefixFilter) {
  const auto r = run("SELECT id FROM sales WHERE tag LIKE 'PROMO%'");
  EXPECT_EQ(r.rows.size(), 8u);  // ids divisible by 3
}

TEST_F(SqlFeaturesTest, InListFilter) {
  const auto r = run(
      "SELECT id FROM sales WHERE region IN ('EAST', 'WEST') AND id < 8 "
      "ORDER BY id");
  // ids 2,3,6,7.
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2);
  EXPECT_EQ(r.rows[3][0].as_int(), 7);
}

TEST_F(SqlFeaturesTest, NotInListFilter) {
  const auto r = run(
      "SELECT COUNT(*) AS n FROM sales WHERE region NOT IN ('NORTH')");
  EXPECT_EQ(r.rows[0][0].as_int(), 18);
}

TEST_F(SqlFeaturesTest, OrPredicateNotPushedAsIndexBound) {
  const auto r = run(
      "SELECT id FROM sales WHERE id = 3 OR id = 17 ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_int(), 3);
  EXPECT_EQ(r.rows[1][0].as_int(), 17);
}

TEST_F(SqlFeaturesTest, BetweenOnDates) {
  const auto r = run(
      "SELECT COUNT(*) AS n FROM sales WHERE day BETWEEN DATE '1995-01-01' "
      "AND DATE '1995-12-31'");
  EXPECT_EQ(r.rows[0][0].as_int(), 12);
}

TEST_F(SqlFeaturesTest, DerivedTableAggregatedTwice) {
  const auto r = run(
      "SELECT COUNT(*) AS regions, SUM(total) AS grand FROM "
      "(SELECT region AS rg, SUM(amount) AS total FROM sales GROUP BY region) "
      "x");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), 2760.0);
}

TEST_F(SqlFeaturesTest, ScalarSubqueryOverEmptyInputIsNull) {
  // MAX over an empty set folds to NULL; comparisons with NULL are false.
  const auto r = run(
      "SELECT COUNT(*) AS n FROM sales WHERE amount > "
      "(SELECT MAX(amount) FROM sales WHERE id > 1000)");
  EXPECT_EQ(r.rows[0][0].as_int(), 0);
}

TEST_F(SqlFeaturesTest, NotInEmptySubqueryKeepsEverything) {
  const auto r = run(
      "SELECT COUNT(*) AS n FROM sales WHERE id NOT IN "
      "(SELECT id FROM sales WHERE id > 1000)");
  EXPECT_EQ(r.rows[0][0].as_int(), 24);
}

TEST_F(SqlFeaturesTest, ArithmeticInProjectionAndOrdering) {
  const auto r = run(
      "SELECT id, amount * 2 - 5 AS adjusted FROM sales "
      "WHERE id >= 20 ORDER BY adjusted DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_int(), 23);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), 455.0);
}

TEST_F(SqlFeaturesTest, NegativeLiteralsAndUnaryMinus) {
  const auto r = run("SELECT -amount AS neg FROM sales WHERE id = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_double(), -50.0);
}

TEST_F(SqlFeaturesTest, MultipleGroupingColumns) {
  const auto r = run(
      "SELECT YEAR(day) AS y, region, COUNT(*) AS n FROM sales "
      "GROUP BY y, region ORDER BY y, region");
  EXPECT_EQ(r.rows.size(), 8u);  // 2 years x 4 regions
  for (const Tuple& row : r.rows) EXPECT_EQ(row[2].as_int(), 3);
}

TEST_F(SqlFeaturesTest, GroupByQualifiedColumnInJoin) {
  TableInfo& meta = db->create_table(
      "region_meta",
      Schema({{"rname", ValueType::kString}, {"zone", ValueType::kInt}}));
  db->insert(meta, {Value(std::string("NORTH")), Value(std::int64_t{1})});
  db->insert(meta, {Value(std::string("SOUTH")), Value(std::int64_t{1})});
  db->insert(meta, {Value(std::string("EAST")), Value(std::int64_t{2})});
  db->insert(meta, {Value(std::string("WEST")), Value(std::int64_t{2})});
  const auto r = run(
      "SELECT zone, SUM(amount) AS total FROM sales, region_meta "
      "WHERE region = rname GROUP BY zone ORDER BY zone");
  ASSERT_EQ(r.rows.size(), 2u);
  // Zone 1 = NORTH+SOUTH ids {0,1,4,5,...}: amounts sum.
  const double total = r.rows[0][1].as_double() + r.rows[1][1].as_double();
  EXPECT_DOUBLE_EQ(total, 2760.0);
}

TEST_F(SqlFeaturesTest, HavingFiltersGroups) {
  const auto r = run(
      "SELECT region, SUM(amount) AS total FROM sales "
      "GROUP BY region HAVING SUM(amount) > 690.0 ORDER BY region");
  // Totals: NORTH 600, SOUTH 660, EAST 720, WEST 780.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_string(), "EAST");
  EXPECT_EQ(r.rows[1][0].as_string(), "WEST");
}

TEST_F(SqlFeaturesTest, HavingOnGroupKeyAndAlias) {
  const auto r = run(
      "SELECT YEAR(day) AS y, COUNT(*) AS n FROM sales "
      "GROUP BY y HAVING y = 1996");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 1996);
  EXPECT_EQ(r.rows[0][1].as_int(), 12);
}

TEST_F(SqlFeaturesTest, HavingWithScalarSubqueryThreshold) {
  // Q11's natural form: HAVING SUM(...) > (scalar subquery).
  const auto r = run(
      "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
      "HAVING SUM(amount) > (SELECT SUM(amount) * 0.26 FROM sales) "
      "ORDER BY total DESC");
  // Threshold = 2760 * 0.26 = 717.6 -> WEST (780), EAST (720).
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_string(), "WEST");
}

TEST_F(SqlFeaturesTest, HavingAggregateNotInSelect) {
  const auto r = run(
      "SELECT region FROM sales GROUP BY region HAVING MIN(id) >= 2");
  // MIN ids: NORTH 0, SOUTH 1, EAST 2, WEST 3.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlFeaturesTest, GroupByComputedExpressionDirectly) {
  const auto r = run(
      "SELECT YEAR(day) AS y, SUM(amount) AS total FROM sales "
      "GROUP BY YEAR(day) ORDER BY y");
  ASSERT_EQ(r.rows.size(), 2u);
  // 1995: ids 0..11 -> 10*(0+..+11) = 660; 1996: 2100.
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), 660.0);
  EXPECT_DOUBLE_EQ(r.rows[1][1].as_double(), 2100.0);
}

}  // namespace
}  // namespace stc::db
