#include "sim/trace_cache.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::sim {
namespace {

using cfg::BlockKind;

// Hot loop body: A(4, branch) -> B(4, branch far away) -> back to A.
struct Fixture {
  Fixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    r = b.routine("f", m,
                  {{"A", 4, BlockKind::kBranch},
                   {"filler", 32, BlockKind::kBranch},
                   {"B", 4, BlockKind::kBranch},
                   {"C", 4, BlockKind::kReturn}});
    image = b.build();
    layout = cfg::AddressMap::original(*image);
    A = image->block_id(r, "A");
    B = image->block_id(r, "B");
    C = image->block_id(r, "C");
  }
  std::unique_ptr<cfg::ProgramImage> image;
  cfg::AddressMap layout;
  cfg::RoutineId r = 0;
  cfg::BlockId A = 0, B = 0, C = 0;
};

trace::BlockTrace loop_trace(const Fixture& f, int iterations) {
  trace::BlockTrace t;
  for (int i = 0; i < iterations; ++i) {
    t.append(f.A);
    t.append(f.B);
  }
  return t;
}

TEST(TraceCacheTest, FillThenHitOnRepeatedPath) {
  Fixture f;
  const auto t = loop_trace(f, 50);
  FetchParams params;
  params.perfect_icache = true;
  TraceCacheParams tc;
  tc.entries = 16;
  const FetchResult result =
      run_trace_cache(t, *f.image, f.layout, params, tc, nullptr);
  EXPECT_GT(result.tc_hits, 0u);
  EXPECT_GT(result.tc_misses, 0u);
  // After warmup, the A->B trace (8 insns spanning a taken branch) is
  // supplied in one cycle; SEQ.3 alone needs two cycles per iteration.
  const FetchResult seq = run_seq3(t, *f.image, f.layout, params, nullptr);
  EXPECT_GT(result.ipc(), seq.ipc());
}

TEST(TraceCacheTest, TraceSpansTakenBranches) {
  Fixture f;
  const auto t = loop_trace(f, 50);
  FetchParams params;
  params.perfect_icache = true;
  TraceCacheParams tc;
  const FetchResult result =
      run_trace_cache(t, *f.image, f.layout, params, tc, nullptr);
  // Steady state: one fetch per iteration (8 insns incl. the taken branch)
  // instead of two.
  EXPECT_GT(result.tc_hit_ratio(), 0.5);
}

TEST(TraceCacheTest, PathMismatchIsAMiss) {
  Fixture f;
  // Alternate A->B and A->C so the stored trace for A's address keeps
  // mismatching the actual path half the time.
  trace::BlockTrace t;
  for (int i = 0; i < 40; ++i) {
    t.append(f.A);
    t.append(i % 2 == 0 ? f.B : f.C);
  }
  FetchParams params;
  params.perfect_icache = true;
  TraceCacheParams tc;
  const FetchResult result =
      run_trace_cache(t, *f.image, f.layout, params, tc, nullptr);
  // The A-indexed entry keeps flipping between the two paths; perfect path
  // comparison at probe time forces a substantial miss rate (a steady
  // workload like loop_trace reaches ~100% hits instead).
  EXPECT_LT(result.tc_hit_ratio(), 0.7);
  EXPECT_GT(result.tc_misses, 10u);
}

TEST(TraceCacheTest, DirectMappedEntriesConflict) {
  Fixture f;
  const auto t = loop_trace(f, 50);
  FetchParams params;
  params.perfect_icache = true;
  TraceCacheParams tiny;
  tiny.entries = 1;  // A- and B-started traces fight over one entry
  TraceCacheParams big;
  big.entries = 64;
  const FetchResult small_result =
      run_trace_cache(t, *f.image, f.layout, params, tiny, nullptr);
  const FetchResult big_result =
      run_trace_cache(t, *f.image, f.layout, params, big, nullptr);
  EXPECT_LE(small_result.tc_hits, big_result.tc_hits);
}

TEST(TraceCacheTest, MissPathChargesIcachePenalty) {
  Fixture f;
  trace::BlockTrace t;
  t.append(f.A);
  FetchParams params;
  params.miss_penalty = 5;
  TraceCacheParams tc;
  ICache cache({1024, 64, 1});
  const FetchResult result =
      run_trace_cache(t, *f.image, f.layout, params, tc, &cache);
  EXPECT_EQ(result.tc_misses, 1u);
  EXPECT_EQ(result.cycles, 6u);  // 1 fetch + 5 penalty
}

TEST(TraceCacheTest, HitSuppliesWholeTraceInOneCycle) {
  Fixture f;
  const auto t = loop_trace(f, 3);
  FetchParams params;
  params.perfect_icache = true;
  TraceCacheParams tc;
  const FetchResult result =
      run_trace_cache(t, *f.image, f.layout, params, tc, nullptr);
  // 3 iterations x 8 insns = 24 instructions total.
  EXPECT_EQ(result.instructions, 24u);
  EXPECT_EQ(result.cycles, result.fetch_requests);
}

TEST(TraceCacheUnitTest, ProbeChecksTagAndPath) {
  Fixture f;
  TraceCache tc(TraceCacheParams{16, 16, 3});
  trace::BlockTrace t;
  t.append(f.A);
  t.append(f.B);
  FetchPipe pipe(t, *f.image, f.layout);
  // Nothing stored yet.
  EXPECT_EQ(tc.probe(pipe.addr(), pipe), 0u);
  // Fill a trace for address of A covering A then B.
  tc.begin_fill(pipe.addr());
  FetchPipe::Insn insn;
  for (std::uint32_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(pipe.peek(k, insn));
    tc.fill_push(insn);
  }
  EXPECT_TRUE(tc.fill_active());  // 8 insns / 2 branches: not yet complete
  // Push more to reach the 3-branch limit using the C tail.
  trace::BlockTrace t2;
  t2.append(f.A);
  t2.append(f.B);
  t2.append(f.C);
  FetchPipe pipe2(t2, *f.image, f.layout);
  // Existing fill continues; feed C's instructions (4 more, third branch).
  for (std::uint32_t k = 8; k < 12; ++k) {
    ASSERT_TRUE(pipe2.peek(k, insn));
    tc.fill_push(insn);
  }
  EXPECT_FALSE(tc.fill_active());
  EXPECT_EQ(tc.stored_traces(), 1u);
  // Probe with the matching path: 12-instruction hit.
  EXPECT_EQ(tc.probe(pipe2.addr(), pipe2), 12u);
  // Probe with a mismatching path (A -> C): miss.
  trace::BlockTrace t3;
  t3.append(f.A);
  t3.append(f.C);
  FetchPipe pipe3(t3, *f.image, f.layout);
  EXPECT_EQ(tc.probe(pipe3.addr(), pipe3), 0u);
}

TEST(TraceCacheUnitTest, FillStopsAtWidthLimit) {
  Fixture f;
  TraceCache tc(TraceCacheParams{16, 8, 3});
  tc.begin_fill(0);
  FetchPipe::Insn insn;
  insn.is_branch = false;
  for (int i = 0; i < 8; ++i) {
    insn.addr = static_cast<std::uint64_t>(i) * 4;
    tc.fill_push(insn);
  }
  EXPECT_FALSE(tc.fill_active());
  EXPECT_EQ(tc.stored_traces(), 1u);
}

}  // namespace
}  // namespace stc::sim
