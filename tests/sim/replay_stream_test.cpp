// Streaming + SIMD replay: the 8-wide span kernels must match the scalar
// ones bit for bit on every span length (vector body and tail alike), spans
// must compose through the carried state exactly like one flat pass, and the
// streamed entry points over an on-disk trace must reproduce the in-memory
// replay counters. The plan-cache tests cover the STC_PLAN_CACHE_DIR disk
// layer: round-trip, silent rebuild of a corrupt file, and key isolation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/layouts.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "trace/block_trace.h"
#include "trace/trace_io.h"

namespace stc::sim {
namespace {

class ReplayStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    image_ = testing::random_image(rng, 30);
    wcfg_ = testing::random_wcfg(*image_, rng);
    trace_ = testing::random_trace(*image_, rng, 6000);
    layout_ = core::make_layout(core::LayoutKind::kOrig, wcfg_, 4096, 1024);
    auto plan = build_replay_plan(ReplayMode::kCompiled, trace_, *image_,
                                  layout_, kLineBytes);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    plan_ = std::make_unique<ReplayPlan>(std::move(plan).take());
    events_.clear();
    trace_.for_each([this](cfg::BlockId b) { events_.push_back(b); });
  }
  void TearDown() override { std::remove(trace_path().c_str()); }

  std::string trace_path() const {
    // Per-test name: ctest runs the suite's tests in parallel processes.
    return ::testing::TempDir() + "/stc_replay_stream_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".trace";
  }
  CacheGeometry geometry() const { return CacheGeometry{2048, kLineBytes, 1}; }

  static constexpr std::uint32_t kLineBytes = 32;
  std::unique_ptr<cfg::ProgramImage> image_;
  profile::WeightedCFG wcfg_;
  trace::BlockTrace trace_;
  cfg::AddressMap layout_;
  std::unique_ptr<ReplayPlan> plan_;
  std::vector<cfg::BlockId> events_;
};

MissRateResult run_miss_span(const ReplayPlan& plan, const CompiledTable* t,
                             const CacheGeometry& geom,
                             const std::vector<cfg::BlockId>& events,
                             std::size_t n, ReplayKernel kernel,
                             std::vector<std::uint64_t>* per_block) {
  ICache cache(geom);
  replay_detail::MissSpanState state;
  MissRateResult result;
  replay_detail::missrate_span(events.data(), n, plan.meta(), t,
                               t ? t->line_bytes() : geom.line_bytes, cache,
                               per_block, kernel, state, result);
  return result;
}

trace::SequentialityStats run_seq_span(const ReplayPlan& plan,
                                       const std::vector<cfg::BlockId>& events,
                                       std::size_t n, ReplayKernel kernel) {
  replay_detail::SeqSpanState state;
  trace::SequentialityStats stats;
  replay_detail::sequentiality_span(events.data(), n, plan.meta(), kernel,
                                    state, stats);
  return stats;
}

// Every span length from empty through several vector widths plus tails:
// SIMD == scalar, with and without the compiled line tables, including the
// per-block miss attribution.
TEST_F(ReplayStreamTest, SimdMatchesScalarOnEverySpanLength) {
  ASSERT_GE(events_.size(), 70u);
  for (std::size_t n = 0; n <= 70; ++n) {
    for (const CompiledTable* tables : {&plan_->compiled(),
                                        static_cast<const CompiledTable*>(
                                            nullptr)}) {
      std::vector<std::uint64_t> scalar_blocks(plan_->meta().size(), 0);
      std::vector<std::uint64_t> simd_blocks(plan_->meta().size(), 0);
      const MissRateResult scalar =
          run_miss_span(*plan_, tables, geometry(), events_, n,
                        ReplayKernel::kScalar, &scalar_blocks);
      const MissRateResult simd =
          run_miss_span(*plan_, tables, geometry(), events_, n,
                        ReplayKernel::kSimd, &simd_blocks);
      ASSERT_EQ(simd.instructions, scalar.instructions) << "n=" << n;
      ASSERT_EQ(simd.line_accesses, scalar.line_accesses) << "n=" << n;
      ASSERT_EQ(simd.misses, scalar.misses) << "n=" << n;
      ASSERT_EQ(simd_blocks, scalar_blocks) << "n=" << n;
    }
    const trace::SequentialityStats scalar =
        run_seq_span(*plan_, events_, n, ReplayKernel::kScalar);
    const trace::SequentialityStats simd =
        run_seq_span(*plan_, events_, n, ReplayKernel::kSimd);
    ASSERT_EQ(simd.instructions, scalar.instructions) << "n=" << n;
    ASSERT_EQ(simd.dynamic_blocks, scalar.dynamic_blocks) << "n=" << n;
    ASSERT_EQ(simd.taken_transitions, scalar.taken_transitions) << "n=" << n;
  }
}

// Chunked feeding through the carried state == one flat span, at every split
// point around the vector width.
TEST_F(ReplayStreamTest, SpansComposeThroughCarriedState) {
  const std::size_t n = 48;
  ASSERT_GE(events_.size(), n);
  for (const ReplayKernel kernel : {ReplayKernel::kScalar, ReplayKernel::kSimd}) {
    const MissRateResult whole_miss = run_miss_span(
        *plan_, &plan_->compiled(), geometry(), events_, n, kernel, nullptr);
    const trace::SequentialityStats whole_seq =
        run_seq_span(*plan_, events_, n, kernel);
    for (std::size_t split = 0; split <= n; ++split) {
      ICache cache(geometry());
      replay_detail::MissSpanState mstate;
      MissRateResult miss;
      replay_detail::missrate_span(events_.data(), split, plan_->meta(),
                                   &plan_->compiled(), kLineBytes, cache,
                                   nullptr, kernel, mstate, miss);
      replay_detail::missrate_span(events_.data() + split, n - split,
                                   plan_->meta(), &plan_->compiled(),
                                   kLineBytes, cache, nullptr, kernel, mstate,
                                   miss);
      ASSERT_EQ(miss.misses, whole_miss.misses) << "split=" << split;
      ASSERT_EQ(miss.line_accesses, whole_miss.line_accesses)
          << "split=" << split;

      replay_detail::SeqSpanState sstate;
      trace::SequentialityStats seq;
      replay_detail::sequentiality_span(events_.data(), split, plan_->meta(),
                                        kernel, sstate, seq);
      replay_detail::sequentiality_span(events_.data() + split, n - split,
                                        plan_->meta(), kernel, sstate, seq);
      ASSERT_EQ(seq.taken_transitions, whole_seq.taken_transitions)
          << "split=" << split;
      ASSERT_EQ(seq.instructions, whole_seq.instructions) << "split=" << split;
    }
  }
}

// The streamed entry points over an on-disk trace reproduce the in-memory
// replay bit for bit, in both kernels.
TEST_F(ReplayStreamTest, StreamedReplayMatchesInMemory) {
  ASSERT_TRUE(trace_.save(trace_path()).is_ok());
  auto opened = trace::TraceReader::open(trace_path());
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  const trace::TraceReader reader = std::move(opened).take();

  ICache mem_cache(geometry());
  const MissRateResult mem = replay_missrate(*plan_, mem_cache);
  const trace::SequentialityStats mem_seq = replay_sequentiality(*plan_);

  for (const ReplayKernel kernel : {ReplayKernel::kScalar, ReplayKernel::kSimd}) {
    for (const CompiledTable* tables : {&plan_->compiled(),
                                        static_cast<const CompiledTable*>(
                                            nullptr)}) {
      ICache cache(geometry());
      auto streamed =
          replay_missrate_streamed(reader, plan_->meta(), tables, cache, kernel);
      ASSERT_TRUE(streamed.is_ok()) << streamed.status().to_string();
      EXPECT_EQ(streamed.value().instructions, mem.instructions);
      EXPECT_EQ(streamed.value().line_accesses, mem.line_accesses);
      EXPECT_EQ(streamed.value().misses, mem.misses);
    }
    auto seq = replay_sequentiality_streamed(reader, plan_->meta(), kernel);
    ASSERT_TRUE(seq.is_ok()) << seq.status().to_string();
    EXPECT_EQ(seq.value().instructions, mem_seq.instructions);
    EXPECT_EQ(seq.value().dynamic_blocks, mem_seq.dynamic_blocks);
    EXPECT_EQ(seq.value().taken_transitions, mem_seq.taken_transitions);
  }
}

// A trace naming blocks outside the program image is a clean corrupt-data
// Status from the streamed replay, not unchecked indexing.
TEST_F(ReplayStreamTest, StreamedReplayRangeChecksEventIds) {
  trace::BlockTrace rogue;
  rogue.append(0);
  rogue.append(static_cast<cfg::BlockId>(plan_->meta().size() + 5));
  ASSERT_TRUE(rogue.save(trace_path()).is_ok());
  auto opened = trace::TraceReader::open(trace_path());
  ASSERT_TRUE(opened.is_ok());

  ICache cache(geometry());
  auto miss = replay_missrate_streamed(opened.value(), plan_->meta(), nullptr,
                                       cache);
  ASSERT_FALSE(miss.is_ok());
  EXPECT_EQ(miss.status().code(), ErrorCode::kCorruptData);
  EXPECT_NE(miss.status().message().find("outside the program image"),
            std::string::npos);
  auto seq = replay_sequentiality_streamed(opened.value(), plan_->meta());
  ASSERT_FALSE(seq.is_ok());
  EXPECT_EQ(seq.status().code(), ErrorCode::kCorruptData);
}

class PlanCacheDiskTest : public ReplayStreamTest {
 protected:
  void SetUp() override {
    ReplayStreamTest::SetUp();
    dir_ = ::testing::TempDir() + "/stc_plan_cache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::system(("rm -rf '" + dir_ + "' && mkdir '" + dir_ + "'")
                           .c_str()),
              0);
    ::setenv("STC_PLAN_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("STC_PLAN_CACHE_DIR");
    [[maybe_unused]] int rc = ::system(("rm -rf '" + dir_ + "'").c_str());
    ReplayStreamTest::TearDown();
  }

  std::vector<std::string> cache_files() const {
    std::vector<std::string> files;
    std::FILE* pipe =
        ::popen(("ls '" + dir_ + "' 2>/dev/null").c_str(), "r");
    char line[512];
    while (pipe != nullptr && std::fgets(line, sizeof line, pipe)) {
      std::string name(line);
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      if (!name.empty()) files.push_back(dir_ + "/" + name);
    }
    if (pipe != nullptr) ::pclose(pipe);
    return files;
  }

  MissRateResult replay_via_cache(ReplayPlanCache& cache_obj) {
    const ReplayPlan* plan = cache_obj.get(ReplayMode::kCompiled, trace_,
                                           *image_, layout_, kLineBytes);
    EXPECT_NE(plan, nullptr);
    ICache cache(geometry());
    return replay_missrate(*plan, cache);
  }

  std::string dir_;
};

TEST_F(PlanCacheDiskTest, RoundTripsThroughDiskAcrossCacheInstances) {
  ICache ref_cache(geometry());
  const MissRateResult ref = replay_missrate(*plan_, ref_cache);

  ReplayPlanCache first;  // cold: builds and persists
  const MissRateResult built = replay_via_cache(first);
  EXPECT_EQ(built.misses, ref.misses);
  EXPECT_FALSE(cache_files().empty());

  ReplayPlanCache second;  // warm: adopts the persisted slab and tables
  const MissRateResult loaded = replay_via_cache(second);
  EXPECT_EQ(loaded.instructions, ref.instructions);
  EXPECT_EQ(loaded.line_accesses, ref.line_accesses);
  EXPECT_EQ(loaded.misses, ref.misses);
}

TEST_F(PlanCacheDiskTest, CorruptCacheFileIsSilentlyRebuilt) {
  ICache ref_cache(geometry());
  const MissRateResult ref = replay_missrate(*plan_, ref_cache);
  {
    ReplayPlanCache warmup;
    replay_via_cache(warmup);
  }
  const std::vector<std::string> files = cache_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a plan cache file";
  }
  ReplayPlanCache fresh;  // must rebuild, not crash or serve garbage
  const MissRateResult rebuilt = replay_via_cache(fresh);
  EXPECT_EQ(rebuilt.instructions, ref.instructions);
  EXPECT_EQ(rebuilt.misses, ref.misses);
}

TEST_F(PlanCacheDiskTest, DistinctLineSizesGetDistinctPlans) {
  ReplayPlanCache cache_obj;
  const ReplayPlan* a = cache_obj.get(ReplayMode::kCompiled, trace_, *image_,
                                      layout_, 32);
  const ReplayPlan* b = cache_obj.get(ReplayMode::kCompiled, trace_, *image_,
                                      layout_, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(a->compiled().line_bytes(), 32u);
  EXPECT_EQ(b->compiled().line_bytes(), 64u);
}

}  // namespace
}  // namespace stc::sim
