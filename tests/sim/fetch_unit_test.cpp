#include "sim/fetch_unit.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::sim {
namespace {

using cfg::BlockKind;

// One routine with parameterizable block shapes laid out at address 0.
struct Fixture {
  explicit Fixture(std::vector<cfg::BlockDef> defs) {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    r = b.routine("f", m, std::move(defs));
    image = b.build();
    layout = cfg::AddressMap::original(*image);
  }
  std::unique_ptr<cfg::ProgramImage> image;
  cfg::AddressMap layout;
  cfg::RoutineId r = 0;
};

TEST(FetchPipeTest, PeekAndConsume) {
  Fixture f({{"A", 4, BlockKind::kFallThrough}, {"B", 2, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  t.append(1);
  FetchPipe pipe(t, *f.image, f.layout);
  FetchPipe::Insn insn;
  ASSERT_TRUE(pipe.peek(0, insn));
  EXPECT_EQ(insn.addr, 0u);
  EXPECT_FALSE(insn.block_end);
  ASSERT_TRUE(pipe.peek(3, insn));  // last insn of A
  EXPECT_TRUE(insn.block_end);
  EXPECT_FALSE(insn.is_branch);  // fall-through block
  EXPECT_FALSE(insn.taken);      // B is contiguous
  ASSERT_TRUE(pipe.peek(5, insn));  // last insn of B
  EXPECT_TRUE(insn.is_branch);      // return block
  EXPECT_FALSE(pipe.peek(6, insn));
  pipe.consume(6);
  EXPECT_TRUE(pipe.done());
}

TEST(FetchPipeTest, AddrAdvancesWithinBlock) {
  Fixture f({{"A", 4, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  FetchPipe pipe(t, *f.image, f.layout);
  EXPECT_EQ(pipe.addr(), 0u);
  pipe.consume(1);
  EXPECT_EQ(pipe.addr(), 4u);
  pipe.consume(2);
  EXPECT_EQ(pipe.addr(), 12u);
}

TEST(Seq3Test, SuppliesUpTo16SequentialInstructions) {
  // 20-insn straight-line block: first fetch brings 16, the rest 4.
  Fixture f({{"A", 20, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  FetchParams params;
  params.perfect_icache = true;
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, nullptr);
  EXPECT_EQ(result.instructions, 20u);
  EXPECT_EQ(result.cycles, 2u);
}

TEST(Seq3Test, StopsAtFirstTakenBranch) {
  Fixture f({{"A", 4, BlockKind::kBranch}, {"B", 4, BlockKind::kReturn}});
  trace::BlockTrace t;
  // A -> A (taken backward branch) then A -> B sequential.
  t.append(0);
  t.append(0);
  t.append(1);
  FetchParams params;
  params.perfect_icache = true;
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, nullptr);
  // Cycle 1: A (4 insns, taken). Cycle 2: A then B sequential = 8 insns but
  // A ends in a not-taken branch and B in a return: 2 branches < 3 -> one
  // cycle for both.
  EXPECT_EQ(result.instructions, 12u);
  EXPECT_EQ(result.cycles, 2u);
}

TEST(Seq3Test, ThreeBranchLimit) {
  // Four 1-insn branch blocks, all sequential (not taken): the unit may only
  // take 3 branches per cycle.
  Fixture f({{"A", 1, BlockKind::kBranch},
             {"B", 1, BlockKind::kBranch},
             {"C", 1, BlockKind::kBranch},
             {"D", 1, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  t.append(1);
  t.append(2);
  t.append(3);
  FetchParams params;
  params.perfect_icache = true;
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, nullptr);
  EXPECT_EQ(result.instructions, 4u);
  EXPECT_EQ(result.cycles, 2u);  // 3 insns (3 branches), then 1
}

TEST(Seq3Test, TwoLineWindowLimitsFetch) {
  // 32 straight-line insns starting at a line boundary with 32B lines:
  // window = 2 lines = 16 insns; width 16 allows it, so geometry matters
  // when the fetch starts mid-line.
  Fixture f({{"A", 8, BlockKind::kFallThrough},  // [0, 32)
             {"B", 24, BlockKind::kReturn}});    // [32, 128)
  trace::BlockTrace t;
  t.append(0);
  t.append(1);
  FetchParams params;
  ICache cache({1024, 32, 1});
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, &cache);
  // Cycle 1: insns at [0,64) = 16 insns (2 lines). Cycle 2: [64,128) = 16.
  EXPECT_EQ(result.instructions, 32u);
  EXPECT_EQ(result.fetch_requests, 2u);
}

TEST(Seq3Test, MissPenaltyAddsStallCycles) {
  Fixture f({{"A", 16, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  t.append(0);  // re-executed: second fetch hits
  FetchParams params;
  params.miss_penalty = 5;
  ICache cache({1024, 64, 1});
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, &cache);
  // Fetch 1: miss (line 0) -> 1 + 5 cycles. Fetch 2: hit -> 1 cycle.
  EXPECT_EQ(result.instructions, 32u);
  EXPECT_EQ(result.cycles, 7u);
  EXPECT_EQ(result.miss_requests, 1u);
}

TEST(Seq3Test, PenaltyPerLineDoublesOnDoubleMiss) {
  // 32B lines; a 16-insn fetch spans two lines -> two cold misses.
  Fixture f({{"A", 16, BlockKind::kReturn}});
  trace::BlockTrace t;
  t.append(0);
  FetchParams params;
  params.penalty_per_line = true;
  ICache cache({1024, 32, 1});
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, &cache);
  EXPECT_EQ(result.lines_missed, 2u);
  EXPECT_EQ(result.cycles, 1u + 10u);
}

TEST(Seq3Test, PerfectIcacheNeverStalls) {
  Fixture f({{"A", 16, BlockKind::kReturn}});
  trace::BlockTrace t;
  for (int i = 0; i < 100; ++i) t.append(0);
  FetchParams params;
  params.perfect_icache = true;
  const FetchResult result = run_seq3(t, *f.image, f.layout, params, nullptr);
  EXPECT_EQ(result.cycles, result.fetch_requests);
  EXPECT_DOUBLE_EQ(result.ipc(), 16.0);
}

TEST(Seq3Test, DisplacedFallThroughStopsFetchButIsNotABranch) {
  // A is fall-through but its successor is laid out far away: the transition
  // is taken (stops the fetch) yet contributes no branch instruction.
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const cfg::RoutineId r = b.routine("f", m,
                                     {{"A", 4, BlockKind::kFallThrough},
                                      {"B", 4, BlockKind::kBranch},
                                      {"C", 4, BlockKind::kReturn}});
  auto image = b.build();
  cfg::AddressMap layout("x", image->num_blocks());
  layout.set(image->block_id(r, "A"), 0);
  layout.set(image->block_id(r, "B"), 512);
  layout.set(image->block_id(r, "C"), 1024);
  trace::BlockTrace t;
  t.append(image->block_id(r, "A"));
  t.append(image->block_id(r, "B"));
  FetchParams params;
  params.perfect_icache = true;
  const FetchResult result = run_seq3(t, *image, layout, params, nullptr);
  EXPECT_EQ(result.instructions, 8u);
  EXPECT_EQ(result.cycles, 2u);  // the displaced transition splits the fetch
}

TEST(Seq3Test, IpcImprovesWithPackedLayout) {
  // Hot path A -> C; orig layout separates them with B.
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const cfg::RoutineId r = b.routine("f", m,
                                     {{"A", 4, BlockKind::kBranch},
                                      {"B", 8, BlockKind::kBranch},
                                      {"C", 4, BlockKind::kReturn}});
  auto image = b.build();
  trace::BlockTrace t;
  for (int i = 0; i < 50; ++i) {
    t.append(image->block_id(r, "A"));
    t.append(image->block_id(r, "C"));
  }
  FetchParams params;
  params.perfect_icache = true;
  const auto orig = cfg::AddressMap::original(*image);
  cfg::AddressMap packed("packed", image->num_blocks());
  packed.set(image->block_id(r, "A"), 0);
  packed.set(image->block_id(r, "C"), 16);
  packed.set(image->block_id(r, "B"), 128);
  const auto before = run_seq3(t, *image, orig, params, nullptr);
  const auto after = run_seq3(t, *image, packed, params, nullptr);
  EXPECT_GT(after.ipc(), before.ipc());
}

}  // namespace
}  // namespace stc::sim
