#include "sim/icache.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::sim {
namespace {

TEST(ICacheTest, ColdMissThenHit) {
  ICache cache({1024, 64, 1});
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ICacheTest, DirectMappedConflict) {
  ICache cache({1024, 64, 1});  // 16 sets
  cache.access(0);
  cache.access(1024);  // same set, evicts line 0
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(1024));
}

TEST(ICacheTest, TwoWayToleratesOneConflict) {
  ICache cache({1024, 64, 2});  // 8 sets, 2 ways
  cache.access(0);
  cache.access(1024);  // same set, second way
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(1024));
  cache.access(0);     // re-touch 0 so 1024 becomes the LRU entry
  cache.access(2048);  // evicts the LRU of the set
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(1024));
}

TEST(ICacheTest, LruOrderRespectedInFourWaySet) {
  ICache cache({1024, 64, 4});  // 4 sets
  // Fill one set with 4 lines, touch them in order.
  for (int i = 0; i < 4; ++i) cache.access(static_cast<std::uint64_t>(i) * 1024);
  // Re-touch lines 0..2 so line 3 is LRU.
  for (int i = 0; i < 3; ++i) cache.access(static_cast<std::uint64_t>(i) * 1024);
  cache.access(4 * 1024);  // evicts way holding 3*1024
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(3 * 1024));
}

TEST(ICacheTest, VictimCacheRescuesRecentEviction) {
  ICache direct({1024, 64, 1});
  ICache with_victim({1024, 64, 1}, /*victim_lines=*/4);
  // Ping-pong two conflicting lines.
  std::uint64_t direct_misses = 0;
  std::uint64_t victim_misses = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t addr = (i % 2 == 0) ? 0u : 1024u;
    if (!direct.access(addr)) ++direct_misses;
    if (!with_victim.access(addr)) ++victim_misses;
  }
  EXPECT_EQ(direct_misses, 20u);   // conflicts every access
  EXPECT_EQ(victim_misses, 2u);    // only the two cold misses
  EXPECT_EQ(with_victim.stats().victim_hits, 18u);
}

TEST(ICacheTest, VictimCapacityIsLimited) {
  ICache cache({1024, 64, 1}, /*victim_lines=*/2);
  // Rotate 4 conflicting lines: the 2-entry victim cannot hold them all.
  std::uint64_t misses = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      if (!cache.access(static_cast<std::uint64_t>(i) * 1024)) ++misses;
    }
  }
  EXPECT_GT(misses, 4u);
}

TEST(ICacheTest, ResetClearsEverything) {
  ICache cache({1024, 64, 1}, 2);
  cache.access(0);
  cache.access(64);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.access(0));
}

TEST(ICacheTest, ContainsChecksVictimToo) {
  ICache cache({1024, 64, 1}, 2);
  cache.access(0);
  cache.access(1024);  // 0 demoted to victim
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1024));
}

TEST(ICacheDeathTest, RejectsNonPowerOfTwoLine) {
  EXPECT_DEATH(ICache({1024, 48, 1}), "");
}

// ---- run_missrate over a trace ---------------------------------------------

struct TraceFixture {
  TraceFixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    // Two routines, 16 insns (64B = one line) each.
    r1 = b.routine("f", m, {{"a", 16, cfg::BlockKind::kReturn}});
    r2 = b.routine("g", m, {{"a", 16, cfg::BlockKind::kReturn}});
    image = b.build();
  }
  std::unique_ptr<cfg::ProgramImage> image;
  cfg::RoutineId r1 = 0, r2 = 0;
};

TEST(MissRateTest, CountsInstructionsAndLineAccesses) {
  TraceFixture f;
  trace::BlockTrace t;
  t.append(0);
  t.append(1);
  ICache cache({1024, 64, 1});
  const auto layout = cfg::AddressMap::original(*f.image);
  const MissRateResult result = run_missrate(t, *f.image, layout, cache);
  EXPECT_EQ(result.instructions, 32u);
  EXPECT_EQ(result.line_accesses, 2u);
  EXPECT_EQ(result.misses, 2u);  // both cold
  EXPECT_DOUBLE_EQ(result.misses_per_100_insns(), 100.0 * 2 / 32);
}

TEST(MissRateTest, RepeatedBlocksHitAfterWarmup) {
  TraceFixture f;
  trace::BlockTrace t;
  for (int i = 0; i < 10; ++i) {
    t.append(0);
    t.append(1);
  }
  ICache cache({1024, 64, 1});
  const auto layout = cfg::AddressMap::original(*f.image);
  const MissRateResult result = run_missrate(t, *f.image, layout, cache);
  EXPECT_EQ(result.misses, 2u);  // only cold misses
}

TEST(MissRateTest, ConflictingLayoutMissesEveryTime) {
  TraceFixture f;
  trace::BlockTrace t;
  for (int i = 0; i < 10; ++i) {
    t.append(0);
    t.append(1);
  }
  // Map both blocks to the same set of a 1KB direct-mapped cache.
  cfg::AddressMap layout("conflict", f.image->num_blocks());
  layout.set(0, 0);
  layout.set(1, 1024);
  ICache cache({1024, 64, 1});
  const MissRateResult result = run_missrate(t, *f.image, layout, cache);
  EXPECT_EQ(result.misses, 20u);
}

TEST(MissRateTest, PerBlockAttributionSumsToTotal) {
  TraceFixture f;
  trace::BlockTrace t;
  for (int i = 0; i < 6; ++i) {
    t.append(0);
    t.append(1);
  }
  // Conflicting layout: every access misses and attributes to its block.
  cfg::AddressMap layout("conflict", f.image->num_blocks());
  layout.set(0, 0);
  layout.set(1, 1024);
  ICache cache({1024, 64, 1});
  std::vector<std::uint64_t> per_block;
  const MissRateResult result =
      run_missrate(t, *f.image, layout, cache, &per_block);
  ASSERT_EQ(per_block.size(), f.image->num_blocks());
  std::uint64_t sum = 0;
  for (std::uint64_t m : per_block) sum += m;
  EXPECT_EQ(sum, result.misses);
  EXPECT_EQ(per_block[0], 6u);
  EXPECT_EQ(per_block[1], 6u);
}

TEST(MissRateTest, BlockSpanningTwoLinesTouchesBoth) {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  b.routine("f", m, {{"a", 20, cfg::BlockKind::kReturn}});  // 80 bytes
  auto image = b.build();
  trace::BlockTrace t;
  t.append(0);
  ICache cache({1024, 64, 1});
  const auto layout = cfg::AddressMap::original(*image);
  const MissRateResult result = run_missrate(t, *image, layout, cache);
  EXPECT_EQ(result.line_accesses, 2u);
}

}  // namespace
}  // namespace stc::sim
