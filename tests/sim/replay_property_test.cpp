// Property tests for the replay engine's containers: chunk-batched slab
// decode (boundary shapes: empty traces, single events, chunk-straddling
// runs), the bump arena (alignment, zero-fill, pointer stability, reset
// reuse), compiled-table construction (deterministic across thread counts),
// and the replay.compile faultpoint's clean fallback to the interpreter.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "cfg/address_map.h"
#include "sim/replay.h"
#include "support/faultpoint.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "trace/block_trace.h"

namespace stc::sim {
namespace {

std::vector<cfg::BlockId> reference_events(const trace::BlockTrace& trace) {
  std::vector<cfg::BlockId> out;
  trace.for_each([&](cfg::BlockId b) { out.push_back(b); });
  return out;
}

void expect_slab_equals_trace(const trace::BlockTrace& trace) {
  const std::vector<cfg::BlockId> expected = reference_events(trace);
  EventSlab slab;
  slab.build(trace);
  ASSERT_EQ(slab.size(), expected.size());
  cfg::BlockId max_id = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(slab[i], expected[i]) << "event " << i;
    max_id = std::max(max_id, expected[i]);
  }
  EXPECT_EQ(slab.max_id(), max_id);

  // decode_chunk must partition the same sequence: the per-chunk event
  // counts sum to the total and the concatenation is identical.
  std::vector<cfg::BlockId> concatenated;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < trace.num_chunks(); ++c) {
    counted += trace.decode_chunk(c, concatenated);
  }
  EXPECT_EQ(counted, expected.size());
  EXPECT_EQ(concatenated, expected);
}

TEST(EventSlabTest, EmptyTrace) {
  trace::BlockTrace trace;
  expect_slab_equals_trace(trace);
  EventSlab slab;
  slab.build(trace);
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.max_id(), 0u);
}

TEST(EventSlabTest, SingleEvent) {
  trace::BlockTrace trace;
  trace.append(42);
  expect_slab_equals_trace(trace);
}

TEST(EventSlabTest, SingleEventPerChunkExtremes) {
  // One huge id then zero: large svarint deltas in a tiny chunk.
  trace::BlockTrace trace;
  trace.append(0x00ffffff);
  trace.append(0);
  trace.append(0x00ffffff);
  expect_slab_equals_trace(trace);
}

TEST(EventSlabTest, EventsStraddlingChunkBoundaries) {
  // Push well past one 64KB chunk so multiple chunks exist, with deltas
  // mixing 1-byte and multi-byte varints right around the split points.
  Rng rng(99);
  trace::BlockTrace trace;
  std::uint32_t id = 0;
  while (trace.byte_size() < (1u << 16) * 3 + 777) {
    if (rng.chance(0.05)) {
      id = static_cast<std::uint32_t>(rng.uniform(1u << 22));
    } else {
      const std::int64_t next =
          static_cast<std::int64_t>(id) + rng.uniform_range(-100, 100);
      id = static_cast<std::uint32_t>(std::max<std::int64_t>(0, next));
    }
    trace.append(id);
  }
  ASSERT_GT(trace.num_chunks(), 2u);
  expect_slab_equals_trace(trace);
}

TEST(EventSlabTest, MaxSizeChunksOfIdenticalIds) {
  // Identical ids delta-encode to one byte each, producing maximally full
  // chunks; the chunk boundary falls mid-run of equal values.
  trace::BlockTrace trace;
  for (int i = 0; i < 200000; ++i) trace.append(7);
  ASSERT_GT(trace.num_chunks(), 1u);
  expect_slab_equals_trace(trace);
}

TEST(ReplayArenaTest, AlignsAndZeroFillsMixedTypes) {
  ReplayArena arena;
  std::uint8_t* bytes = arena.alloc<std::uint8_t>(3);
  std::uint64_t* words = arena.alloc<std::uint64_t>(5);
  std::uint32_t* ints = arena.alloc<std::uint32_t>(7);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(words, nullptr);
  ASSERT_NE(ints, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints) % alignof(std::uint32_t),
            0u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(bytes[i], 0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(words[i], 0u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(ints[i], 0u);
  EXPECT_EQ(arena.alloc<std::uint64_t>(0), nullptr);
}

TEST(ReplayArenaTest, GrowthNeverMovesEarlierAllocations) {
  ReplayArena arena;
  // First allocation, then allocations large enough to force fresh slabs.
  std::uint64_t* first = arena.alloc<std::uint64_t>(16);
  first[0] = 0xdeadbeefcafe1234ull;
  first[15] = 42;
  for (int i = 0; i < 8; ++i) {
    std::uint64_t* big = arena.alloc<std::uint64_t>(1 << 15);
    ASSERT_NE(big, nullptr);
    big[0] = static_cast<std::uint64_t>(i);
  }
  EXPECT_GT(arena.num_slabs(), 1u);
  // The first slab's contents survived every growth.
  EXPECT_EQ(first[0], 0xdeadbeefcafe1234ull);
  EXPECT_EQ(first[15], 42u);
}

TEST(ReplayArenaTest, ResetKeepsSlabsAndReusesMemory) {
  ReplayArena arena;
  (void)arena.alloc<std::uint64_t>(1000);
  const std::size_t slabs_before = arena.num_slabs();
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.num_slabs(), slabs_before);
  // Fresh allocations after reset are zeroed again even though the memory
  // was previously written.
  std::uint64_t* again = arena.alloc<std::uint64_t>(1000);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(again[i], 0u);
  EXPECT_EQ(arena.num_slabs(), slabs_before);  // reused, not regrown
}

TEST(ReplayModeParseTest, AcceptsEveryKnobValueAndRejectsGarbage) {
  EXPECT_EQ(parse_replay_mode("interp").value(), ReplayMode::kInterp);
  EXPECT_EQ(parse_replay_mode("batched").value(), ReplayMode::kBatched);
  EXPECT_EQ(parse_replay_mode("compiled").value(), ReplayMode::kCompiled);
  EXPECT_EQ(parse_replay_mode("auto").value(), ReplayMode::kCompiled);
  EXPECT_FALSE(parse_replay_mode("").is_ok());
  EXPECT_FALSE(parse_replay_mode("Interp").is_ok());
  EXPECT_FALSE(parse_replay_mode("compiled ").is_ok());
}

// Compiled-table construction is pure: plans built concurrently from many
// threads (any thread count) are identical table for table.
TEST(CompiledTableTest, DeterministicAcrossThreadCounts) {
  Rng rng(4242);
  const auto image = testing::random_image(rng, 40);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 4000);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);
  constexpr std::uint32_t kLine = 32;

  const auto fingerprint = [&](const ReplayPlan& plan) {
    std::vector<std::uint64_t> fp;
    const BlockMetaTable& meta = plan.meta();
    const CompiledTable& table = plan.compiled();
    for (cfg::BlockId b = 0; b < meta.size(); ++b) {
      fp.push_back(meta.addr(b));
      fp.push_back(meta.end_addr(b));
      fp.push_back(meta.insns(b));
      fp.push_back(table.first_line(b));
      fp.push_back(table.last_line(b));
      fp.push_back(table.word_index(b));
    }
    return fp;
  };

  Result<ReplayPlan> reference = build_replay_plan(
      ReplayMode::kCompiled, trace, *image, layout, kLine);
  ASSERT_TRUE(reference.is_ok());
  const std::vector<std::uint64_t> expected = fingerprint(reference.value());

  for (const int nthreads : {1, 2, 4, 8}) {
    std::vector<std::vector<std::uint64_t>> got(
        static_cast<std::size_t>(nthreads));
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        Result<ReplayPlan> plan = build_replay_plan(
            ReplayMode::kCompiled, trace, *image, layout, kLine);
        if (plan.is_ok()) got[static_cast<std::size_t>(t)] =
            fingerprint(plan.value());
      });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < nthreads; ++t) {
      EXPECT_EQ(got[static_cast<std::size_t>(t)], expected)
          << nthreads << " threads, thread " << t;
    }
  }
}

// The plan cache keys on CONTENT, not object addresses. Regression: the
// ablate benches rebuild layouts per cell and the allocator recycles the
// dead layout's address, so an address-keyed cache served a stale plan
// (caught by the STC_VERIFY replay cross-check as diverging miss counts).
// Mutating a layout in place — same address, new content — is the
// deterministic version of that aliasing.
TEST(ReplayPlanCacheTest, KeysOnContentNotAddress) {
  Rng rng(6060);
  const auto image = testing::random_image(rng, 10);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 500);
  cfg::AddressMap layout = cfg::AddressMap::original(*image);

  ReplayPlanCache cache;
  const ReplayPlan* before =
      cache.get(ReplayMode::kCompiled, trace, *image, layout, 32);
  ASSERT_NE(before, nullptr);
  const std::uint64_t addr0 = before->meta().addr(0);

  // Identical content at a different address must hit the same entry.
  const cfg::AddressMap copy = layout;
  EXPECT_EQ(cache.get(ReplayMode::kCompiled, trace, *image, copy, 32),
            before);

  // Same address, shifted content: must be a fresh plan with the shifted
  // addresses, not the memoized stale one.
  for (cfg::BlockId b = 0; b < layout.size(); ++b) {
    layout.set(b, layout.addr(b) + 1024);
  }
  const ReplayPlan* after =
      cache.get(ReplayMode::kCompiled, trace, *image, layout, 32);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);
  EXPECT_EQ(after->meta().addr(0), addr0 + 1024);
}

// Two distinct enabled back-end specs bake different latencies into their
// compiled tables, so they must never share a cache entry; the same spec
// must keep hitting its own entry, and spec-less lookups keep the pre-spec
// key shape (fingerprint 0).
TEST(ReplayPlanCacheTest, KeysOnBackendSpec) {
  Rng rng(7070);
  const auto image = testing::random_image(rng, 10);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 500);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);

  BackendSpec spec_a;
  spec_a.enabled = true;
  BackendSpec spec_b = spec_a;
  spec_b.mem_latency += 2;

  ReplayPlanCache cache;
  const ReplayPlan* none =
      cache.get(ReplayMode::kCompiled, trace, *image, layout, 32);
  const ReplayPlan* a =
      cache.get(ReplayMode::kCompiled, trace, *image, layout, 32, spec_a);
  const ReplayPlan* b =
      cache.get(ReplayMode::kCompiled, trace, *image, layout, 32, spec_b);
  ASSERT_NE(none, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(none, a);
  EXPECT_NE(none, b);
  EXPECT_NE(a, b);
  EXPECT_FALSE(none->backend().valid());
  EXPECT_TRUE(a->backend().valid());
  EXPECT_EQ(a->backend().spec(), spec_a);
  EXPECT_EQ(b->backend().spec(), spec_b);
  // Repeat lookups hit their memoized entries.
  EXPECT_EQ(cache.get(ReplayMode::kCompiled, trace, *image, layout, 32,
                      spec_a),
            a);
  EXPECT_EQ(cache.get(ReplayMode::kCompiled, trace, *image, layout, 32), none);
}

// The compiled back-end tables agree entry for entry with the shared cost
// helpers the interpreter uses — the identity the plan path's DCHECKs and
// the replay-diff oracle rest on.
TEST(CompiledTableTest, BackendTableMatchesCostHelpers) {
  Rng rng(8080);
  const auto image = testing::random_image(rng, 12);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 400);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);

  BackendSpec spec;
  spec.enabled = true;
  spec.base_latency = 2;
  spec.mem_latency = 5;
  spec.size_shift = 1;
  Result<ReplayPlan> plan = build_replay_plan(ReplayMode::kCompiled, trace,
                                              *image, layout, 32, spec);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const BackendTable& table = plan.value().backend();
  ASSERT_TRUE(table.valid());
  EXPECT_EQ(table.spec(), spec);
  const BlockMetaTable& meta = plan.value().meta();
  for (cfg::BlockId b = 0; b < meta.size(); ++b) {
    EXPECT_EQ(table.latency(b),
              backend_op_latency(spec, meta.insns(b), meta.kind(b)))
        << "block " << b;
    std::uint8_t dest, src1, src2;
    backend_op_regs(meta.addr(b), meta.insns(b), &dest, &src1, &src2);
    EXPECT_EQ(table.dest(b), dest) << "block " << b;
    EXPECT_EQ(table.src1(b), src1) << "block " << b;
    EXPECT_EQ(table.src2(b), src2) << "block " << b;
  }
}

// Batched plans never carry back-end tables (the batched runner recomputes
// from the spec per event), with or without a spec in the build call.
TEST(CompiledTableTest, BatchedPlansCarryNoBackendTable) {
  Rng rng(9090);
  const auto image = testing::random_image(rng, 6);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 200);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);
  BackendSpec spec;
  spec.enabled = true;
  Result<ReplayPlan> with_spec = build_replay_plan(
      ReplayMode::kBatched, trace, *image, layout, 32, spec);
  ASSERT_TRUE(with_spec.is_ok());
  EXPECT_FALSE(with_spec.value().backend().valid());
  Result<ReplayPlan> without = build_replay_plan(ReplayMode::kBatched, trace,
                                                 *image, layout, 32);
  ASSERT_TRUE(without.is_ok());
  EXPECT_FALSE(without.value().backend().valid());
}

// Faultpoint replay.compile: a failed compiled-table build surfaces as a
// structured error from build_replay_plan, and the plan cache converts it
// into a clean interpreter fallback (nullptr), memoized.
TEST(ReplayFaultTest, CompileFaultFallsBackToInterp) {
  Rng rng(5050);
  const auto image = testing::random_image(rng, 10);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 500);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);

  fault::reset();
  fault::arm("replay.compile", 1);
  Result<ReplayPlan> direct =
      build_replay_plan(ReplayMode::kCompiled, trace, *image, layout, 32);
  EXPECT_FALSE(direct.is_ok());
  EXPECT_NE(direct.status().to_string().find("replay.compile"),
            std::string::npos)
      << direct.status().to_string();

  fault::reset();
  fault::arm("replay.compile", 1);
  ReplayPlanCache cache;
  EXPECT_EQ(cache.get(ReplayMode::kCompiled, trace, *image, layout, 32),
            nullptr);
  // The fallback is memoized: the next lookup must not rebuild (the fault
  // fired once; a rebuild would now succeed and flip the answer mid-run).
  EXPECT_EQ(cache.get(ReplayMode::kCompiled, trace, *image, layout, 32),
            nullptr);
  fault::reset();

  // Batched plans skip the compiled build entirely: same armed fault, no
  // failure.
  fault::arm("replay.compile", 1);
  Result<ReplayPlan> batched =
      build_replay_plan(ReplayMode::kBatched, trace, *image, layout, 32);
  EXPECT_TRUE(batched.is_ok());
  fault::reset();
}

}  // namespace
}  // namespace stc::sim
