// Parameterized simulator invariants over random programs, traces and
// layouts: conservation of instruction counts, bandwidth bounds, cache
// accounting identities. These hold for ANY input, so they run across a
// family of random seeds. The oracle test at the end runs the full
// src/verify suite — independent line-probe recounts, observer-based cache
// cross-checks and counter identities — over every input.
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/trace_cache.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/oracle.h"

namespace stc::sim {
namespace {

struct PropertyInput {
  std::uint64_t seed;
  core::LayoutKind layout;
  std::uint32_t cache_bytes;
  std::uint32_t line_bytes;
  bool degenerate;  // use the degenerate program/profile families
};

class SimPropertyTest : public ::testing::TestWithParam<PropertyInput> {
 protected:
  void SetUp() override {
    const PropertyInput& p = GetParam();
    Rng rng(p.seed);
    if (p.degenerate) {
      const int family =
          1 + static_cast<int>(rng.uniform(testing::kNumDegenerateFamilies - 1));
      image = testing::degenerate_image(rng, family);
      wcfg = testing::degenerate_wcfg(*image, rng);
    } else {
      image = testing::random_image(rng, 60);
      wcfg = testing::random_wcfg(*image, rng);
    }
    trace = testing::random_trace(*image, rng, 20000);
    layout = std::make_unique<cfg::AddressMap>(core::make_layout(
        p.layout, wcfg, p.cache_bytes, p.cache_bytes / 4));
    expected_insns = 0;
    trace.for_each(
        [&](cfg::BlockId b) { expected_insns += image->block(b).insns; });
  }

  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
  std::unique_ptr<cfg::AddressMap> layout;
  std::uint64_t expected_insns = 0;
};

TEST_P(SimPropertyTest, MissRateConservesInstructions) {
  const PropertyInput& p = GetParam();
  ICache cache({p.cache_bytes, p.line_bytes, 1});
  const MissRateResult result = run_missrate(trace, *image, *layout, cache);
  EXPECT_EQ(result.instructions, expected_insns);
  EXPECT_LE(result.misses, result.line_accesses);
  EXPECT_EQ(result.line_accesses, cache.stats().accesses);
  EXPECT_EQ(result.misses, cache.stats().misses);
  const auto report =
      verify::check_missrate_result(result, cache.stats(), expected_insns);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(SimPropertyTest, Seq3ConservesInstructionsAndBoundsIpc) {
  const PropertyInput& p = GetParam();
  FetchParams params;
  ICache cache({p.cache_bytes, p.line_bytes, 1});
  const FetchResult result = run_seq3(trace, *image, *layout, params, &cache);
  EXPECT_EQ(result.instructions, expected_insns);
  EXPECT_GE(result.cycles, result.fetch_requests);
  EXPECT_LE(result.ipc(), static_cast<double>(params.width));
  if (expected_insns > 0) EXPECT_GT(result.ipc(), 0.0);
  // Stall accounting: cycles = requests + penalty * missed requests.
  EXPECT_EQ(result.cycles,
            result.fetch_requests + params.miss_penalty * result.miss_requests);
  const auto report = verify::check_fetch_result(
      result, params, expected_insns, /*with_trace_cache=*/false);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(SimPropertyTest, PerfectCacheIsAnUpperBound) {
  const PropertyInput& p = GetParam();
  FetchParams realistic;
  ICache cache({p.cache_bytes, p.line_bytes, 1});
  const double with_cache =
      run_seq3(trace, *image, *layout, realistic, &cache).ipc();
  FetchParams perfect;
  perfect.perfect_icache = true;
  const double ideal = run_seq3(trace, *image, *layout, perfect, nullptr).ipc();
  EXPECT_GE(ideal, with_cache);
}

TEST_P(SimPropertyTest, TraceCacheConservesInstructions) {
  const PropertyInput& p = GetParam();
  FetchParams params;
  TraceCacheParams tc;
  tc.entries = 32;
  ICache cache({p.cache_bytes, p.line_bytes, 1});
  const FetchResult result =
      run_trace_cache(trace, *image, *layout, params, tc, &cache);
  EXPECT_EQ(result.instructions, expected_insns);
  EXPECT_EQ(result.tc_hits + result.tc_misses, result.fetch_requests);
  EXPECT_EQ(result.tc_probes, result.tc_hits + result.tc_misses);
  EXPECT_LE(result.tc_fills, result.tc_probes);
  const auto report = verify::check_fetch_result(
      result, params, expected_insns, /*with_trace_cache=*/true);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(SimPropertyTest, AssociativityNeverIncreasesMisses) {
  const PropertyInput& p = GetParam();
  // With full LRU and the same capacity, 2-way can in adversarial cases lose
  // to direct-mapped (Belady), but a fully-associative cache of the same
  // capacity never loses to direct-mapped on these streams... which is also
  // not guaranteed in general. What IS an invariant: doubling capacity at
  // fixed associativity cannot increase misses for LRU (stack property).
  ICache small({p.cache_bytes, p.line_bytes, 1});
  const auto small_result = run_missrate(trace, *image, *layout, small);
  ICache big({p.cache_bytes * 2, p.line_bytes, 2});
  const auto big_result = run_missrate(trace, *image, *layout, big);
  // LRU stack property holds for fully/set-assoc growth that keeps every
  // set a superset; (2x capacity, 2x assoc) has identical sets with double
  // the ways -> misses cannot increase.
  EXPECT_LE(big_result.misses, small_result.misses);
}

// The full oracle: structure + replay + all three simulators cross-checked
// against independent recounts, at this input's geometry.
TEST_P(SimPropertyTest, FullOracleIsClean) {
  const PropertyInput& p = GetParam();
  verify::OracleOptions options;
  options.geometry = {p.cache_bytes, p.line_bytes, 1};
  const auto report =
      verify::verify_layout(trace, *image, *layout, nullptr, options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

std::vector<PropertyInput> inputs() {
  std::vector<PropertyInput> out;
  std::uint64_t seed = 9000;
  for (core::LayoutKind kind :
       {core::LayoutKind::kOrig, core::LayoutKind::kStcAuto,
        core::LayoutKind::kPettisHansen}) {
    for (std::uint32_t cache : {512u, 2048u}) {
      for (std::uint32_t line : {16u, 64u}) {
        // Two random-program seeds plus one degenerate-family seed per
        // geometry point.
        out.push_back({seed++, kind, cache, line, false});
        out.push_back({seed++, kind, cache, line, false});
        out.push_back({seed++, kind, cache, line, true});
      }
    }
  }
  return out;
}

std::string name(const ::testing::TestParamInfo<PropertyInput>& info) {
  std::string kind = core::to_string(info.param.layout);
  for (char& c : kind) {
    if (c == '&') c = 'n';
  }
  return kind + "_c" + std::to_string(info.param.cache_bytes) + "_l" +
         std::to_string(info.param.line_bytes) + "_s" +
         std::to_string(info.param.seed) +
         (info.param.degenerate ? "_degen" : "");
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, SimPropertyTest,
                         ::testing::ValuesIn(inputs()), name);

}  // namespace
}  // namespace stc::sim
