// Replay-mode equivalence: the batched and compiled replay engines
// (sim/replay.h) must reproduce the interpreter bit for bit — every
// simulator counter, every cache statistic, every speculative-front-end
// cycle count — on every synthetic program family, every degenerate family
// and every layout kind. The parameterized suites drive the oracle's
// check_replay_modes (six simulators per triple); the direct tests assert a
// few headline counters explicitly, and the corpus tests replay the fuzz
// regression shapes through run_replay_diff.
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "sim/trace_cache.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/fuzz.h"
#include "verify/oracle.h"

namespace stc::sim {
namespace {

constexpr core::LayoutKind kAllLayouts[] = {
    core::LayoutKind::kOrig, core::LayoutKind::kPettisHansen,
    core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
    core::LayoutKind::kStcOps};

struct ModesInput {
  std::uint64_t seed;
  std::uint32_t cache_bytes;
  std::uint32_t line_bytes;
  int degenerate_family;  // -1 = random program family
};

class ReplayModesTest : public ::testing::TestWithParam<ModesInput> {
 protected:
  void SetUp() override {
    const ModesInput& p = GetParam();
    Rng rng(p.seed);
    if (p.degenerate_family >= 0) {
      image = testing::degenerate_image(rng, p.degenerate_family);
      wcfg = testing::degenerate_wcfg(*image, rng);
    } else {
      image = testing::random_image(rng, 40);
      wcfg = testing::random_wcfg(*image, rng);
    }
    if (image->num_blocks() > 0) {
      trace = testing::random_trace(*image, rng, 8000);
    }
  }

  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
};

// Every simulator, every replay mode, every layout kind: bit-identical.
TEST_P(ReplayModesTest, AllSimulatorsIdenticalAcrossModesAndLayouts) {
  const ModesInput& p = GetParam();
  const CacheGeometry geometry{p.cache_bytes, p.line_bytes, 1};
  for (core::LayoutKind kind : kAllLayouts) {
    const cfg::AddressMap layout =
        core::make_layout(kind, wcfg, p.cache_bytes, p.cache_bytes / 4);
    const verify::Report report =
        verify::check_replay_modes(trace, *image, layout, geometry);
    EXPECT_TRUE(report.ok())
        << core::to_string(kind) << ": " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, ReplayModesTest,
    ::testing::Values(ModesInput{11, 1024, 32, -1}, ModesInput{12, 2048, 64, -1},
                      ModesInput{13, 4096, 32, -1}, ModesInput{14, 512, 16, -1},
                      ModesInput{15, 8192, 128, -1}));

INSTANTIATE_TEST_SUITE_P(
    DegenerateFamilies, ReplayModesTest,
    ::testing::Values(ModesInput{21, 1024, 32, 0},   // EmptyProgram
                      ModesInput{22, 1024, 32, 1},   // SingleBlockProgram
                      ModesInput{23, 2048, 64, 2},   // AllSingleBlockRoutines
                      ModesInput{24, 1024, 32, 3},   // OversizedBlocks
                      ModesInput{25, 4096, 32, 4}),  // NonReturnTails
    [](const ::testing::TestParamInfo<ModesInput>& info) {
      return testing::degenerate_family_name(info.param.degenerate_family);
    });

// Direct counter assertions (not via the oracle) on one random input, so a
// divergence shows up as a readable EXPECT_EQ on the exact field.
TEST(ReplayModesDirect, HeadlineCountersMatchInterp) {
  Rng rng(777);
  const auto image = testing::random_image(rng, 50);
  const auto wcfg = testing::random_wcfg(*image, rng);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 20000);
  const cfg::AddressMap layout =
      core::make_layout(core::LayoutKind::kStcOps, wcfg, 2048, 512);
  const CacheGeometry geometry{2048, 32, 1};

  ICache interp_cache(geometry);
  const MissRateResult interp_miss =
      run_missrate(trace, *image, layout, interp_cache);
  FetchParams params;
  ICache interp_seq3_cache(geometry);
  const FetchResult interp_seq3 =
      run_seq3(trace, *image, layout, params, &interp_seq3_cache);
  const TraceCacheParams tc_params;
  ICache interp_tc_cache(geometry);
  const FetchResult interp_tc = run_trace_cache(trace, *image, layout, params,
                                                tc_params, &interp_tc_cache);
  frontend::FrontEndParams fe;
  fe.kind = frontend::BpredKind::kGshare;
  fe.prefetch = true;
  ICache interp_fe_cache(geometry);
  const frontend::FrontEndResult interp_fe = frontend::run_seq3_frontend(
      trace, *image, layout, params, fe, &interp_fe_cache);

  for (const ReplayMode mode :
       {ReplayMode::kBatched, ReplayMode::kCompiled}) {
    SCOPED_TRACE(to_string(mode));
    Result<ReplayPlan> plan =
        build_replay_plan(mode, trace, *image, layout, geometry.line_bytes);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

    ICache miss_cache(geometry);
    const MissRateResult miss = replay_missrate(plan.value(), miss_cache);
    EXPECT_EQ(miss.instructions, interp_miss.instructions);
    EXPECT_EQ(miss.misses, interp_miss.misses);
    EXPECT_EQ(miss.line_accesses, interp_miss.line_accesses);
    EXPECT_EQ(miss_cache.stats().misses, interp_cache.stats().misses);

    ICache seq3_cache(geometry);
    const FetchResult seq3 = run_seq3(plan.value(), params, &seq3_cache);
    EXPECT_EQ(seq3.instructions, interp_seq3.instructions);
    EXPECT_EQ(seq3.cycles, interp_seq3.cycles);
    EXPECT_EQ(seq3.fetch_requests, interp_seq3.fetch_requests);
    EXPECT_EQ(seq3_cache.stats().misses, interp_seq3_cache.stats().misses);

    ICache tc_cache(geometry);
    const FetchResult tc =
        run_trace_cache(plan.value(), params, tc_params, &tc_cache);
    EXPECT_EQ(tc.cycles, interp_tc.cycles);
    EXPECT_EQ(tc.tc_hits, interp_tc.tc_hits);
    EXPECT_EQ(tc.tc_misses, interp_tc.tc_misses);
    EXPECT_EQ(tc.tc_fills, interp_tc.tc_fills);

    ICache fe_cache(geometry);
    const frontend::FrontEndResult fe_result =
        frontend::run_seq3_frontend(plan.value(), params, fe, &fe_cache);
    EXPECT_EQ(fe_result.fetch.cycles, interp_fe.fetch.cycles);
    EXPECT_EQ(fe_result.frontend.bp_mispredicts,
              interp_fe.frontend.bp_mispredicts);
    EXPECT_EQ(fe_result.frontend.prefetch_issued,
              interp_fe.frontend.prefetch_issued);
  }
}

// A compiled plan built with one line size must still serve a simulator run
// at a different line size (the tables are bypassed, not misused).
TEST(ReplayModesDirect, CompiledPlanWithMismatchedLineSizeStaysCorrect) {
  Rng rng(778);
  const auto image = testing::random_image(rng, 20);
  const auto wcfg = testing::random_wcfg(*image, rng);
  const trace::BlockTrace trace = testing::random_trace(*image, rng, 5000);
  const cfg::AddressMap layout = cfg::AddressMap::original(*image);

  Result<ReplayPlan> plan =
      build_replay_plan(ReplayMode::kCompiled, trace, *image, layout, 64);
  ASSERT_TRUE(plan.is_ok());
  const CacheGeometry geometry{1024, 32, 1};  // 32B lines, tables are 64B
  ICache interp_cache(geometry);
  const MissRateResult interp =
      run_missrate(trace, *image, layout, interp_cache);
  ICache replay_cache(geometry);
  const MissRateResult replayed =
      replay_missrate(plan.value(), replay_cache);
  EXPECT_EQ(replayed.misses, interp.misses);
  EXPECT_EQ(replayed.line_accesses, interp.line_accesses);
}

// ---- Fuzz regression corpus through the replay-diff check ----------------
// The shapes below mirror tests/verify/regression_cases.cpp (the corpus the
// PR 2/3 fuzzers minimized); any replay-engine divergence on them would have
// been found by stc_fuzz --replay-diff and belongs here shrunken.

verify::FuzzCase corpus_empty() {
  verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  return c;
}

verify::FuzzCase corpus_single_block() {
  verify::FuzzCase c;
  c.cache_bytes = 512;
  c.cfa_bytes = 128;
  c.line_bytes = 16;
  c.routines = {{{{1, cfg::BlockKind::kReturn}}, false}};
  c.trace = {0, 0, 0};
  c.seeds = {0};
  return c;
}

verify::FuzzCase corpus_oversized_block() {
  verify::FuzzCase c;
  c.cache_bytes = 512;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  c.routines = {
      {{{100, cfg::BlockKind::kBranch}, {1, cfg::BlockKind::kReturn}}, false},
      {{{2, cfg::BlockKind::kReturn}}, false},
  };
  c.edges = {{0, 0, 50}, {0, 1, 10}};
  c.trace = {0, 0, 1, 2, 0};
  c.seeds = {0};
  return c;
}

verify::FuzzCase corpus_deep_calls() {
  verify::FuzzCase c;
  c.cache_bytes = 1024;
  c.cfa_bytes = 256;
  c.line_bytes = 32;
  for (int d = 0; d < 8; ++d) {
    c.routines.push_back(
        {{{2, cfg::BlockKind::kCall}, {1, cfg::BlockKind::kReturn}}, false});
  }
  for (std::uint32_t d = 0; d < 8; ++d) c.trace.push_back(2 * d);
  for (std::uint32_t d = 8; d-- > 0;) c.trace.push_back(2 * d + 1);
  return c;
}

TEST(ReplayModesCorpus, EmptyProgram) {
  const verify::Report r = verify::run_replay_diff(corpus_empty());
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ReplayModesCorpus, SingleBlockProgram) {
  const verify::Report r = verify::run_replay_diff(corpus_single_block());
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ReplayModesCorpus, BlockLargerThanInterCfaWindow) {
  const verify::Report r = verify::run_replay_diff(corpus_oversized_block());
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ReplayModesCorpus, DeepCallReturnChain) {
  const verify::Report r = verify::run_replay_diff(corpus_deep_calls());
  EXPECT_TRUE(r.ok()) << r.summary();
}

}  // namespace
}  // namespace stc::sim
