#include "cfg/program.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::cfg {
namespace {

TEST(ProgramImageTest, RegistersRoutinesAndBlocks) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  const RoutineId r = b.routine(
      "f", m,
      {{"entry", 4, BlockKind::kFallThrough}, {"ret", 2, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_EQ(image->num_modules(), 1u);
  EXPECT_EQ(image->num_routines(), 1u);
  EXPECT_EQ(image->num_blocks(), 2u);
  EXPECT_EQ(image->total_instructions(), 6u);
  EXPECT_EQ(image->routine(r).name, "f");
  EXPECT_EQ(image->routine(r).num_blocks, 2u);
  EXPECT_EQ(image->module_name(m), "mod");
}

TEST(ProgramImageTest, OriginalAddressesAreContiguousWithinRoutine) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  const RoutineId r = b.routine("f", m,
                                {{"a", 4, BlockKind::kFallThrough},
                                 {"b", 3, BlockKind::kBranch},
                                 {"c", 2, BlockKind::kReturn}});
  auto image = b.build();
  const BlockId a = image->block_id(r, "a");
  const BlockId bb = image->block_id(r, "b");
  const BlockId c = image->block_id(r, "c");
  EXPECT_EQ(image->block(bb).orig_addr,
            image->block(a).orig_addr + image->block(a).bytes());
  EXPECT_EQ(image->block(c).orig_addr,
            image->block(bb).orig_addr + image->block(bb).bytes());
}

TEST(ProgramImageTest, RoutinesAlignedLikeCompilerOutput) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  b.routine("f", m, {{"a", 1, BlockKind::kReturn}});  // 4 bytes
  const RoutineId g = b.routine("g", m, {{"a", 1, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_EQ(image->routine(g).orig_addr % 16, 0u);
  EXPECT_EQ(image->routine(g).orig_addr, 16u);
}

TEST(ProgramImageTest, ModuleOrderDefinesLayoutOrder) {
  ProgramBuilder b;
  const ModuleId m1 = b.module("first");
  const ModuleId m2 = b.module("second");
  // Register in the opposite order of modules.
  const RoutineId late = b.routine("late", m2, {{"a", 1, BlockKind::kReturn}});
  const RoutineId early = b.routine("early", m1, {{"a", 1, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_LT(image->routine(early).orig_addr, image->routine(late).orig_addr);
}

TEST(ProgramImageTest, LookupsByName) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  const RoutineId r =
      b.routine("lookup_me", m, {{"x", 1, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_EQ(image->routine_id("lookup_me"), r);
  EXPECT_EQ(image->block_id(r, "x"), image->routine(r).entry);
}

TEST(ProgramImageTest, SameBlockNameAllowedInDifferentRoutines) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  const RoutineId r1 = b.routine("f", m, {{"entry", 1, BlockKind::kReturn}});
  const RoutineId r2 = b.routine("g", m, {{"entry", 1, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_NE(image->block_id(r1, "entry"), image->block_id(r2, "entry"));
}

TEST(ProgramImageTest, ExecutorOpFlagIsStored) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  const RoutineId op =
      b.routine("op", m, {{"x", 1, BlockKind::kReturn}}, true);
  const RoutineId plain = b.routine("plain", m, {{"x", 1, BlockKind::kReturn}});
  auto image = b.build();
  EXPECT_TRUE(image->routine(op).executor_op);
  EXPECT_FALSE(image->routine(plain).executor_op);
}

TEST(ProgramImageTest, RoutinesInOrderSortsByAddress) {
  ProgramBuilder b;
  const ModuleId m1 = b.module("m1");
  const ModuleId m2 = b.module("m2");
  b.routine("z", m2, {{"a", 1, BlockKind::kReturn}});
  b.routine("a", m1, {{"a", 1, BlockKind::kReturn}});
  auto image = b.build();
  const auto order = image->routines_in_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(image->routine(order[0]).name, "a");
  EXPECT_EQ(image->routine(order[1]).name, "z");
}

TEST(ProgramImageTest, ImageBytesCoversAllCode) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  b.routine("f", m, {{"a", 10, BlockKind::kReturn}});  // 40 bytes
  b.routine("g", m, {{"a", 5, BlockKind::kReturn}});   // 20 bytes @48
  auto image = b.build();
  EXPECT_EQ(image->image_bytes(), 48u + 20u);
}

TEST(ProgramImageDeathTest, DuplicateRoutineNameAborts) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  b.routine("dup", m, {{"a", 1, BlockKind::kReturn}});
  EXPECT_DEATH(b.routine("dup", m, {{"a", 1, BlockKind::kReturn}}),
               "duplicate routine");
}

TEST(ProgramImageDeathTest, DuplicateBlockNameAborts) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  EXPECT_DEATH(b.routine("f", m,
                         {{"same", 1, BlockKind::kBranch},
                          {"same", 1, BlockKind::kReturn}}),
               "duplicate block");
}

TEST(ProgramImageDeathTest, UnknownLookupAborts) {
  ProgramBuilder b;
  b.module("mod");
  auto image = b.build();
  EXPECT_DEATH((void)image->routine_id("missing"), "unknown routine");
}

TEST(ProgramImageDeathTest, ZeroSizeBlockAborts) {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  EXPECT_DEATH(b.routine("f", m, {{"a", 0, BlockKind::kReturn}}),
               "at least one instruction");
}

}  // namespace
}  // namespace stc::cfg
