#include "cfg/exec.h"

#include <gtest/gtest.h>

#include <vector>

#include "cfg/builder.h"

namespace stc::cfg {
namespace {

class RecordingSink : public TraceSink {
 public:
  void on_block(BlockId block) override { events.push_back(block); }
  std::vector<BlockId> events;
};

struct Fixture {
  Fixture() {
    ProgramBuilder b;
    const ModuleId m = b.module("mod");
    caller = b.routine("caller", m,
                       {{"entry", 2, BlockKind::kFallThrough},
                        {"call", 2, BlockKind::kCall},
                        {"after", 2, BlockKind::kBranch},
                        {"ret", 1, BlockKind::kReturn}});
    callee = b.routine("callee", m,
                       {{"entry", 2, BlockKind::kBranch},
                        {"ret", 1, BlockKind::kReturn}});
    image = b.build();
  }
  std::unique_ptr<ProgramImage> image;
  RoutineId caller = 0;
  RoutineId callee = 0;
};

TEST(ExecContextTest, EmitsBlocksToSink) {
  Fixture f;
  RecordingSink sink;
  ExecContext ctx(*f.image, &sink, /*validate=*/true);
  {
    RoutineScope scope(ctx, f.caller);
    ctx.bb(f.image->block_id(f.caller, "entry"));
    ctx.bb(f.image->block_id(f.caller, "call"));
    {
      RoutineScope inner(ctx, f.callee);
      ctx.bb(f.image->block_id(f.callee, "entry"));
      ctx.bb(f.image->block_id(f.callee, "ret"));
    }
    ctx.bb(f.image->block_id(f.caller, "after"));
    ctx.bb(f.image->block_id(f.caller, "ret"));
  }
  EXPECT_EQ(sink.events.size(), 6u);
  EXPECT_EQ(ctx.blocks_emitted(), 6u);
  EXPECT_EQ(ctx.call_depth(), 0u);
}

TEST(ExecContextTest, NullSinkStillCounts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  RoutineScope scope(ctx, f.callee);
  ctx.bb(f.image->block_id(f.callee, "entry"));
  ctx.bb(f.image->block_id(f.callee, "ret"));
  EXPECT_EQ(ctx.blocks_emitted(), 2u);
}

TEST(ExecContextTest, TeeFansOutToAllSinks) {
  Fixture f;
  RecordingSink a;
  RecordingSink b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  ExecContext ctx(*f.image, &tee, true);
  RoutineScope scope(ctx, f.callee);
  ctx.bb(f.image->block_id(f.callee, "entry"));
  ctx.bb(f.image->block_id(f.callee, "ret"));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.events.size(), 2u);
}

TEST(ExecContextTest, CallDepthTracksScopes) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  EXPECT_EQ(ctx.call_depth(), 0u);
  RoutineScope s1(ctx, f.caller);
  ctx.bb(f.image->block_id(f.caller, "entry"));
  ctx.bb(f.image->block_id(f.caller, "call"));
  EXPECT_EQ(ctx.call_depth(), 1u);
  {
    RoutineScope s2(ctx, f.callee);
    EXPECT_EQ(ctx.call_depth(), 2u);
    ctx.bb(f.image->block_id(f.callee, "entry"));
    ctx.bb(f.image->block_id(f.callee, "ret"));
  }
  EXPECT_EQ(ctx.call_depth(), 1u);
  ctx.bb(f.image->block_id(f.caller, "ret"));
}

TEST(ExecContextDeathTest, BlockOutsideScopeAborts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  EXPECT_DEATH(ctx.bb(0), "outside any RoutineScope");
}

TEST(ExecContextDeathTest, WrongEntryBlockAborts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  RoutineScope scope(ctx, f.caller);
  EXPECT_DEATH(ctx.bb(f.image->block_id(f.caller, "after")),
               "routine entry");
}

TEST(ExecContextDeathTest, ForeignBlockAborts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  RoutineScope scope(ctx, f.caller);
  EXPECT_DEATH(ctx.bb(f.image->block_id(f.callee, "entry")),
               "different routine");
}

TEST(ExecContextDeathTest, EnterFromNonCallBlockAborts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  EXPECT_DEATH(
      {
        RoutineScope scope(ctx, f.caller);
        ctx.bb(f.image->block_id(f.caller, "entry"));
        // "entry" is fall-through, not a call block.
        RoutineScope inner(ctx, f.callee);
      },
      "non-call block");
}

TEST(ExecContextDeathTest, FallThroughMustReachStaticSuccessor) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  EXPECT_DEATH(
      {
        RoutineScope scope(ctx, f.caller);
        ctx.bb(f.image->block_id(f.caller, "entry"));
        // Skipping "call" after a fall-through block is an error.
        ctx.bb(f.image->block_id(f.caller, "after"));
      },
      "fall-through");
}

TEST(ExecContextDeathTest, LeaveFromNonReturnBlockAborts) {
  Fixture f;
  ExecContext ctx(*f.image, nullptr, true);
  EXPECT_DEATH(
      {
        RoutineScope scope(ctx, f.callee);
        ctx.bb(f.image->block_id(f.callee, "entry"));
        // Scope ends here without reaching the return block.
      },
      "non-return block");
}

TEST(ExecContextTest, ValidationOffAcceptsAnything) {
  Fixture f;
  RecordingSink sink;
  ExecContext ctx(*f.image, &sink, /*validate=*/false);
  ctx.bb(f.image->block_id(f.caller, "after"));  // no scope, no checks
  EXPECT_EQ(sink.events.size(), 1u);
}

}  // namespace
}  // namespace stc::cfg
