#include "cfg/address_map.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::cfg {
namespace {

std::unique_ptr<ProgramImage> two_block_image() {
  ProgramBuilder b;
  const ModuleId m = b.module("mod");
  b.routine("f", m,
            {{"a", 4, BlockKind::kBranch}, {"b", 2, BlockKind::kReturn}});
  return b.build();
}

TEST(AddressMapTest, OriginalMatchesImageAddresses) {
  auto image = two_block_image();
  const AddressMap map = AddressMap::original(*image);
  EXPECT_EQ(map.name(), "orig");
  for (BlockId b = 0; b < image->num_blocks(); ++b) {
    EXPECT_EQ(map.addr(b), image->block(b).orig_addr);
  }
  map.validate(*image);
}

TEST(AddressMapTest, EndAddrAddsBlockBytes) {
  auto image = two_block_image();
  AddressMap map("test", image->num_blocks());
  map.set(0, 100);
  map.set(1, 200);
  EXPECT_EQ(map.end_addr(*image, 0), 100 + 16u);
  EXPECT_EQ(map.extent(*image), 200 + 8u);
}

TEST(AddressMapTest, AssignedTracksCoverage) {
  auto image = two_block_image();
  AddressMap map("test", image->num_blocks());
  EXPECT_FALSE(map.assigned(0));
  map.set(0, 0);
  EXPECT_TRUE(map.assigned(0));
  EXPECT_FALSE(map.assigned(1));
}

TEST(AddressMapDeathTest, ValidateRejectsUnassigned) {
  auto image = two_block_image();
  AddressMap map("test", image->num_blocks());
  map.set(0, 0);
  EXPECT_DEATH(map.validate(*image), "unassigned");
}

TEST(AddressMapDeathTest, ValidateRejectsOverlap) {
  auto image = two_block_image();
  AddressMap map("test", image->num_blocks());
  map.set(0, 0);    // 16 bytes: [0, 16)
  map.set(1, 8);    // overlaps
  EXPECT_DEATH(map.validate(*image), "overlap");
}

TEST(AddressMapTest, TouchingRangesAreLegal) {
  auto image = two_block_image();
  AddressMap map("test", image->num_blocks());
  map.set(0, 0);
  map.set(1, 16);  // starts exactly at end of block 0
  map.validate(*image);
}

}  // namespace
}  // namespace stc::cfg
