#include "trace/fetch_stream.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::trace {
namespace {

using cfg::BlockKind;

struct Fixture {
  Fixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    r = b.routine("f", m,
                  {{"A", 4, BlockKind::kFallThrough},
                   {"B", 2, BlockKind::kBranch},
                   {"C", 3, BlockKind::kReturn}});
    image = b.build();
    A = image->block_id(r, "A");
    B = image->block_id(r, "B");
    C = image->block_id(r, "C");
  }
  std::unique_ptr<cfg::ProgramImage> image;
  cfg::RoutineId r = 0;
  cfg::BlockId A = 0, B = 0, C = 0;
};

TEST(BlockRunStreamTest, SequentialTransitionsNotTaken) {
  Fixture f;
  BlockTrace t;
  t.append(f.A);
  t.append(f.B);  // B starts exactly at end of A under orig layout
  const auto layout = cfg::AddressMap::original(*f.image);
  BlockRunStream stream(t, *f.image, layout);
  BlockRun run;
  ASSERT_TRUE(stream.next(run));
  EXPECT_EQ(run.addr, f.image->block(f.A).orig_addr);
  EXPECT_EQ(run.insns, 4u);
  EXPECT_FALSE(run.ends_in_branch);  // fall-through block
  EXPECT_TRUE(run.has_next);
  EXPECT_FALSE(run.taken);
  ASSERT_TRUE(stream.next(run));
  EXPECT_TRUE(run.ends_in_branch);  // branch block
  EXPECT_FALSE(run.has_next);       // last run of the trace
  EXPECT_FALSE(stream.next(run));
}

TEST(BlockRunStreamTest, NonContiguousTransitionIsTaken) {
  Fixture f;
  BlockTrace t;
  t.append(f.A);
  t.append(f.C);  // skips B: addresses not adjacent
  const auto layout = cfg::AddressMap::original(*f.image);
  BlockRunStream stream(t, *f.image, layout);
  BlockRun run;
  ASSERT_TRUE(stream.next(run));
  EXPECT_TRUE(run.taken);
  EXPECT_EQ(run.next_addr, f.image->block(f.C).orig_addr);
}

TEST(BlockRunStreamTest, LayoutChangesTakenness) {
  Fixture f;
  BlockTrace t;
  t.append(f.A);
  t.append(f.C);
  // Custom layout placing C right after A.
  cfg::AddressMap layout("test", f.image->num_blocks());
  layout.set(f.A, 0);
  layout.set(f.C, 16);
  layout.set(f.B, 100);
  BlockRunStream stream(t, *f.image, layout);
  BlockRun run;
  ASSERT_TRUE(stream.next(run));
  EXPECT_FALSE(run.taken);  // A -> C is now sequential
}

TEST(BlockRunStreamTest, EmptyTrace) {
  Fixture f;
  BlockTrace t;
  const auto layout = cfg::AddressMap::original(*f.image);
  BlockRunStream stream(t, *f.image, layout);
  BlockRun run;
  EXPECT_FALSE(stream.next(run));
}

TEST(SequentialityTest, CountsInstructionsAndTakenBranches) {
  Fixture f;
  BlockTrace t;
  // A -> B sequential, B -> A taken (backward), A -> B sequential.
  t.append(f.A);
  t.append(f.B);
  t.append(f.A);
  t.append(f.B);
  const auto layout = cfg::AddressMap::original(*f.image);
  const SequentialityStats stats = measure_sequentiality(t, *f.image, layout);
  EXPECT_EQ(stats.instructions, 12u);
  EXPECT_EQ(stats.dynamic_blocks, 4u);
  EXPECT_EQ(stats.taken_transitions, 1u);  // only B -> A
  EXPECT_DOUBLE_EQ(stats.insns_between_taken_branches(), 12.0);
}

TEST(SequentialityTest, NoTakenBranchesMeansFullLength) {
  Fixture f;
  BlockTrace t;
  t.append(f.A);
  t.append(f.B);
  const auto layout = cfg::AddressMap::original(*f.image);
  const SequentialityStats stats = measure_sequentiality(t, *f.image, layout);
  EXPECT_EQ(stats.taken_transitions, 0u);
  EXPECT_DOUBLE_EQ(stats.insns_between_taken_branches(), 6.0);
}

TEST(SequentialityTest, LayoutImprovesMetric) {
  Fixture f;
  BlockTrace t;
  for (int i = 0; i < 10; ++i) {
    t.append(f.A);
    t.append(f.C);  // hot path A -> C
  }
  const auto orig = cfg::AddressMap::original(*f.image);
  cfg::AddressMap packed("packed", f.image->num_blocks());
  packed.set(f.A, 0);
  packed.set(f.C, 16);
  packed.set(f.B, 64);
  const auto before = measure_sequentiality(t, *f.image, orig);
  const auto after = measure_sequentiality(t, *f.image, packed);
  EXPECT_GT(after.insns_between_taken_branches(),
            before.insns_between_taken_branches());
}

}  // namespace
}  // namespace stc::trace
