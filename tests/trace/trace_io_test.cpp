#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/faultpoint.h"
#include "trace/block_trace.h"
#include "trace/trace_format.h"

namespace stc::trace {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Walks block ids deterministically; enough events to span several chunks.
std::vector<cfg::BlockId> make_events(std::size_t n) {
  std::vector<cfg::BlockId> ids;
  ids.reserve(n);
  std::uint64_t x = 99991;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    ids.push_back(static_cast<cfg::BlockId>((x >> 33) % 5000));
  }
  return ids;
}

// Writes a little-endian u64 in place (format::put_u64 appends).
void patch_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// Drops the version-3 index footer and patches the version field, producing
// the bytes a version-2 writer would have emitted.
std::vector<std::uint8_t> strip_to_v2(std::vector<std::uint8_t> bytes) {
  const std::uint64_t num_chunks = format::get_u64(&bytes[24]);
  bytes.resize(bytes.size() - format::footer_bytes(num_chunks));
  patch_u64(&bytes[8], format::kVersionV2);
  return bytes;
}

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override {
    fault::reset();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  // Streams `events` through a TraceFileWriter into path_.
  void write_file(const std::vector<cfg::BlockId>& events) {
    auto writer = TraceFileWriter::create(path_);
    ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
    for (const cfg::BlockId id : events) writer.value().append(id);
    const Status s = writer.value().finalize();
    ASSERT_TRUE(s.is_ok()) << s.to_string();
  }

  // Decodes every chunk of `reader` in order.
  std::vector<cfg::BlockId> decode_all(const TraceReader& reader) {
    std::vector<cfg::BlockId> out;
    for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
      auto r = reader.decode_chunk(c, out);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      reader.release_chunk(c);
    }
    return out;
  }

  // Per-test name: ctest runs the suite's tests in parallel processes.
  std::string path_ =
      temp_path((std::string("stc_trace_io_") +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".trace")
                    .c_str());
};

TEST_F(TraceIoTest, WriterMatchesInMemorySerializeMultiChunk) {
  // 80000 events encode past 64 KB, so the file spans several chunks; the
  // streamed bytes must equal BlockTrace::serialize() over the same events.
  const auto events = make_events(80000);
  BlockTrace trace;
  for (const cfg::BlockId id : events) trace.append(id);
  write_file(events);
  EXPECT_GT(trace.num_chunks(), 1u);
  EXPECT_EQ(slurp(path_), trace.serialize());
}

TEST_F(TraceIoTest, WriterMatchesInMemorySerializeEmpty) {
  write_file({});
  EXPECT_EQ(slurp(path_), BlockTrace().serialize());
}

TEST_F(TraceIoTest, WriterRenameFaultLeavesNoFile) {
  auto writer = TraceFileWriter::create(path_);
  ASSERT_TRUE(writer.is_ok());
  writer.value().append(7);
  fault::arm("trace.save.rename");
  const Status s = writer.value().finalize();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kFaultInjected);
  EXPECT_FALSE(std::ifstream(path_).good());
  EXPECT_FALSE(std::ifstream(path_ + ".tmp").good());
}

TEST_F(TraceIoTest, SeekToChunkMatchesInMemoryDecode) {
  const auto events = make_events(80000);
  BlockTrace trace;
  for (const cfg::BlockId id : events) trace.append(id);
  write_file(events);

  auto opened = TraceReader::open(path_);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  const TraceReader reader = std::move(opened).take();
  ASSERT_EQ(reader.num_chunks(), trace.num_chunks());
  ASSERT_EQ(reader.num_events(), trace.num_events());

  // Random access: decode chunks in reverse order, each independently, and
  // compare against the in-memory chunk decoder.
  for (std::size_t c = reader.num_chunks(); c-- > 0;) {
    std::vector<cfg::BlockId> from_file;
    auto r = reader.decode_chunk(c, from_file);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    std::vector<cfg::BlockId> from_memory;
    trace.decode_chunk(c, from_memory);
    EXPECT_EQ(from_file, from_memory) << "chunk " << c;
    EXPECT_EQ(r.value(), reader.chunk_events(c));
  }
  EXPECT_EQ(decode_all(reader), events);
}

TEST_F(TraceIoTest, SingleChunkCorruptionLeavesOtherChunksReadable) {
  write_file(make_events(80000));
  auto bytes = slurp(path_);
  // Flip a payload byte in the middle of the file: chunk 1's payload for any
  // multi-chunk trace (chunk 0 starts at byte 56).
  bytes[format::kHeaderBytes + format::kChunkHeaderBytes +
        format::kChunkTargetBytes + 2 * format::kChunkHeaderBytes + 10] ^=
      0x40;
  spit(path_, bytes);

  auto opened = TraceReader::open(path_);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  const TraceReader& reader = opened.value();
  ASSERT_GE(reader.num_chunks(), 3u);
  std::vector<cfg::BlockId> out;
  const auto bad = reader.decode_chunk(1, out);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kCorruptData);
  EXPECT_NE(bad.status().message().find("chunk 1"), std::string::npos);
  EXPECT_TRUE(out.empty());  // failed decode leaves `out` untouched
  EXPECT_TRUE(reader.decode_chunk(0, out).is_ok());
  EXPECT_TRUE(reader.decode_chunk(2, out).is_ok());
}

TEST_F(TraceIoTest, ChunkHeaderDisagreementIsCaughtAtDecode) {
  write_file(make_events(80000));
  auto bytes = slurp(path_);
  // Corrupt chunk 0's on-disk header (its events field). The CRC-protected
  // index footer is untouched, so open() succeeds; the lazy header check in
  // decode_chunk must flag the disagreement.
  patch_u64(&bytes[format::kHeaderBytes + 8], 1);
  spit(path_, bytes);

  auto opened = TraceReader::open(path_);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  std::vector<cfg::BlockId> out;
  const auto bad = opened.value().decode_chunk(0, out);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kCorruptData);
  EXPECT_NE(bad.status().message().find("disagrees with chunk header"),
            std::string::npos);
}

TEST_F(TraceIoTest, TruncatedFooterFailsOpen) {
  write_file(make_events(1000));
  auto bytes = slurp(path_);
  bytes.resize(bytes.size() - 8);
  spit(path_, bytes);
  auto opened = TraceReader::open(path_);
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), ErrorCode::kCorruptData);
}

TEST_F(TraceIoTest, Version2FileOpensAndDecodes) {
  const auto events = make_events(80000);
  BlockTrace trace;
  for (const cfg::BlockId id : events) trace.append(id);
  spit(path_, strip_to_v2(trace.serialize()));

  auto opened = TraceReader::open(path_);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().version(), format::kVersionV2);
  EXPECT_EQ(opened.value().num_chunks(), trace.num_chunks());
  EXPECT_EQ(decode_all(opened.value()), events);
}

TEST_F(TraceIoTest, MmapFaultFallsBackToBufferedDecode) {
  const auto events = make_events(5000);
  write_file(events);
  fault::arm("trace.mmap.open");
  auto opened = TraceReader::open(path_);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_FALSE(opened.value().using_mmap());
  EXPECT_EQ(decode_all(opened.value()), events);  // release_chunk: no-op
}

TEST_F(TraceIoTest, StcMmapZeroForcesBufferedOpen) {
  const auto events = make_events(5000);
  write_file(events);
  ::setenv("STC_MMAP", "0", 1);
  auto buffered = TraceReader::open(path_);
  ::unsetenv("STC_MMAP");
  ASSERT_TRUE(buffered.is_ok());
  EXPECT_FALSE(buffered.value().using_mmap());
  EXPECT_EQ(decode_all(buffered.value()), events);

  auto mapped = TraceReader::open(path_);
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_TRUE(mapped.value().using_mmap());
}

TEST_F(TraceIoTest, OpenFaultPointSurfaces) {
  write_file(make_events(100));
  fault::arm("trace.load.open");
  auto opened = TraceReader::open(path_);
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), ErrorCode::kFaultInjected);
}

}  // namespace
}  // namespace stc::trace
