#include "trace/block_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "support/crc32.h"
#include "support/error.h"
#include "support/rng.h"
#include "trace/trace_format.h"

namespace stc::trace {
namespace {

TEST(BlockTraceTest, EmptyTrace) {
  BlockTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_events(), 0u);
  BlockTrace::Cursor cursor(t);
  EXPECT_TRUE(cursor.done());
}

TEST(BlockTraceTest, AppendAndIterate) {
  BlockTrace t;
  const std::vector<cfg::BlockId> ids = {5, 6, 7, 6, 5, 1000000, 0};
  for (auto id : ids) t.append(id);
  EXPECT_EQ(t.num_events(), ids.size());

  std::vector<cfg::BlockId> out;
  t.for_each([&](cfg::BlockId b) { out.push_back(b); });
  EXPECT_EQ(out, ids);
}

TEST(BlockTraceTest, CursorMatchesForEach) {
  BlockTrace t;
  Rng rng(5);
  std::vector<cfg::BlockId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(static_cast<cfg::BlockId>(rng.uniform(5000)));
    t.append(ids.back());
  }
  BlockTrace::Cursor cursor(t);
  for (auto id : ids) {
    ASSERT_FALSE(cursor.done());
    EXPECT_EQ(cursor.next(), id);
  }
  EXPECT_TRUE(cursor.done());
}

TEST(BlockTraceTest, DeltaCodingIsCompact) {
  BlockTrace t;
  // Sequential-ish ids (deltas of +-1) should cost ~1 byte per event.
  cfg::BlockId id = 1000;
  for (int i = 0; i < 10000; ++i) {
    id += (i % 2 == 0) ? 1 : -1;
    t.append(id);
  }
  EXPECT_LT(t.byte_size(), 11000u);
}

TEST(BlockTraceTest, CrossesChunkBoundaries) {
  BlockTrace t;
  // Enough large-delta events to span several 64KB chunks.
  for (int i = 0; i < 100000; ++i) {
    t.append(static_cast<cfg::BlockId>((i * 7919) % 1000003));
  }
  std::uint64_t n = 0;
  cfg::BlockId last = 0;
  t.for_each([&](cfg::BlockId b) {
    last = b;
    ++n;
  });
  EXPECT_EQ(n, 100000u);
  EXPECT_EQ(last, static_cast<cfg::BlockId>((99999 * 7919) % 1000003));
}

TEST(BlockTraceTest, ClearResets) {
  BlockTrace t;
  t.append(1);
  t.append(2);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.append(42);
  BlockTrace::Cursor cursor(t);
  EXPECT_EQ(cursor.next(), 42u);
}

TEST(BlockTraceTest, SaveAndLoadRoundTrip) {
  BlockTrace t;
  Rng rng(77);
  std::vector<cfg::BlockId> ids;
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(static_cast<cfg::BlockId>(rng.uniform(1 << 20)));
    t.append(ids.back());
  }
  const std::string path = ::testing::TempDir() + "/stc_trace_roundtrip.bin";
  ASSERT_TRUE(t.save(path).is_ok());
  auto loaded = BlockTrace::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().num_events(), t.num_events());
  std::size_t i = 0;
  loaded.value().for_each([&](cfg::BlockId b) {
    ASSERT_LT(i, ids.size());
    EXPECT_EQ(b, ids[i++]);
  });
  std::remove(path.c_str());
}

TEST(BlockTraceTest, AppendAfterLoadContinuesStream) {
  BlockTrace t;
  for (cfg::BlockId id = 100; id < 160; ++id) t.append(id);
  const auto bytes = t.serialize();
  auto loaded = BlockTrace::deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  BlockTrace resumed = std::move(loaded).take();
  resumed.append(161);
  t.append(161);
  EXPECT_EQ(resumed.serialize(), t.serialize());
}

TEST(BlockTraceTest, RecorderSinkAppends) {
  BlockTrace t;
  TraceRecorder recorder(t);
  recorder.on_block(3);
  recorder.on_block(9);
  EXPECT_EQ(t.num_events(), 2u);
}

TEST(BlockTraceTest, LoadMissingFileIsStructuredError) {
  auto loaded = BlockTrace::load("/nonexistent/path/trace.bin");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("/nonexistent/path/trace.bin"),
            std::string::npos);
}

// ---- corruption corpus -----------------------------------------------------
//
// Every entry mutates a valid serialized trace one way and asserts the
// deserializer rejects it with a structured kCorruptData error (never an
// abort, never a silently different trace).

class BlockTraceCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
      trace_.append(static_cast<cfg::BlockId>(rng.uniform(1 << 22)));
    }
    bytes_ = trace_.serialize();
  }

  static void put_u64_at(std::vector<std::uint8_t>& b, std::size_t pos,
                         std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      b[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  // Size of the version-3 index footer, read back from the header's chunk
  // count so the tests track the real chunking.
  std::size_t footer_size() const {
    return format::footer_bytes(format::get_u64(&bytes_[24]));
  }

  static Status expect_rejected(const std::vector<std::uint8_t>& bytes) {
    auto r = BlockTrace::deserialize(bytes.empty() ? nullptr : bytes.data(),
                                     bytes.size());
    EXPECT_FALSE(r.is_ok()) << "corrupt input was accepted";
    return r.is_ok() ? Status() : r.status();
  }

  BlockTrace trace_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(BlockTraceCorruptionTest, BadMagic) {
  bytes_[0] ^= 0xff;
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST_F(BlockTraceCorruptionTest, FutureVersion) {
  put_u64_at(bytes_, 8, 99);  // version field
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST_F(BlockTraceCorruptionTest, HeaderEventCountMismatch) {
  put_u64_at(bytes_, 16, trace_.num_events() + 1);
  EXPECT_EQ(expect_rejected(bytes_).code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, AbsurdChunkCount) {
  put_u64_at(bytes_, 24, ~0ull);  // num_chunks
  EXPECT_EQ(expect_rejected(bytes_).code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, TruncatedAtEveryStructuralBoundary) {
  // Empty file, partial header, header only, partial chunk header, chunk
  // header only, partial payload, and one-byte-short.
  const std::size_t boundaries[] = {0u,  1u,  31u, 32u, 40u,
                                    56u, 57u, bytes_.size() - 1};
  for (const std::size_t len : boundaries) {
    ASSERT_LE(len, bytes_.size());
    std::vector<std::uint8_t> prefix(bytes_.begin(),
                                     bytes_.begin() + static_cast<long>(len));
    EXPECT_EQ(expect_rejected(prefix).code(), ErrorCode::kCorruptData)
        << "prefix length " << len;
  }
}

TEST_F(BlockTraceCorruptionTest, PayloadCrcMismatch) {
  bytes_[bytes_.size() - footer_size() - 1] ^= 0x01;  // last payload byte
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("crc"), std::string::npos);
}

TEST_F(BlockTraceCorruptionTest, ChunkPayloadSizeRunsPastEnd) {
  put_u64_at(bytes_, 32, bytes_.size());  // chunk 0 payload_size
  EXPECT_EQ(expect_rejected(bytes_).code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, TrailingGarbage) {
  bytes_.push_back(0x00);
  EXPECT_EQ(expect_rejected(bytes_).code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, VarintOverflowInPayload) {
  // A hand-built file whose single chunk holds one 11-byte varint with every
  // continuation bit set: the decoder must flag the varint, not run away.
  std::vector<std::uint8_t> payload(11, 0xff);
  std::vector<std::uint8_t> file(32 + 24, 0);
  put_u64_at(file, 0, 0x53544331);  // magic
  put_u64_at(file, 8, 2);           // version
  put_u64_at(file, 16, 1);          // num_events
  put_u64_at(file, 24, 1);          // num_chunks
  put_u64_at(file, 32, payload.size());
  put_u64_at(file, 40, 1);          // chunk event count
  put_u64_at(file, 48, crc32(payload.data(), payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());
  const Status s = expect_rejected(file);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("varint"), std::string::npos);
}

// ---- version-3 index footer ------------------------------------------------

TEST_F(BlockTraceCorruptionTest, TruncatedFooter) {
  // Drop the trailer's last 8 bytes: the index magic is gone.
  bytes_.resize(bytes_.size() - 8);
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, IndexEntryDisagreesWithChunkHeader) {
  // Flip the first index entry's payload_bytes field; the chunk headers are
  // untouched, so the footer and the body now disagree.
  const std::size_t index_offset = bytes_.size() - footer_size();
  bytes_[index_offset + 8] ^= 0x01;
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("index"), std::string::npos);
}

TEST_F(BlockTraceCorruptionTest, IndexCrcMismatch) {
  // Flip a bit in the trailer's index crc field.
  bytes_[bytes_.size() - 16] ^= 0x01;
  const Status s = expect_rejected(bytes_);
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("index"), std::string::npos);
}

TEST_F(BlockTraceCorruptionTest, TrailerIndexOffsetWrong) {
  put_u64_at(bytes_, bytes_.size() - 32, 0);  // index_offset
  EXPECT_EQ(expect_rejected(bytes_).code(), ErrorCode::kCorruptData);
}

TEST(BlockTraceV3Test, SerializeEmitsVersion3WithIndexFooter) {
  BlockTrace t;
  for (cfg::BlockId id = 0; id < 100; ++id) t.append(id);
  const auto bytes = t.serialize();
  EXPECT_EQ(format::get_u64(&bytes[8]), format::kVersion);
  const std::uint64_t chunks = format::get_u64(&bytes[24]);
  ASSERT_GE(bytes.size(), format::footer_bytes(chunks));
  EXPECT_EQ(format::get_u64(&bytes[bytes.size() - 8]), format::kIndexMagic);
}

// Turns version-3 bytes into the version-2 encoding of the same trace: v2 is
// exactly v3 minus the index footer, with the header version patched.
std::vector<std::uint8_t> strip_to_v2(std::vector<std::uint8_t> bytes) {
  const std::uint64_t chunks = format::get_u64(&bytes[24]);
  bytes.resize(bytes.size() - format::footer_bytes(chunks));
  for (int i = 0; i < 8; ++i) {
    bytes[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(format::kVersionV2 >> (8 * i));
  }
  return bytes;
}

TEST(BlockTraceV3Test, Version2FilesStillLoadBitIdentically) {
  BlockTrace t;
  Rng rng(2024);
  for (int i = 0; i < 60000; ++i) {
    t.append(static_cast<cfg::BlockId>(rng.uniform(1 << 21)));
  }
  const auto v3 = t.serialize();
  const auto v2 = strip_to_v2(v3);
  ASSERT_LT(v2.size(), v3.size());
  auto loaded = BlockTrace::deserialize(v2.data(), v2.size());
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().num_events(), t.num_events());
  EXPECT_EQ(loaded.value().content_hash(), t.content_hash());
  // Re-serializing a v2 load upgrades it to the identical v3 bytes.
  EXPECT_EQ(loaded.value().serialize(), v3);
}

TEST(BlockTraceV3Test, Version2RejectsTrailingBytes) {
  BlockTrace t;
  for (cfg::BlockId id = 0; id < 50; ++id) t.append(id);
  auto v2 = strip_to_v2(t.serialize());
  v2.push_back(0x00);
  auto r = BlockTrace::deserialize(v2.data(), v2.size());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruptData);
}

TEST_F(BlockTraceCorruptionTest, CorruptFileOnDiskLoadsAsError) {
  bytes_[bytes_.size() / 2] ^= 0x40;
  const std::string path = ::testing::TempDir() + "/stc_trace_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes_.data(), 1, bytes_.size(), f), bytes_.size());
  std::fclose(f);
  auto loaded = BlockTrace::load(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruptData);
  // The error names the file so a failing bench run is actionable.
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stc::trace
