#include "trace/block_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "support/rng.h"

namespace stc::trace {
namespace {

TEST(BlockTraceTest, EmptyTrace) {
  BlockTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_events(), 0u);
  BlockTrace::Cursor cursor(t);
  EXPECT_TRUE(cursor.done());
}

TEST(BlockTraceTest, AppendAndIterate) {
  BlockTrace t;
  const std::vector<cfg::BlockId> ids = {5, 6, 7, 6, 5, 1000000, 0};
  for (auto id : ids) t.append(id);
  EXPECT_EQ(t.num_events(), ids.size());

  std::vector<cfg::BlockId> out;
  t.for_each([&](cfg::BlockId b) { out.push_back(b); });
  EXPECT_EQ(out, ids);
}

TEST(BlockTraceTest, CursorMatchesForEach) {
  BlockTrace t;
  Rng rng(5);
  std::vector<cfg::BlockId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(static_cast<cfg::BlockId>(rng.uniform(5000)));
    t.append(ids.back());
  }
  BlockTrace::Cursor cursor(t);
  for (auto id : ids) {
    ASSERT_FALSE(cursor.done());
    EXPECT_EQ(cursor.next(), id);
  }
  EXPECT_TRUE(cursor.done());
}

TEST(BlockTraceTest, DeltaCodingIsCompact) {
  BlockTrace t;
  // Sequential-ish ids (deltas of +-1) should cost ~1 byte per event.
  cfg::BlockId id = 1000;
  for (int i = 0; i < 10000; ++i) {
    id += (i % 2 == 0) ? 1 : -1;
    t.append(id);
  }
  EXPECT_LT(t.byte_size(), 11000u);
}

TEST(BlockTraceTest, CrossesChunkBoundaries) {
  BlockTrace t;
  // Enough large-delta events to span several 64KB chunks.
  for (int i = 0; i < 100000; ++i) {
    t.append(static_cast<cfg::BlockId>((i * 7919) % 1000003));
  }
  std::uint64_t n = 0;
  cfg::BlockId last = 0;
  t.for_each([&](cfg::BlockId b) {
    last = b;
    ++n;
  });
  EXPECT_EQ(n, 100000u);
  EXPECT_EQ(last, static_cast<cfg::BlockId>((99999 * 7919) % 1000003));
}

TEST(BlockTraceTest, ClearResets) {
  BlockTrace t;
  t.append(1);
  t.append(2);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.append(42);
  BlockTrace::Cursor cursor(t);
  EXPECT_EQ(cursor.next(), 42u);
}

TEST(BlockTraceTest, SaveAndLoadRoundTrip) {
  BlockTrace t;
  Rng rng(77);
  std::vector<cfg::BlockId> ids;
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(static_cast<cfg::BlockId>(rng.uniform(1 << 20)));
    t.append(ids.back());
  }
  const std::string path = ::testing::TempDir() + "/stc_trace_roundtrip.bin";
  t.save(path);
  const BlockTrace loaded = BlockTrace::load(path);
  EXPECT_EQ(loaded.num_events(), t.num_events());
  std::size_t i = 0;
  loaded.for_each([&](cfg::BlockId b) {
    ASSERT_LT(i, ids.size());
    EXPECT_EQ(b, ids[i++]);
  });
  std::remove(path.c_str());
}

TEST(BlockTraceTest, RecorderSinkAppends) {
  BlockTrace t;
  TraceRecorder recorder(t);
  recorder.on_block(3);
  recorder.on_block(9);
  EXPECT_EQ(t.num_events(), 2u);
}

TEST(BlockTraceDeathTest, LoadMissingFileAborts) {
  EXPECT_DEATH(BlockTrace::load("/nonexistent/path/trace.bin"), "cannot open");
}

}  // namespace
}  // namespace stc::trace
