// Property: with the perfect predictor (the default STC_BPRED) the bench
// measurement cells are byte-identical to the Table 3/4 baseline cells —
// the speculative front end cannot perturb the paper's reproduced numbers.
// Compares serialized results_json, so metrics, counters, key order and
// formatting are all covered.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cfg/address_map.h"
#include "support/experiment.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc {
namespace {

template <typename Measure>
std::string grid_json(Measure&& measure) {
  Rng rng(20260806);
  std::vector<std::unique_ptr<cfg::ProgramImage>> images;
  std::vector<trace::BlockTrace> traces;
  std::vector<cfg::AddressMap> layouts;
  for (int trial = 0; trial < 4; ++trial) {
    images.push_back(testing::random_image(rng, 5));
    traces.push_back(testing::random_trace(*images.back(), rng, 600));
    layouts.push_back(cfg::AddressMap::original(*images.back()));
  }
  ExperimentRunner runner("equiv");
  for (int trial = 0; trial < 4; ++trial) {
    runner.add("cell" + std::to_string(trial), [&, trial] {
      return measure(traces[trial], *images[trial], layouts[trial]);
    });
  }
  runner.run(1);
  return runner.results_json();
}

TEST(BpredEquivalenceTest, TransparentFrontEndLeavesSeq3CellsByteIdentical) {
  const sim::CacheGeometry geometry{1024, 32, 1};
  const frontend::FrontEndParams transparent;
  ASSERT_TRUE(transparent.transparent());
  const std::string baseline = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        return bench::measure_seq3(t, i, l, geometry);
      });
  const std::string frontend = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        return bench::measure_seq3_bpred(t, i, l, geometry, transparent);
      });
  EXPECT_EQ(baseline, frontend);
}

TEST(BpredEquivalenceTest, TransparentFrontEndLeavesTraceCacheCellsByteIdentical) {
  const sim::CacheGeometry geometry{1024, 32, 1};
  const sim::TraceCacheParams tc;
  const frontend::FrontEndParams transparent;
  const std::string baseline = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        return bench::measure_tc(t, i, l, geometry, tc);
      });
  const std::string frontend = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        return bench::measure_tc_bpred(t, i, l, geometry, tc, transparent);
      });
  EXPECT_EQ(baseline, frontend);
}

}  // namespace
}  // namespace stc
