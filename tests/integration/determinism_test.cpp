// End-to-end determinism: DESIGN.md promises that the whole pipeline —
// database build, workload execution, trace recording, layout construction,
// simulation — is a pure function of (scale factor, seed). Two independently
// constructed setups must therefore record byte-identical traces and produce
// identical miss-rate grids, serially or in parallel.
#include <gtest/gtest.h>

#include <vector>

#include "bench/common.h"

namespace stc {
namespace {

bench::Env tiny_env() {
  bench::Env env;
  env.scale_factor = 0.0005;
  env.seed = 19990401;
  env.line_bytes = 32;
  return env;
}

std::vector<cfg::BlockId> events_of(const trace::BlockTrace& trace) {
  std::vector<cfg::BlockId> events;
  events.reserve(trace.num_events());
  trace.for_each([&](cfg::BlockId b) { events.push_back(b); });
  return events;
}

// A miniature Table 3: miss rates for (cache size) x (orig, ops) cells,
// executed on the given setup with the given worker count.
std::string miss_grid_json(bench::Setup& setup, std::size_t threads) {
  ExperimentRunner runner("determinism_grid");
  const std::uint32_t caches[] = {1024, 2048};
  runner.time_phase("layouts", [&] {
    for (const std::uint32_t cache : caches) {
      setup.layout(core::LayoutKind::kOrig, 0, 0);
      setup.layout(core::LayoutKind::kStcOps, cache, cache / 4);
    }
  });
  for (const std::uint32_t cache : caches) {
    const sim::CacheGeometry dm{cache, setup.env().line_bytes, 1};
    const auto& orig = setup.layout(core::LayoutKind::kOrig, 0, 0);
    const auto& ops = setup.layout(core::LayoutKind::kStcOps, cache, cache / 4);
    runner.add(std::to_string(cache) + " orig",
               {{"cache", std::to_string(cache)}, {"layout", "orig"}},
               [&setup, &orig, dm] {
                 return bench::measure_miss(setup, orig, dm);
               });
    runner.add(std::to_string(cache) + " ops",
               {{"cache", std::to_string(cache)}, {"layout", "ops"}},
               [&setup, &ops, dm] {
                 return bench::measure_miss(setup, ops, dm);
               });
  }
  runner.run(threads);
  return runner.results_json();
}

TEST(DeterminismTest, IndependentSetupsRecordIdenticalTraces) {
  bench::Setup a(tiny_env());
  bench::Setup b(tiny_env());

  ASSERT_GT(a.training_trace().num_events(), 0u);
  ASSERT_GT(a.test_trace().num_events(), 0u);
  EXPECT_EQ(a.training_trace().num_events(), b.training_trace().num_events());
  EXPECT_EQ(a.test_trace().num_events(), b.test_trace().num_events());
  EXPECT_EQ(events_of(a.training_trace()), events_of(b.training_trace()));
  EXPECT_EQ(events_of(a.test_trace()), events_of(b.test_trace()));
}

TEST(DeterminismTest, IndependentSetupsProduceIdenticalMissGrids) {
  bench::Setup a(tiny_env());
  bench::Setup b(tiny_env());

  const std::string serial_a = miss_grid_json(a, 1);
  const std::string serial_b = miss_grid_json(b, 1);
  EXPECT_EQ(serial_a, serial_b);

  // The same grid fanned across workers must serialize identically too.
  bench::Setup c(tiny_env());
  EXPECT_EQ(miss_grid_json(c, 4), serial_a);
}

TEST(DeterminismTest, DifferentSeedsChangeTheWorkload) {
  bench::Setup a(tiny_env());
  bench::Env other = tiny_env();
  other.seed = 7;
  bench::Setup b(other);
  // The kernel image is fixed but the data-dependent paths differ: the two
  // traces must not be identical (guards against a seed that is ignored).
  EXPECT_NE(events_of(a.test_trace()), events_of(b.test_trace()));
}

}  // namespace
}  // namespace stc
