// Back-end integration properties:
//  - with STC_BACKEND=off (the default) the bench seq3 cells are
//    byte-identical to the plain Table 4 simulator — the back end cannot
//    perturb the paper's reproduced numbers (mirrors
//    bpred_equivalence_test.cpp for the PR 3 front end);
//  - a width-1 in-order machine and the default out-of-order machine both
//    match hand-computed golden cycle counts on a tiny synthetic program;
//  - an injected backend.dispatch fault fails the bench job structurally
//    (PR 4 contract) and succeeds on retry;
//  - measurement cells are deterministic across grid worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "backend/pipeline.h"
#include "bench/common.h"
#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "support/experiment.h"
#include "support/faultpoint.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc {
namespace {

template <typename Measure>
std::string grid_json(Measure&& measure) {
  Rng rng(20260806);
  std::vector<std::unique_ptr<cfg::ProgramImage>> images;
  std::vector<trace::BlockTrace> traces;
  std::vector<cfg::AddressMap> layouts;
  for (int trial = 0; trial < 4; ++trial) {
    images.push_back(testing::random_image(rng, 5));
    traces.push_back(testing::random_trace(*images.back(), rng, 600));
    layouts.push_back(cfg::AddressMap::original(*images.back()));
  }
  ExperimentRunner runner("equiv");
  for (int trial = 0; trial < 4; ++trial) {
    runner.add("cell" + std::to_string(trial), [&, trial] {
      return measure(traces[trial], *images[trial], layouts[trial]);
    });
  }
  runner.run(1);
  return runner.results_json();
}

TEST(BackendEquivalenceTest, OffBackendLeavesSeq3CellsByteIdentical) {
  if (!bench::backend_params().off()) {
    GTEST_SKIP() << "STC_BACKEND is set; the off-path identity does not apply";
  }
  const sim::CacheGeometry geometry{1024, 32, 1};
  // The reference cell re-derives the plain Table 4 measurement from the
  // simulator directly — exactly what measure_seq3 produced before the
  // back-end dispatch existed.
  const std::string baseline = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        sim::FetchParams params;
        sim::ICache cache(geometry);
        const sim::FetchResult sim = sim::run_seq3(t, i, l, params, &cache);
        ExperimentResult result;
        result.metric("ipc", sim.ipc());
        sim.export_counters(result.counters());
        cache.stats().export_counters(result.counters());
        result.counters().add("blocks", t.num_events());
        return result;
      });
  const std::string dispatched = grid_json(
      [&](const trace::BlockTrace& t, const cfg::ProgramImage& i,
          const cfg::AddressMap& l) {
        return bench::measure_seq3(t, i, l, geometry);
      });
  EXPECT_EQ(baseline, dispatched);
}

// Tiny program for the golden IPC checks: three 4-instruction blocks, laid
// out contiguously, executed once each. With a perfect i-cache and the
// transparent front end, one fetch cycle supplies all twelve instructions
// (width 16, the two fall-throughs and the return fit the branch limit), so
// every cycle after that is pure back-end behavior.
std::unique_ptr<cfg::ProgramImage> golden_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("golden");
  builder.routine("r", mod,
                  {{"b0", 4, cfg::BlockKind::kFallThrough},
                   {"b1", 4, cfg::BlockKind::kFallThrough},
                   {"b2", 4, cfg::BlockKind::kReturn}});
  return builder.build();
}

trace::BlockTrace golden_trace() {
  trace::BlockTrace trace;
  trace.append(0);
  trace.append(1);
  trace.append(2);
  return trace;
}

backend::BackendParams golden_base() {
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  bp.mem_latency = 0;   // the return block pays no memory charge
  bp.size_shift = 10;   // 4 >> 10 == 0: every op has latency base_latency=1
  return bp;
}

backend::BackendResult golden_run(const backend::BackendParams& bp) {
  const auto image = golden_image();
  const auto layout = cfg::AddressMap::original(*image);
  sim::FetchParams fetch;
  fetch.perfect_icache = true;
  const Result<backend::BackendResult> r = backend::run_seq3_backend(
      golden_trace(), *image, layout, fetch, frontend::FrontEndParams{}, bp,
      nullptr);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.value();
}

TEST(BackendEquivalenceTest, GoldenIpcInOrderWidthOne) {
  backend::BackendParams bp = golden_base();
  bp.kind = backend::BackendKind::kInOrder;
  bp.decode_width = 1;
  bp.issue_width = 1;
  bp.commit_width = 1;
  bp.iq_depth = 1;
  bp.rob_depth = 2;
  const backend::BackendResult r = golden_run(bp);
  // Hand-computed: cycle 0 fetches; ops dispatch one per cycle starting at
  // cycle 1 into the single-entry queue, each issuing the cycle after
  // dispatch and retiring the cycle after issue; the third op retires on
  // cycle 4 and the machine drains after cycle 4 — five cycles total.
  EXPECT_EQ(r.backend.cycles, 5u);
  EXPECT_EQ(r.backend.retired_ops, 3u);
  EXPECT_EQ(r.backend.retired_insns, 12u);
  EXPECT_DOUBLE_EQ(r.ipc(), 12.0 / 5.0);
}

TEST(BackendEquivalenceTest, GoldenIpcOooDefaultWidths) {
  const backend::BackendResult r = golden_run(golden_base());
  // Hand-computed: cycle 0 fetches, cycle 1 dispatches all three ops
  // (decode width 4) and none has a true dependence (registers derive from
  // distinct addresses), so all issue on cycle 1 and retire together on
  // cycle 2 (commit width 4) — three cycles total.
  EXPECT_EQ(r.backend.cycles, 3u);
  EXPECT_EQ(r.backend.retired_ops, 3u);
  EXPECT_EQ(r.backend.retired_insns, 12u);
  EXPECT_DOUBLE_EQ(r.ipc(), 4.0);
}

class BackendFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(BackendFaultTest, DispatchFaultFailsTheJobStructurally) {
  Rng rng(31);
  const auto image = testing::random_image(rng, 3);
  const auto trace = testing::random_trace(*image, rng, 100);
  const auto layout = cfg::AddressMap::original(*image);
  const sim::CacheGeometry geometry{1024, 32, 1};
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  frontend::FrontEndParams fe;

  fault::arm("backend.dispatch");
  ExperimentRunner runner("bft");
  const std::size_t job = runner.add("cell", [&] {
    return bench::measure_seq3_backend(trace, *image, layout, geometry, fe,
                                       bp);
  });
  runner.set_max_retries(0);
  runner.run(1);
  EXPECT_EQ(runner.job_status(job), JobStatus::kFailed);
  ASSERT_EQ(runner.failures().size(), 1u);
  const JobFailure& f = runner.failures()[0];
  EXPECT_EQ(f.error.code(), ErrorCode::kFaultInjected);
  EXPECT_NE(f.error.message().find("backend.dispatch"), std::string::npos)
      << f.error.message();
  EXPECT_NE(f.error.message().find("job 'cell'"), std::string::npos)
      << f.error.message();
  EXPECT_EQ(runner.exit_code(), 3);
}

TEST_F(BackendFaultTest, DispatchFaultSucceedsOnRetry) {
  Rng rng(37);
  const auto image = testing::random_image(rng, 3);
  const auto trace = testing::random_trace(*image, rng, 100);
  const auto layout = cfg::AddressMap::original(*image);
  const sim::CacheGeometry geometry{1024, 32, 1};
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  frontend::FrontEndParams fe;

  fault::arm("backend.dispatch");  // one-shot: consumed by the first attempt
  ExperimentRunner runner("bft");
  const std::size_t job = runner.add("cell", [&] {
    return bench::measure_seq3_backend(trace, *image, layout, geometry, fe,
                                       bp);
  });
  runner.set_max_retries(1);
  runner.run(1);
  EXPECT_EQ(runner.job_status(job), JobStatus::kOk);
  EXPECT_TRUE(runner.all_ok());
  EXPECT_GT(runner.result(job).counters().get("be_retired_insns"), 0u);
}

TEST(BackendEquivalenceTest, CellsAreDeterministicAcrossWorkerCounts) {
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  bp.iq_depth = 4;
  bp.rob_depth = 16;
  frontend::FrontEndParams fe;
  fe.kind = frontend::BpredKind::kGshare;
  const sim::CacheGeometry geometry{1024, 32, 1};
  const auto build = [&](std::size_t threads) {
    Rng rng(20260806);
    std::vector<std::unique_ptr<cfg::ProgramImage>> images;
    std::vector<trace::BlockTrace> traces;
    std::vector<cfg::AddressMap> layouts;
    for (int trial = 0; trial < 4; ++trial) {
      images.push_back(testing::random_image(rng, 5));
      traces.push_back(testing::random_trace(*images.back(), rng, 600));
      layouts.push_back(cfg::AddressMap::original(*images.back()));
    }
    ExperimentRunner runner("det");
    for (int trial = 0; trial < 4; ++trial) {
      runner.add("cell" + std::to_string(trial), [&, trial] {
        return bench::measure_seq3_backend(traces[trial], *images[trial],
                                           layouts[trial], geometry, fe, bp);
      });
    }
    runner.run(threads);
    return runner.results_json();
  };
  EXPECT_EQ(build(1), build(4));
}

}  // namespace
}  // namespace stc
