// End-to-end pipeline tests: profile the Training workload, build every
// layout, replay the Test workload through the simulators, and assert the
// paper's qualitative results (the numbers the benches print in full).
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "db/tpcd/workload.h"
#include "profile/locality.h"
#include "profile/profile.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/trace_cache.h"
#include "verify/oracle.h"

namespace stc {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db::tpcd::WorkloadConfig config;
    config.scale_factor = 0.002;
    btree_ = db::tpcd::make_database(config, db::IndexKind::kBTree).release();
    hash_ = db::tpcd::make_database(config, db::IndexKind::kHash).release();

    profile_ = new profile::Profile(db::kernel_image());
    training_ = new trace::BlockTrace();
    {
      trace::TraceRecorder recorder(*training_);
      cfg::TeeSink tee;
      tee.add(profile_);
      tee.add(&recorder);
      db::tpcd::run_training_workload(*btree_, &tee);
    }
    test_ = new trace::BlockTrace();
    {
      trace::TraceRecorder recorder(*test_);
      db::tpcd::run_test_workload(*btree_, *hash_, &recorder);
    }
    wcfg_ = new profile::WeightedCFG(
        profile::WeightedCFG::from_profile(*profile_));
  }
  static void TearDownTestSuite() {
    delete btree_;
    delete hash_;
    delete profile_;
    delete training_;
    delete test_;
    delete wcfg_;
    btree_ = nullptr;
    hash_ = nullptr;
    profile_ = nullptr;
    training_ = nullptr;
    test_ = nullptr;
    wcfg_ = nullptr;
  }

  static double miss_rate(const cfg::AddressMap& layout,
                          std::uint32_t cache_bytes) {
    sim::ICache cache({cache_bytes, 32, 1});
    return sim::run_missrate(*test_, db::kernel_image(), layout, cache)
        .misses_per_100_insns();
  }
  static double fetch_ipc(const cfg::AddressMap& layout,
                          std::uint32_t cache_bytes) {
    sim::ICache cache({cache_bytes, 32, 1});
    sim::FetchParams params;
    return sim::run_seq3(*test_, db::kernel_image(), layout, params, &cache)
        .ipc();
  }

  static db::Database* btree_;
  static db::Database* hash_;
  static profile::Profile* profile_;
  static trace::BlockTrace* training_;
  static trace::BlockTrace* test_;
  static profile::WeightedCFG* wcfg_;
};

db::Database* PipelineTest::btree_ = nullptr;
db::Database* PipelineTest::hash_ = nullptr;
profile::Profile* PipelineTest::profile_ = nullptr;
trace::BlockTrace* PipelineTest::training_ = nullptr;
trace::BlockTrace* PipelineTest::test_ = nullptr;
profile::WeightedCFG* PipelineTest::wcfg_ = nullptr;

// ---- Layout-equivalence oracle ---------------------------------------------
//
// Before trusting any number below: every layout built from the real TPC-D
// kernel must be semantically transparent on the real Test trace — valid
// permutation-plus-replication, exact replay equivalence, CFA occupancy per
// its own provenance, and simulator counters that survive an independent
// recount.

TEST_F(PipelineTest, EveryLayoutSatisfiesTheEquivalenceOracle) {
  for (const auto kind :
       {core::LayoutKind::kOrig, core::LayoutKind::kPettisHansen,
        core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
        core::LayoutKind::kStcOps}) {
    core::MappingProvenance provenance;
    const auto map =
        core::make_layout(kind, *wcfg_, 2048, 512, &provenance);
    verify::OracleOptions options;
    options.geometry = {2048, 32, 1};
    const auto report = verify::verify_layout(*test_, db::kernel_image(), map,
                                              &provenance, options);
    EXPECT_TRUE(report.ok()) << core::to_string(kind) << "\n"
                             << report.summary();
  }
}

// ---- Section 4 characterization -------------------------------------------

TEST_F(PipelineTest, Table1_SmallFractionOfCodeExecutes) {
  const auto fp = profile::footprint(*profile_);
  // The paper measures 12.7% of static instructions touched; our kernel
  // lands in the same band.
  EXPECT_GT(fp.instruction_fraction(), 0.05);
  EXPECT_LT(fp.instruction_fraction(), 0.35);
  EXPECT_LT(fp.routine_fraction(), 0.6);
}

TEST_F(PipelineTest, Figure2_ReferencesConcentrateInFewBlocks) {
  const auto curve = profile::cumulative_reference_curve(*profile_);
  const auto n90 = profile::blocks_for_fraction(curve, 0.90);
  // 90% of dynamic references from well under 20% of executed blocks.
  EXPECT_LT(static_cast<double>(n90) / static_cast<double>(curve.size()), 0.4);
}

TEST_F(PipelineTest, Section41_PopularBlocksReusedWithinFewInstructions) {
  const auto reuse = profile::reuse_distances(*training_, *profile_, 0.75);
  // The paper reports 33% of re-references within 250 instructions and 19%
  // within 100 for the top-75% blocks; ours must show the same strong
  // temporal locality (well above those floors on a smaller kernel).
  EXPECT_GT(reuse.fraction_below(250), 0.33);
  EXPECT_GT(reuse.fraction_below(100), 0.19);
}

TEST_F(PipelineTest, Table2_TransitionsAreMostlyPredictable) {
  const auto stats = profile::block_type_stats(*profile_);
  using cfg::BlockKind;
  EXPECT_DOUBLE_EQ(
      stats.by_kind[static_cast<int>(BlockKind::kFallThrough)].predictable,
      1.0);
  // Returns count as predictable (return-address stack, as in the paper).
  EXPECT_DOUBLE_EQ(
      stats.by_kind[static_cast<int>(BlockKind::kReturn)].predictable, 1.0);
  // The paper reports ~80% overall; this kernel routes more of its dynamic
  // blocks through megamorphic dispatch branches, so it lands a bit lower.
  EXPECT_GT(stats.overall_predictable, 0.6);
}

// ---- Section 7 evaluation ---------------------------------------------------

TEST_F(PipelineTest, Table3_LayoutsReduceMissRate) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 2048, 512);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 2048, 512);
  const auto auto_l =
      core::make_layout(core::LayoutKind::kStcAuto, *wcfg_, 2048, 512);
  const double m_orig = miss_rate(orig, 2048);
  const double m_ops = miss_rate(ops, 2048);
  const double m_auto = miss_rate(auto_l, 2048);
  EXPECT_GT(m_orig, 1.0);                 // the original layout thrashes
  EXPECT_LT(m_ops, m_orig * 0.4);         // >= 60% reduction (paper: 60-98%)
  EXPECT_LT(m_auto, m_orig * 0.5);
}

TEST_F(PipelineTest, Table3_AllProfileGuidedLayoutsBeatOriginal) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 2048, 512);
  const double m_orig = miss_rate(orig, 2048);
  for (const auto kind :
       {core::LayoutKind::kPettisHansen, core::LayoutKind::kTorrellas,
        core::LayoutKind::kStcAuto, core::LayoutKind::kStcOps}) {
    const auto layout = core::make_layout(kind, *wcfg_, 2048, 512);
    EXPECT_LT(miss_rate(layout, 2048), m_orig) << core::to_string(kind);
  }
}

TEST_F(PipelineTest, SequentialityDoublesLikeThePaper) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 4096, 1024);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 4096, 1024);
  const auto before =
      trace::measure_sequentiality(*test_, db::kernel_image(), orig);
  const auto after =
      trace::measure_sequentiality(*test_, db::kernel_image(), ops);
  // Paper: 8.9 -> 22.4 instructions between taken branches. Our dispatcher-
  // heavy kernel gains less, but the improvement must be substantial.
  EXPECT_GT(after.insns_between_taken_branches(),
            before.insns_between_taken_branches() * 1.25);
}

TEST_F(PipelineTest, Table4_FetchBandwidthImproves) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 4096, 1024);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 4096, 1024);
  EXPECT_GT(fetch_ipc(ops, 4096), fetch_ipc(orig, 4096) * 1.1);
}

TEST_F(PipelineTest, Table4_TraceCacheCombinesWithSoftwareLayout) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 4096, 1024);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 4096, 1024);
  sim::FetchParams params;
  sim::TraceCacheParams tc;
  tc.entries = 64;
  sim::ICache c1({4096, 32, 1});
  const double tc_orig = sim::run_trace_cache(*test_, db::kernel_image(), orig,
                                              params, tc, &c1)
                             .ipc();
  sim::ICache c2({4096, 32, 1});
  const double tc_ops = sim::run_trace_cache(*test_, db::kernel_image(), ops,
                                             params, tc, &c2)
                            .ipc();
  sim::ICache c3({4096, 32, 1});
  const double seq_orig =
      sim::run_seq3(*test_, db::kernel_image(), orig, params, &c3).ipc();
  // TC alone beats plain SEQ.3; TC + software layout beats TC alone.
  EXPECT_GT(tc_orig, seq_orig);
  EXPECT_GT(tc_ops, tc_orig);
}

TEST_F(PipelineTest, HardwareAlternativesHelpLessThanReordering) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 2048, 512);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 2048, 512);
  sim::ICache two_way({2048, 32, 2});
  const double m_2way =
      sim::run_missrate(*test_, db::kernel_image(), orig, two_way)
          .misses_per_100_insns();
  // 16 victim lines on the paper's 8-64KB caches ~= 1/16 of the smallest
  // cache; scaled to the 2KB cache that is 4 lines.
  sim::ICache victim({2048, 32, 1}, 4);
  const double m_victim =
      sim::run_missrate(*test_, db::kernel_image(), orig, victim)
          .misses_per_100_insns();
  const double m_ops = miss_rate(ops, 2048);
  // The paper's Table 3: all code layouts beat both hardware variants.
  EXPECT_LT(m_ops, m_2way);
  EXPECT_LT(m_ops, m_victim);
}

TEST_F(PipelineTest, ReplayIsLayoutIndependentInInstructionCount) {
  const auto orig = core::make_layout(core::LayoutKind::kOrig, *wcfg_, 2048, 512);
  const auto ops = core::make_layout(core::LayoutKind::kStcOps, *wcfg_, 2048, 512);
  const auto a = trace::measure_sequentiality(*test_, db::kernel_image(), orig);
  const auto b = trace::measure_sequentiality(*test_, db::kernel_image(), ops);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dynamic_blocks, b.dynamic_blocks);
}

}  // namespace
}  // namespace stc
