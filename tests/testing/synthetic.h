// Shared helpers for tests: synthetic programs, weighted CFGs and traces.
#pragma once

#include <memory>

#include "cfg/builder.h"
#include "cfg/program.h"
#include "profile/profile.h"
#include "support/rng.h"
#include "trace/block_trace.h"

namespace stc::testing {

// Random program: `routines` routines of 1..8 blocks with plausible kinds
// (entry anything, last block a return for multi-block routines).
inline std::unique_ptr<cfg::ProgramImage> random_image(Rng& rng,
                                                       int routines) {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("synthetic");
  for (int r = 0; r < routines; ++r) {
    const int nblocks = 1 + static_cast<int>(rng.uniform(8));
    std::vector<cfg::BlockDef> blocks;
    for (int b = 0; b < nblocks; ++b) {
      cfg::BlockKind kind;
      if (b + 1 == nblocks) {
        kind = cfg::BlockKind::kReturn;
      } else {
        const std::uint64_t pick = rng.uniform(10);
        kind = pick < 3   ? cfg::BlockKind::kFallThrough
               : pick < 8 ? cfg::BlockKind::kBranch
                          : cfg::BlockKind::kCall;
      }
      blocks.push_back({"b" + std::to_string(b),
                        static_cast<std::uint16_t>(1 + rng.uniform(12)),
                        kind});
    }
    builder.routine("r" + std::to_string(r), mod, std::move(blocks),
                    /*executor_op=*/rng.chance(0.1));
  }
  return builder.build();
}

// Random weighted CFG over an image: a random subset of blocks receives
// positive execution counts (skewed), and each executed block gets 0..4
// outgoing edges toward other executed blocks with weights that sum to at
// most its own count (so transition probabilities stay <= 1).
inline profile::WeightedCFG random_wcfg(const cfg::ProgramImage& image,
                                        Rng& rng,
                                        double executed_fraction = 0.5) {
  profile::WeightedCFG cfg;
  cfg.image = &image;
  cfg.block_count.assign(image.num_blocks(), 0);
  cfg.succs.resize(image.num_blocks());

  std::vector<cfg::BlockId> executed;
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    if (rng.chance(executed_fraction)) {
      cfg.block_count[b] = 1 + rng.zipf(10000, 1.1);
      executed.push_back(b);
    }
  }
  if (executed.empty() && image.num_blocks() > 0) {
    cfg.block_count[0] = 100;
    executed.push_back(0);
  }
  for (cfg::BlockId b : executed) {
    const int nedges = static_cast<int>(rng.uniform(5));
    std::uint64_t budget = cfg.block_count[b];
    for (int e = 0; e < nedges && budget > 0; ++e) {
      const cfg::BlockId to = rng.pick(executed);
      const std::uint64_t w = 1 + rng.uniform(budget);
      budget -= w;
      cfg.succs[b].push_back({to, w});
    }
    std::sort(cfg.succs[b].begin(), cfg.succs[b].end(),
              [](const auto& x, const auto& y) {
                if (x.count != y.count) return x.count > y.count;
                return x.to < y.to;
              });
  }
  return cfg;
}

// Arbitrary block-id trace over an image (simulators accept any sequence).
inline trace::BlockTrace random_trace(const cfg::ProgramImage& image, Rng& rng,
                                      std::size_t events) {
  trace::BlockTrace trace;
  for (std::size_t i = 0; i < events; ++i) {
    trace.append(static_cast<cfg::BlockId>(rng.uniform(image.num_blocks())));
  }
  return trace;
}

// ---- Degenerate families ---------------------------------------------------
//
// Edge-case program shapes the random generators above are unlikely to hit:
// empty programs, single-block programs, routines that are all one block,
// and blocks far larger than a cache line. Family index selects the shape so
// parameterized suites can sweep all of them by name.

inline constexpr int kNumDegenerateFamilies = 5;

inline const char* degenerate_family_name(int family) {
  switch (family) {
    case 0: return "EmptyProgram";
    case 1: return "SingleBlockProgram";
    case 2: return "AllSingleBlockRoutines";
    case 3: return "OversizedBlocks";
    case 4: return "NonReturnTails";
    default: return "Unknown";
  }
}

inline std::unique_ptr<cfg::ProgramImage> degenerate_image(Rng& rng,
                                                           int family) {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("degenerate");
  switch (family) {
    case 0:  // no routines at all
      break;
    case 1:  // the whole program is one block
      builder.routine("only", mod, {{"b0", 1, cfg::BlockKind::kReturn}});
      break;
    case 2: {  // many routines of exactly one block each
      const int n = 2 + static_cast<int>(rng.uniform(30));
      for (int r = 0; r < n; ++r) {
        builder.routine("r" + std::to_string(r), mod,
                        {{"b0", static_cast<std::uint16_t>(1 + rng.uniform(4)),
                          cfg::BlockKind::kReturn}});
      }
      break;
    }
    case 3: {  // blocks spanning many cache lines (up to ~1KB of code)
      const int n = 1 + static_cast<int>(rng.uniform(6));
      for (int r = 0; r < n; ++r) {
        std::vector<cfg::BlockDef> blocks;
        blocks.push_back({"big",
                          static_cast<std::uint16_t>(64 + rng.uniform(192)),
                          cfg::BlockKind::kBranch});
        blocks.push_back({"ret", 1, cfg::BlockKind::kReturn});
        builder.routine("r" + std::to_string(r), mod, std::move(blocks));
      }
      break;
    }
    case 4: {  // routines whose last block is not a return
      const int n = 2 + static_cast<int>(rng.uniform(8));
      for (int r = 0; r < n; ++r) {
        std::vector<cfg::BlockDef> blocks;
        blocks.push_back({"b0", static_cast<std::uint16_t>(1 + rng.uniform(8)),
                          cfg::BlockKind::kFallThrough});
        blocks.push_back({"b1", static_cast<std::uint16_t>(1 + rng.uniform(8)),
                          cfg::BlockKind::kBranch});
        builder.routine("r" + std::to_string(r), mod, std::move(blocks));
      }
      break;
    }
    default:
      break;
  }
  return builder.build();
}

// Weighted CFG that deliberately includes self-loops and zero-weight edges
// (profiles can produce both; layouts must tolerate them).
inline profile::WeightedCFG degenerate_wcfg(const cfg::ProgramImage& image,
                                            Rng& rng) {
  profile::WeightedCFG cfg;
  cfg.image = &image;
  cfg.block_count.assign(image.num_blocks(), 0);
  cfg.succs.resize(image.num_blocks());
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    if (rng.chance(0.3)) continue;  // unexecuted block
    cfg.block_count[b] = 1 + rng.zipf(1000, 1.1);
    if (rng.chance(0.3)) cfg.succs[b].push_back({b, cfg.block_count[b] / 2});
    if (rng.chance(0.3)) {
      cfg.succs[b].push_back(
          {static_cast<cfg::BlockId>(rng.uniform(image.num_blocks())), 0});
    }
    std::sort(cfg.succs[b].begin(), cfg.succs[b].end(),
              [](const auto& x, const auto& y) {
                if (x.count != y.count) return x.count > y.count;
                return x.to < y.to;
              });
  }
  return cfg;
}

}  // namespace stc::testing
