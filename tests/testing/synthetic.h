// Shared helpers for tests: synthetic programs, weighted CFGs and traces.
#pragma once

#include <memory>

#include "cfg/builder.h"
#include "cfg/program.h"
#include "profile/profile.h"
#include "support/rng.h"
#include "trace/block_trace.h"

namespace stc::testing {

// Random program: `routines` routines of 1..8 blocks with plausible kinds
// (entry anything, last block a return for multi-block routines).
inline std::unique_ptr<cfg::ProgramImage> random_image(Rng& rng,
                                                       int routines) {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("synthetic");
  for (int r = 0; r < routines; ++r) {
    const int nblocks = 1 + static_cast<int>(rng.uniform(8));
    std::vector<cfg::BlockDef> blocks;
    for (int b = 0; b < nblocks; ++b) {
      cfg::BlockKind kind;
      if (b + 1 == nblocks) {
        kind = cfg::BlockKind::kReturn;
      } else {
        const std::uint64_t pick = rng.uniform(10);
        kind = pick < 3   ? cfg::BlockKind::kFallThrough
               : pick < 8 ? cfg::BlockKind::kBranch
                          : cfg::BlockKind::kCall;
      }
      blocks.push_back({"b" + std::to_string(b),
                        static_cast<std::uint16_t>(1 + rng.uniform(12)),
                        kind});
    }
    builder.routine("r" + std::to_string(r), mod, std::move(blocks),
                    /*executor_op=*/rng.chance(0.1));
  }
  return builder.build();
}

// Random weighted CFG over an image: a random subset of blocks receives
// positive execution counts (skewed), and each executed block gets 0..4
// outgoing edges toward other executed blocks with weights that sum to at
// most its own count (so transition probabilities stay <= 1).
inline profile::WeightedCFG random_wcfg(const cfg::ProgramImage& image,
                                        Rng& rng,
                                        double executed_fraction = 0.5) {
  profile::WeightedCFG cfg;
  cfg.image = &image;
  cfg.block_count.assign(image.num_blocks(), 0);
  cfg.succs.resize(image.num_blocks());

  std::vector<cfg::BlockId> executed;
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    if (rng.chance(executed_fraction)) {
      cfg.block_count[b] = 1 + rng.zipf(10000, 1.1);
      executed.push_back(b);
    }
  }
  if (executed.empty() && image.num_blocks() > 0) {
    cfg.block_count[0] = 100;
    executed.push_back(0);
  }
  for (cfg::BlockId b : executed) {
    const int nedges = static_cast<int>(rng.uniform(5));
    std::uint64_t budget = cfg.block_count[b];
    for (int e = 0; e < nedges && budget > 0; ++e) {
      const cfg::BlockId to = rng.pick(executed);
      const std::uint64_t w = 1 + rng.uniform(budget);
      budget -= w;
      cfg.succs[b].push_back({to, w});
    }
    std::sort(cfg.succs[b].begin(), cfg.succs[b].end(),
              [](const auto& x, const auto& y) {
                if (x.count != y.count) return x.count > y.count;
                return x.to < y.to;
              });
  }
  return cfg;
}

// Arbitrary block-id trace over an image (simulators accept any sequence).
inline trace::BlockTrace random_trace(const cfg::ProgramImage& image, Rng& rng,
                                      std::size_t events) {
  trace::BlockTrace trace;
  for (std::size_t i = 0; i < events; ++i) {
    trace.append(static_cast<cfg::BlockId>(rng.uniform(image.num_blocks())));
  }
  return trace;
}

}  // namespace stc::testing
