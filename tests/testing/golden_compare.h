// Golden-file JSON comparison shared by the report schema-lock tests.
//
// Structure (key set, key ORDER, value kinds, array lengths) must match the
// golden exactly; numbers must match within tolerance; paths the caller
// declares volatile (wall-clock-derived fields) need only be present,
// numeric and sane. Key order is part of the schema: the writer guarantees
// insertion order, and consumers (CI validators, plotting scripts) rely on
// it. Regenerate any golden with STC_UPDATE_GOLDEN=1 and review the diff —
// a change here is a report-consumer-visible change.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "testing/json_parse.h"

namespace stc::testing {

using VolatilePredicate = bool (*)(const std::string& path);

inline void compare_json(const JsonValue& golden, const JsonValue& actual,
                         const std::string& path,
                         VolatilePredicate is_volatile) {
  ASSERT_EQ(static_cast<int>(golden.kind), static_cast<int>(actual.kind))
      << "value kind changed at " << path;
  switch (golden.kind) {
    case JsonValue::Kind::kObject: {
      ASSERT_EQ(golden.members.size(), actual.members.size())
          << "key set changed at " << path;
      for (std::size_t i = 0; i < golden.members.size(); ++i) {
        ASSERT_EQ(golden.members[i].first, actual.members[i].first)
            << "key #" << i << " changed at " << path;
        compare_json(golden.members[i].second, actual.members[i].second,
                     path.empty() ? golden.members[i].first
                                  : path + "." + golden.members[i].first,
                     is_volatile);
      }
      break;
    }
    case JsonValue::Kind::kArray: {
      ASSERT_EQ(golden.items.size(), actual.items.size())
          << "array length changed at " << path;
      for (std::size_t i = 0; i < golden.items.size(); ++i) {
        compare_json(golden.items[i], actual.items[i],
                     path + "[" + std::to_string(i) + "]", is_volatile);
      }
      break;
    }
    case JsonValue::Kind::kNumber: {
      if (is_volatile != nullptr && is_volatile(path)) {
        EXPECT_TRUE(std::isfinite(actual.number)) << path;
        EXPECT_GE(actual.number, 0.0) << path;
        break;
      }
      const double tol = 1e-9 * std::max(1.0, std::fabs(golden.number));
      EXPECT_NEAR(actual.number, golden.number, tol) << path;
      break;
    }
    case JsonValue::Kind::kString:
      EXPECT_EQ(golden.text, actual.text) << path;
      break;
    case JsonValue::Kind::kBool:
      EXPECT_EQ(golden.boolean, actual.boolean) << path;
      break;
    case JsonValue::Kind::kNull:
      break;
  }
}

// Compares `report` against the golden file at `golden_path`. With
// STC_UPDATE_GOLDEN set, rewrites the golden and skips the test instead.
inline void check_against_golden(const std::string& report,
                                 const std::string& golden_path,
                                 VolatilePredicate is_volatile) {
  if (std::getenv("STC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << report << "\n";
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();

  std::string golden_err;
  std::string actual_err;
  const JsonValue golden = parse_json(buf.str(), &golden_err);
  const JsonValue actual = parse_json(report, &actual_err);
  ASSERT_EQ(golden_err, "") << "golden file does not parse";
  ASSERT_EQ(actual_err, "") << "report does not parse";
  compare_json(golden, actual, "", is_volatile);
}

}  // namespace stc::testing
