// Compatibility shim: the test-only JSON parser moved to support/json_read.h
// when the sharded experiment runner started parsing report fragments in
// production code. Tests keep their stc::testing:: spelling.
#pragma once

#include "support/json_read.h"

namespace stc::testing {

using stc::JsonParser;
using stc::JsonValue;
using stc::parse_json;

}  // namespace stc::testing
