#include "db/tpcd/oltp.h"

#include <gtest/gtest.h>

#include "db/tpcd/workload.h"
#include "trace/block_trace.h"

namespace stc::db::tpcd {
namespace {

class OltpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.scale_factor = 0.001;
    db_ = make_database(config, IndexKind::kBTree).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* OltpTest::db_ = nullptr;

TEST_F(OltpTest, RunsTheConfiguredMix) {
  OltpConfig config;
  config.transactions = 200;
  const OltpStats stats = run_oltp_workload(*db_, config, nullptr);
  EXPECT_EQ(stats.order_status + stats.stock_checks + stats.new_orders,
            config.transactions);
  EXPECT_GT(stats.order_status, 50u);
  EXPECT_GT(stats.stock_checks, 50u);
  EXPECT_GT(stats.new_orders, 0u);
  EXPECT_GT(stats.rows_read, 0u);
  EXPECT_GT(stats.rows_inserted, stats.new_orders);  // order + lines
}

TEST_F(OltpTest, EmitsTraceEvents) {
  trace::BlockTrace recorded;
  trace::TraceRecorder recorder(recorded);
  OltpConfig config;
  config.transactions = 50;
  config.seed = 11;
  run_oltp_workload(*db_, config, &recorder);
  EXPECT_GT(recorded.num_events(), 10000u);
}

TEST_F(OltpTest, InsertedOrdersAreQueryable) {
  OltpConfig config;
  config.transactions = 100;
  config.order_status_fraction = 0.0;
  config.stock_check_fraction = 0.0;  // all new-order transactions
  config.seed = 23;
  const OltpStats stats = run_oltp_workload(*db_, config, nullptr);
  EXPECT_EQ(stats.new_orders, 100u);
  // The inserted orders live above the key floor and are index-reachable.
  const QueryResult result = db_->run_query(
      "SELECT COUNT(*) AS n FROM orders WHERE o_orderkey >= 1000000000");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0][0].as_int(), 100);
  // Their line items joined back through the index.
  const QueryResult lines = db_->run_query(
      "SELECT COUNT(*) AS n FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND o_orderkey >= 1000000000");
  EXPECT_GT(lines.rows[0][0].as_int(), 0);
}

TEST_F(OltpTest, ReadOnlyMixLeavesTablesUnchanged) {
  const std::uint64_t orders_before =
      db_->catalog().lookup("ORDERS")->heap->tuple_count();
  OltpConfig config;
  config.transactions = 50;
  config.order_status_fraction = 0.5;
  config.stock_check_fraction = 0.5;  // no inserts
  config.seed = 31;
  const OltpStats stats = run_oltp_workload(*db_, config, nullptr);
  EXPECT_EQ(stats.new_orders, 0u);
  EXPECT_EQ(db_->catalog().lookup("ORDERS")->heap->tuple_count(),
            orders_before);
}

TEST_F(OltpTest, DeterministicForSameSeed) {
  WorkloadConfig wconfig;
  wconfig.scale_factor = 0.0005;
  OltpConfig config;
  config.transactions = 60;
  trace::BlockTrace a;
  trace::BlockTrace b;
  {
    auto fresh = make_database(wconfig, IndexKind::kBTree);
    trace::TraceRecorder recorder(a);
    run_oltp_workload(*fresh, config, &recorder);
  }
  {
    auto fresh = make_database(wconfig, IndexKind::kBTree);
    trace::TraceRecorder recorder(b);
    run_oltp_workload(*fresh, config, &recorder);
  }
  ASSERT_EQ(a.num_events(), b.num_events());
  trace::BlockTrace::Cursor ca(a);
  trace::BlockTrace::Cursor cb(b);
  while (!ca.done()) ASSERT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace stc::db::tpcd
