// TPC-D generator tests: cardinalities, referential integrity, determinism
// and value-domain coverage (every query predicate must select something).
#include "db/tpcd/dbgen.h"

#include <gtest/gtest.h>

#include <set>

#include "db/tpcd/schema.h"

namespace stc::db::tpcd {
namespace {

class DbgenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(128);
    GenConfig config;
    config.scale_factor = 0.001;
    build_database(*db_, config, IndexKind::kBTree);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::vector<Tuple> all_rows(const char* table) {
    TableInfo* t = db_->catalog().lookup(table);
    EXPECT_NE(t, nullptr);
    std::vector<Tuple> rows;
    HeapFile::Scanner scanner(*t->heap);
    Tuple tuple;
    RID rid;
    while (scanner.next(tuple, rid)) rows.push_back(tuple);
    return rows;
  }

  static Database* db_;
};

Database* DbgenTest::db_ = nullptr;

TEST_F(DbgenTest, FixedTablesHaveSpecCardinalities) {
  EXPECT_EQ(all_rows("REGION").size(), 5u);
  EXPECT_EQ(all_rows("NATION").size(), 25u);
}

TEST_F(DbgenTest, ScaledTablesHaveExpectedSizes) {
  const GenConfig config{0.001, 19990401};
  EXPECT_EQ(all_rows("SUPPLIER").size(), config.suppliers());
  EXPECT_EQ(all_rows("CUSTOMER").size(), config.customers());
  EXPECT_EQ(all_rows("PART").size(), config.parts());
  EXPECT_EQ(all_rows("PARTSUPP").size(), config.parts() * 4);
  EXPECT_EQ(all_rows("ORDERS").size(), config.orders());
  // Lineitem: 1..7 lines per order.
  const auto lineitems = all_rows("LINEITEM").size();
  EXPECT_GE(lineitems, config.orders());
  EXPECT_LE(lineitems, config.orders() * 7);
}

TEST_F(DbgenTest, ReferentialIntegrityHolds) {
  std::set<std::int64_t> nations, suppliers, customers, parts, orders;
  for (const auto& r : all_rows("NATION")) nations.insert(r[0].as_int());
  for (const auto& r : all_rows("SUPPLIER")) suppliers.insert(r[0].as_int());
  for (const auto& r : all_rows("CUSTOMER")) customers.insert(r[0].as_int());
  for (const auto& r : all_rows("PART")) parts.insert(r[0].as_int());
  for (const auto& r : all_rows("ORDERS")) orders.insert(r[0].as_int());

  for (const auto& r : all_rows("SUPPLIER")) {
    EXPECT_TRUE(nations.count(r[3].as_int())) << "s_nationkey dangling";
  }
  for (const auto& r : all_rows("CUSTOMER")) {
    EXPECT_TRUE(nations.count(r[3].as_int()));
  }
  for (const auto& r : all_rows("PARTSUPP")) {
    EXPECT_TRUE(parts.count(r[0].as_int()));
    EXPECT_TRUE(suppliers.count(r[1].as_int()));
  }
  for (const auto& r : all_rows("ORDERS")) {
    EXPECT_TRUE(customers.count(r[1].as_int()));
  }
  for (const auto& r : all_rows("LINEITEM")) {
    EXPECT_TRUE(orders.count(r[0].as_int()));
    EXPECT_TRUE(parts.count(r[1].as_int()));
    EXPECT_TRUE(suppliers.count(r[2].as_int()));
  }
}

TEST_F(DbgenTest, NationRegionMappingMatchesSpec) {
  const auto nations = all_rows("NATION");
  for (const auto& r : nations) {
    if (r[1].as_string() == "GERMANY" || r[1].as_string() == "FRANCE") {
      EXPECT_EQ(r[2].as_int(), 3);  // EUROPE
    }
    if (r[1].as_string() == "BRAZIL") {
      EXPECT_EQ(r[2].as_int(), 1);  // AMERICA
    }
  }
}

TEST_F(DbgenTest, DateDomainsRespectSpec) {
  const std::int64_t start = date_from_ymd(1992, 1, 1);
  const std::int64_t end = date_from_ymd(1998, 8, 2);
  for (const auto& r : all_rows("ORDERS")) {
    EXPECT_GE(r[4].as_int(), start);
    EXPECT_LE(r[4].as_int(), end);
  }
  for (const auto& r : all_rows("LINEITEM")) {
    EXPECT_GT(r[10].as_int(), r[0].as_int() >= 0 ? start : 0);  // shipdate
    EXPECT_GT(r[12].as_int(), r[10].as_int());                  // receipt > ship
  }
}

TEST_F(DbgenTest, ValueDomainsCoverQueryPredicates) {
  // Q3/Q5/Q8/Q14/Q16 predicates need these values to exist.
  bool has_building = false;
  for (const auto& r : all_rows("CUSTOMER")) {
    if (r[6].as_string() == "BUILDING") has_building = true;
  }
  EXPECT_TRUE(has_building);

  bool has_promo = false;
  bool has_brass = false;
  for (const auto& r : all_rows("PART")) {
    const std::string& type = r[4].as_string();
    if (type.rfind("PROMO", 0) == 0) has_promo = true;
    if (type.size() >= 5 && type.substr(type.size() - 5) == "BRASS") {
      has_brass = true;
    }
    EXPECT_GE(r[5].as_int(), 1);
    EXPECT_LE(r[5].as_int(), 50);
  }
  EXPECT_TRUE(has_promo);
  EXPECT_TRUE(has_brass);

  bool has_mail_or_ship = false;
  bool has_return_r = false;
  for (const auto& r : all_rows("LINEITEM")) {
    const std::string& mode = r[14].as_string();
    if (mode == "MAIL" || mode == "SHIP") has_mail_or_ship = true;
    if (r[8].as_string() == "R") has_return_r = true;
  }
  EXPECT_TRUE(has_mail_or_ship);
  EXPECT_TRUE(has_return_r);
}

TEST_F(DbgenTest, DiscountAndQuantityRanges) {
  for (const auto& r : all_rows("LINEITEM")) {
    EXPECT_GE(r[4].as_double(), 1.0);    // quantity
    EXPECT_LE(r[4].as_double(), 50.0);
    EXPECT_GE(r[6].as_double(), 0.0);    // discount
    EXPECT_LE(r[6].as_double(), 0.10);
    EXPECT_GE(r[7].as_double(), 0.0);    // tax
    EXPECT_LE(r[7].as_double(), 0.08);
  }
}

TEST_F(DbgenTest, IndexesCoverAllTables) {
  const char* indexed[] = {"REGION", "NATION", "SUPPLIER", "CUSTOMER",
                           "PART", "PARTSUPP", "ORDERS", "LINEITEM"};
  for (const char* name : indexed) {
    EXPECT_FALSE(db_->catalog().lookup(name)->indexes.empty()) << name;
  }
  // Lineitem carries the three foreign-key indexes.
  EXPECT_EQ(db_->catalog().lookup("LINEITEM")->indexes.size(), 3u);
}

TEST(DbgenDeterminismTest, SameSeedSameData) {
  GenConfig config;
  config.scale_factor = 0.0005;
  Database a(64);
  build_database(a, config, IndexKind::kBTree);
  Database b(64);
  build_database(b, config, IndexKind::kBTree);
  TableInfo* ta = a.catalog().lookup("ORDERS");
  TableInfo* tb = b.catalog().lookup("ORDERS");
  ASSERT_EQ(ta->heap->tuple_count(), tb->heap->tuple_count());
  HeapFile::Scanner sa(*ta->heap);
  HeapFile::Scanner sb(*tb->heap);
  Tuple ra, rb;
  RID rida, ridb;
  while (sa.next(ra, rida)) {
    ASSERT_TRUE(sb.next(rb, ridb));
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t c = 0; c < ra.size(); ++c) {
      ASSERT_EQ(ra[c].compare(rb[c]), 0);
    }
  }
}

}  // namespace
}  // namespace stc::db::tpcd
