// Runs all 17 TPC-D queries on both database variants and sanity-checks the
// answers (result shapes, aggregate invariants, btree/hash agreement).
#include "db/tpcd/queries.h"

#include <gtest/gtest.h>

#include "db/tpcd/workload.h"
#include "trace/block_trace.h"

namespace stc::db::tpcd {
namespace {

class QueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.scale_factor = 0.002;
    btree_ = make_database(config, IndexKind::kBTree).release();
    hash_ = make_database(config, IndexKind::kHash).release();
  }
  static void TearDownTestSuite() {
    delete btree_;
    delete hash_;
    btree_ = nullptr;
    hash_ = nullptr;
  }

  static Database* btree_;
  static Database* hash_;
};

Database* QueriesTest::btree_ = nullptr;
Database* QueriesTest::hash_ = nullptr;

TEST_F(QueriesTest, DefinitionsAreComplete) {
  EXPECT_EQ(queries().size(), 17u);
  for (int id = 1; id <= 17; ++id) {
    EXPECT_EQ(query(id).id, id);
    EXPECT_NE(std::string(query(id).sql).find("SELECT"), std::string::npos);
  }
  EXPECT_EQ(training_set(), (std::vector<int>{3, 4, 5, 6, 9}));
  EXPECT_EQ(test_set(), (std::vector<int>{2, 3, 4, 6, 11, 12, 13, 14, 15, 17}));
}

TEST_F(QueriesTest, AllQueriesRunToCompletionOnBothVariants) {
  for (const QueryDef& def : queries()) {
    const QueryResult rb = btree_->run_query(def.sql);
    const QueryResult rh = hash_->run_query(def.sql);
    EXPECT_EQ(rb.schema.size(), rh.schema.size()) << "Q" << def.id;
  }
}

TEST_F(QueriesTest, BtreeAndHashVariantsAgreeOnAnswers) {
  // Both databases hold identical data (same generator seed); only the
  // access paths differ, so every query must return the same rows.
  for (const QueryDef& def : queries()) {
    const QueryResult rb = btree_->run_query(def.sql);
    const QueryResult rh = hash_->run_query(def.sql);
    ASSERT_EQ(rb.rows.size(), rh.rows.size()) << "Q" << def.id;
    // Queries with ORDER BY give deterministic row order; compare cell-wise
    // for those (all but Q4/Q6/Q14/Q17, which are single-row anyway).
    for (std::size_t r = 0; r < rb.rows.size(); ++r) {
      ASSERT_EQ(rb.rows[r].size(), rh.rows[r].size());
    }
  }
}

TEST_F(QueriesTest, Q1AggregatesAreInternallyConsistent) {
  const QueryResult r = btree_->run_query(query(1).sql);
  ASSERT_GE(r.rows.size(), 1u);
  ASSERT_EQ(r.schema.size(), 10u);
  for (const Tuple& row : r.rows) {
    const double sum_qty = row[2].as_double();
    const double avg_qty = row[6].as_double();
    const std::int64_t count = row[9].as_int();
    EXPECT_GT(count, 0);
    EXPECT_NEAR(avg_qty, sum_qty / static_cast<double>(count), 1e-6);
    // Discounted price can never exceed the base price.
    EXPECT_LE(row[4].as_double(), row[3].as_double());
  }
}

TEST_F(QueriesTest, Q3RespectsLimitAndOrdering) {
  const QueryResult r = btree_->run_query(query(3).sql);
  EXPECT_LE(r.rows.size(), 10u);
  for (std::size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1][1].as_double(), r.rows[i][1].as_double());
  }
}

TEST_F(QueriesTest, Q4CountsArePositiveAndOrdered) {
  const QueryResult r = btree_->run_query(query(4).sql);
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_GT(r.rows[i][1].as_int(), 0);
    if (i > 0) {
      EXPECT_LT(r.rows[i - 1][0].as_string(), r.rows[i][0].as_string());
    }
  }
}

TEST_F(QueriesTest, Q6ReturnsSingleRevenueCell) {
  const QueryResult r = btree_->run_query(query(6).sql);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].size(), 1u);
  EXPECT_GE(r.rows[0][0].as_double(), 0.0);
}

TEST_F(QueriesTest, Q12ProducesAtMostTwoShipmodes) {
  const QueryResult r = btree_->run_query(query(12).sql);
  EXPECT_LE(r.rows.size(), 2u);
  for (const Tuple& row : r.rows) {
    const std::string& mode = row[0].as_string();
    EXPECT_TRUE(mode == "MAIL" || mode == "SHIP");
    // high + low counts must both be non-negative.
    EXPECT_GE(row[1].as_int(), 0);
    EXPECT_GE(row[2].as_int(), 0);
  }
}

TEST_F(QueriesTest, Q13DistributionCoversAllOrderingCustomers) {
  const QueryResult r = btree_->run_query(query(13).sql);
  std::int64_t total_customers = 0;
  for (const Tuple& row : r.rows) total_customers += row[1].as_int();
  // Every counted customer ordered at least once.
  EXPECT_GT(total_customers, 0);
}

TEST_F(QueriesTest, Q14PercentageWithinRange) {
  const QueryResult r = btree_->run_query(query(14).sql);
  ASSERT_EQ(r.rows.size(), 1u);
  const double promo = r.rows[0][0].as_double();
  EXPECT_GE(promo, 0.0);
  EXPECT_LE(promo, 100.0);
}

TEST_F(QueriesTest, Q15TopSupplierHasMaximumRevenue) {
  const QueryResult r = btree_->run_query(query(15).sql);
  ASSERT_GE(r.rows.size(), 1u);
  // All returned suppliers share the same (maximal) revenue.
  const double revenue = r.rows[0][4].as_double();
  for (const Tuple& row : r.rows) {
    EXPECT_DOUBLE_EQ(row[4].as_double(), revenue);
  }
}

TEST_F(QueriesTest, Q16ExcludesComplaintSuppliers) {
  const QueryResult r = btree_->run_query(query(16).sql);
  for (const Tuple& row : r.rows) {
    EXPECT_NE(row[0].as_string(), "Brand#45");
    EXPECT_GT(row[3].as_int(), 0);
  }
}

TEST_F(QueriesTest, TrainingWorkloadEmitsTrace) {
  stc::trace::BlockTrace recorded;
  stc::trace::TraceRecorder recorder(recorded);
  run_training_workload(*btree_, &recorder);
  EXPECT_GT(recorded.num_events(), 100000u);
}

TEST_F(QueriesTest, TestWorkloadCoversBothDatabases) {
  stc::trace::BlockTrace recorded;
  stc::trace::TraceRecorder recorder(recorded);
  run_test_workload(*btree_, *hash_, &recorder);
  EXPECT_GT(recorded.num_events(), 200000u);
}

TEST_F(QueriesTest, WorkloadsAreDeterministic) {
  // Determinism holds from identical initial state: the buffer pool carries
  // warm pages between runs, so each run gets a fresh database.
  WorkloadConfig config;
  config.scale_factor = 0.0005;
  stc::trace::BlockTrace a;
  stc::trace::BlockTrace b;
  {
    auto fresh = make_database(config, IndexKind::kBTree);
    stc::trace::TraceRecorder recorder(a);
    run_training_workload(*fresh, &recorder);
  }
  {
    auto fresh = make_database(config, IndexKind::kBTree);
    stc::trace::TraceRecorder recorder(b);
    run_training_workload(*fresh, &recorder);
  }
  ASSERT_EQ(a.num_events(), b.num_events());
  stc::trace::BlockTrace::Cursor ca(a);
  stc::trace::BlockTrace::Cursor cb(b);
  while (!ca.done()) {
    ASSERT_EQ(ca.next(), cb.next());
  }
}

}  // namespace
}  // namespace stc::db::tpcd
