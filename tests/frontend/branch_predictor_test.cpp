#include "frontend/branch_predictor.h"

#include <gtest/gtest.h>

#include <vector>

#include "frontend/btb.h"

namespace stc::frontend {
namespace {

TEST(BpredKindTest, ParseRoundTrip) {
  for (BpredKind kind : {BpredKind::kPerfect, BpredKind::kAlwaysTaken,
                         BpredKind::kBimodal, BpredKind::kGshare,
                         BpredKind::kLocal}) {
    BpredKind parsed = BpredKind::kPerfect;
    EXPECT_TRUE(parse_bpred(to_string(kind), &parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  BpredKind out = BpredKind::kGshare;
  EXPECT_FALSE(parse_bpred("gselect", &out));
  EXPECT_FALSE(parse_bpred("", &out));
  EXPECT_EQ(out, BpredKind::kGshare);  // untouched on failure
}

TEST(BranchPredictorTest, PerfectHasNoPredictorObject) {
  EXPECT_EQ(make_predictor(BpredKind::kPerfect, 12), nullptr);
}

TEST(BranchPredictorTest, AlwaysTakenIsAlwaysTaken) {
  auto p = make_predictor(BpredKind::kAlwaysTaken, 12);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->predict(0x1000));
  p->update(0x1000, false);
  p->update(0x1000, false);
  p->update(0x1000, false);
  EXPECT_TRUE(p->predict(0x1000));
}

TEST(BranchPredictorTest, BimodalSaturatesBothDirections) {
  auto p = make_predictor(BpredKind::kBimodal, 10);
  for (int i = 0; i < 8; ++i) p->update(0x40, true);
  EXPECT_TRUE(p->predict(0x40));
  // Counters saturate: one contrary outcome must not flip the prediction.
  p->update(0x40, false);
  EXPECT_TRUE(p->predict(0x40));
  for (int i = 0; i < 8; ++i) p->update(0x40, false);
  EXPECT_FALSE(p->predict(0x40));
  // Independent PCs train independently.
  EXPECT_TRUE(p->predict(0x9000));  // weakly-taken init
}

// Trains the predictor on `period`-long repeating patterns and returns the
// hit fraction over the tail (training continues while measuring, as in the
// real front end).
double pattern_accuracy(BranchPredictor& p, std::uint64_t addr,
                        const std::vector<bool>& pattern, int rounds) {
  int hits = 0, total = 0;
  const int warmup = rounds / 2;
  for (int r = 0; r < rounds; ++r) {
    for (bool taken : pattern) {
      if (r >= warmup) {
        ++total;
        if (p.predict(addr) == taken) ++hits;
      }
      p.update(addr, taken);
    }
  }
  return static_cast<double>(hits) / total;
}

TEST(BranchPredictorTest, GshareLearnsAlternatingPattern) {
  auto gshare = make_predictor(BpredKind::kGshare, 10);
  auto bimodal = make_predictor(BpredKind::kBimodal, 10);
  const std::vector<bool> alternating = {true, false};
  const double g = pattern_accuracy(*gshare, 0x80, alternating, 100);
  const double b = pattern_accuracy(*bimodal, 0x80, alternating, 100);
  // Global history disambiguates T/N phases; a per-PC counter cannot.
  EXPECT_GT(g, 0.95);
  EXPECT_LT(b, 0.6);
}

TEST(BranchPredictorTest, LocalLearnsPeriodicPattern) {
  auto local = make_predictor(BpredKind::kLocal, 10);
  const std::vector<bool> loop_exit = {true, true, true, false};  // 4-trip loop
  EXPECT_GT(pattern_accuracy(*local, 0xc0, loop_exit, 100), 0.95);
}

TEST(BranchPredictorTest, ResetRestoresInitialState) {
  auto p = make_predictor(BpredKind::kBimodal, 8);
  for (int i = 0; i < 8; ++i) p->update(0x10, false);
  EXPECT_FALSE(p->predict(0x10));
  p->reset();
  EXPECT_TRUE(p->predict(0x10));  // back to weakly-taken
}

TEST(BtbTest, MissThenHitWithStoredTarget) {
  Btb btb(16);
  std::uint64_t target = 0;
  EXPECT_FALSE(btb.lookup(0x100, &target));
  btb.update(0x100, 0x2000);
  ASSERT_TRUE(btb.lookup(0x100, &target));
  EXPECT_EQ(target, 0x2000u);
  btb.update(0x100, 0x3000);  // retrain to a new target
  ASSERT_TRUE(btb.lookup(0x100, &target));
  EXPECT_EQ(target, 0x3000u);
}

TEST(BtbTest, ConflictEvictsButFullTagsPreventFalseHits) {
  Btb btb(16);
  // Same index (entries=16, insn stride 4): 0x100 and 0x100 + 16*4.
  btb.update(0x100, 0x2000);
  btb.update(0x140, 0x4000);
  std::uint64_t target = 0;
  EXPECT_FALSE(btb.lookup(0x100, &target));  // evicted, not aliased
  ASSERT_TRUE(btb.lookup(0x140, &target));
  EXPECT_EQ(target, 0x4000u);
}

TEST(RasTest, LifoOrderAndEmptyPop) {
  ReturnAddressStack ras(8);
  EXPECT_EQ(ras.pop(), 0u);  // empty -> sentinel
  ras.push(0x10);
  ras.push(0x20);
  ras.push(0x30);
  EXPECT_EQ(ras.size(), 3u);
  EXPECT_EQ(ras.pop(), 0x30u);
  EXPECT_EQ(ras.pop(), 0x20u);
  EXPECT_EQ(ras.pop(), 0x10u);
  EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasTest, OverflowOverwritesOldest) {
  ReturnAddressStack ras(4);
  for (std::uint64_t a = 1; a <= 6; ++a) ras.push(a * 0x10);
  EXPECT_EQ(ras.size(), 4u);
  EXPECT_EQ(ras.pop(), 0x60u);
  EXPECT_EQ(ras.pop(), 0x50u);
  EXPECT_EQ(ras.pop(), 0x40u);
  EXPECT_EQ(ras.pop(), 0x30u);
  EXPECT_EQ(ras.pop(), 0u);  // 0x10/0x20 were overwritten, not buried
}

}  // namespace
}  // namespace stc::frontend
