#include "frontend/front_end.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cfg/address_map.h"
#include "cfg/builder.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/trace_cache.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/oracle.h"

namespace stc::frontend {
namespace {

constexpr sim::CacheGeometry kGeometry{1024, 32, 1};

void expect_same_fetch(const sim::FetchResult& a, const sim::FetchResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.fetch_requests, b.fetch_requests);
  EXPECT_EQ(a.miss_requests, b.miss_requests);
  EXPECT_EQ(a.lines_missed, b.lines_missed);
  EXPECT_EQ(a.tc_hits, b.tc_hits);
  EXPECT_EQ(a.tc_misses, b.tc_misses);
  EXPECT_EQ(a.tc_fills, b.tc_fills);
  EXPECT_EQ(a.tc_probes, b.tc_probes);
}

void expect_zero_frontend(const FrontEndStats& s) {
  EXPECT_EQ(s.bp_lookups, 0u);
  EXPECT_EQ(s.bp_mispredicts, 0u);
  EXPECT_EQ(s.bp_bubble_cycles, 0u);
  EXPECT_EQ(s.btb_lookups, 0u);
  EXPECT_EQ(s.btb_misses, 0u);
  EXPECT_EQ(s.ras_pushes, 0u);
  EXPECT_EQ(s.ras_pops, 0u);
  EXPECT_EQ(s.prefetch_issued, 0u);
  EXPECT_EQ(s.prefetch_useful, 0u);
  EXPECT_EQ(s.prefetch_late, 0u);
  EXPECT_EQ(s.prefetch_evicted, 0u);
  EXPECT_EQ(s.prefetch_late_cycles, 0u);
}

// The transparent configuration (perfect prediction, no prefetch) must
// reproduce the baseline simulators byte for byte on random programs.
TEST(FrontEndTest, TransparentMatchesBaselineSeq3) {
  Rng rng(20260806);
  const FrontEndParams fe;  // perfect, no prefetch
  ASSERT_TRUE(fe.transparent());
  for (int trial = 0; trial < 10; ++trial) {
    const auto image = testing::random_image(rng, 4);
    if (image->num_blocks() == 0) continue;
    const auto trace = testing::random_trace(*image, rng, 400);
    const auto layout = cfg::AddressMap::original(*image);
    const sim::FetchParams params;
    sim::ICache base_cache(kGeometry);
    const sim::FetchResult base =
        sim::run_seq3(trace, *image, layout, params, &base_cache);
    sim::ICache fe_cache(kGeometry);
    const FrontEndResult spec =
        run_seq3_frontend(trace, *image, layout, params, fe, &fe_cache);
    expect_same_fetch(spec.fetch, base);
    expect_zero_frontend(spec.frontend);
  }
}

TEST(FrontEndTest, TransparentMatchesBaselineTraceCache) {
  Rng rng(19990401);
  const FrontEndParams fe;
  const sim::TraceCacheParams tc;
  for (int trial = 0; trial < 10; ++trial) {
    const auto image = testing::random_image(rng, 4);
    if (image->num_blocks() == 0) continue;
    const auto trace = testing::random_trace(*image, rng, 400);
    const auto layout = cfg::AddressMap::original(*image);
    const sim::FetchParams params;
    sim::ICache base_cache(kGeometry);
    const sim::FetchResult base =
        sim::run_trace_cache(trace, *image, layout, params, tc, &base_cache);
    sim::ICache fe_cache(kGeometry);
    const FrontEndResult spec = run_trace_cache_frontend(
        trace, *image, layout, params, tc, fe, &fe_cache);
    expect_same_fetch(spec.fetch, base);
    expect_zero_frontend(spec.frontend);
  }
}

TEST(FrontEndTest, TransparentMatchesBaselineOnDegenerateFamilies) {
  Rng rng(7);
  const FrontEndParams fe;
  const sim::FetchParams params;
  for (int family = 0; family < testing::kNumDegenerateFamilies; ++family) {
    const auto image = testing::degenerate_image(rng, family);
    const auto trace = image->num_blocks() == 0
                           ? trace::BlockTrace{}
                           : testing::random_trace(*image, rng, 200);
    const auto layout = cfg::AddressMap::original(*image);
    sim::ICache base_cache(kGeometry);
    const sim::FetchResult base =
        sim::run_seq3(trace, *image, layout, params, &base_cache);
    sim::ICache fe_cache(kGeometry);
    const FrontEndResult spec =
        run_seq3_frontend(trace, *image, layout, params, fe, &fe_cache);
    expect_same_fetch(spec.fetch, base);
    expect_zero_frontend(spec.frontend);
  }
}

// A branch whose direction alternates every visit: under the original
// layout the successor is adjacent on odd visits (not taken) and a
// backwards transfer on even ones (taken).
std::unique_ptr<cfg::ProgramImage> alternating_branch_image() {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("m");
  // All-branch loop body: no returns, so the RAS stays out of the picture
  // and misprediction counts isolate the direction predictors.
  builder.routine("r", mod,
                  {{"head", 2, cfg::BlockKind::kBranch},
                   {"near", 1, cfg::BlockKind::kBranch},
                   {"far", 1, cfg::BlockKind::kBranch}});
  return builder.build();
}

trace::BlockTrace alternating_trace(int rounds) {
  trace::BlockTrace trace;
  for (int i = 0; i < rounds; ++i) {
    trace.append(0);
    trace.append(i % 2 == 0 ? 1 : 2);  // adjacent vs. skip-over successor
  }
  return trace;
}

TEST(FrontEndTest, RealisticPredictorsReportMispredicts) {
  const auto image = alternating_branch_image();
  const auto layout = cfg::AddressMap::original(*image);
  const auto trace = alternating_trace(200);
  const sim::FetchParams params;
  const std::uint64_t expected =
      verify::trace_instructions(trace, *image);

  for (BpredKind kind : {BpredKind::kAlwaysTaken, BpredKind::kBimodal,
                         BpredKind::kGshare, BpredKind::kLocal}) {
    FrontEndParams fe;
    fe.kind = kind;
    fe.prefetch = true;
    sim::ICache cache(kGeometry);
    const FrontEndResult result =
        run_seq3_frontend(trace, *image, layout, params, fe, &cache);
    EXPECT_GT(result.frontend.bp_lookups, 0u) << to_string(kind);
    // The alternating branch defeats always-taken half the time; even the
    // adaptive predictors mispredict during warmup.
    EXPECT_GT(result.frontend.bp_mispredicts, 0u) << to_string(kind);
    EXPECT_EQ(result.frontend.bp_bubble_cycles,
              result.frontend.bp_mispredicts * fe.mispredict_penalty);
    // Bubbles and stalls only ever add cycles over the baseline.
    sim::ICache base_cache(kGeometry);
    const sim::FetchResult base =
        sim::run_seq3(trace, *image, layout, params, &base_cache);
    EXPECT_GE(result.fetch.cycles, base.cycles) << to_string(kind);
    // And the full oracle identity set holds.
    const verify::Report report = verify::check_frontend_result(
        result, params, fe, expected, /*with_trace_cache=*/false);
    EXPECT_TRUE(report.ok()) << to_string(kind) << ": " << report.summary();
  }
}

TEST(FrontEndTest, GshareLearnsTheAlternationAwayEventually) {
  const auto image = alternating_branch_image();
  const auto layout = cfg::AddressMap::original(*image);
  const sim::FetchParams params;
  FrontEndParams fe;
  fe.kind = BpredKind::kGshare;

  sim::ICache short_cache(kGeometry);
  const FrontEndResult short_run = run_seq3_frontend(
      alternating_trace(50), *image, layout, params, fe, &short_cache);
  sim::ICache long_cache(kGeometry);
  const FrontEndResult long_run = run_seq3_frontend(
      alternating_trace(2000), *image, layout, params, fe, &long_cache);
  // Warmup mispredictions stop accruing once the history table converges:
  // 40x the work must not cost anywhere near 40x the mispredicts.
  EXPECT_LT(long_run.frontend.bp_mispredicts,
            short_run.frontend.bp_mispredicts * 8);
}

// Call chain deeper than the RAS: `depth` frames {call, return-tail} plus a
// leaf routine with no call, so every push pairs with exactly one pop. A
// shallow stack overwrites the outer frames' return addresses, so returning
// past `ras_depth` mispredicts.
std::unique_ptr<cfg::ProgramImage> call_chain_image(int depth) {
  cfg::ProgramBuilder builder;
  const cfg::ModuleId mod = builder.module("m");
  for (int d = 0; d < depth; ++d) {
    builder.routine("f" + std::to_string(d), mod,
                    {{"body", 2, cfg::BlockKind::kCall},
                     {"tail", 1, cfg::BlockKind::kReturn}});
  }
  builder.routine("leaf", mod,
                  {{"work", 2, cfg::BlockKind::kBranch},
                   {"ret", 1, cfg::BlockKind::kReturn}});
  return builder.build();
}

trace::BlockTrace call_chain_trace(int depth, int rounds) {
  trace::BlockTrace trace;
  for (int r = 0; r < rounds; ++r) {
    for (int d = 0; d < depth; ++d) {
      trace.append(static_cast<cfg::BlockId>(2 * d));  // call down
    }
    trace.append(static_cast<cfg::BlockId>(2 * depth));      // leaf work
    trace.append(static_cast<cfg::BlockId>(2 * depth + 1));  // leaf return
    for (int d = depth; d-- > 0;) {
      trace.append(static_cast<cfg::BlockId>(2 * d + 1));  // return up
    }
  }
  return trace;
}

TEST(FrontEndTest, ShallowRasMispredictsDeepReturns) {
  constexpr int kDepth = 8;
  const auto image = call_chain_image(kDepth);
  const auto layout = cfg::AddressMap::original(*image);
  const auto trace = call_chain_trace(kDepth, 50);
  const sim::FetchParams params;

  const auto run_with_depth = [&](std::uint32_t ras_depth) {
    FrontEndParams fe;
    fe.kind = BpredKind::kGshare;
    fe.ras_depth = ras_depth;
    sim::ICache cache(kGeometry);
    return run_seq3_frontend(trace, *image, layout, params, fe, &cache);
  };
  const FrontEndResult shallow = run_with_depth(2);
  const FrontEndResult deep = run_with_depth(16);
  EXPECT_GT(shallow.frontend.ras_pushes, 0u);
  EXPECT_GT(shallow.frontend.ras_pops, 0u);
  // The bounded stack loses the outer 6 frames every round; the deep stack
  // holds the whole chain.
  EXPECT_GT(shallow.frontend.bp_mispredicts, deep.frontend.bp_mispredicts);
}

TEST(FrontEndTest, PrefetchingIssuesAndClassifiesPrefetches) {
  Rng rng(42);
  const auto image = testing::random_image(rng, 12);
  const auto trace = testing::random_trace(*image, rng, 3000);
  const auto layout = cfg::AddressMap::original(*image);
  const sim::FetchParams params;
  FrontEndParams fe;
  fe.kind = BpredKind::kGshare;
  fe.prefetch = true;
  // Small direct-mapped cache: plenty of misses for FDIP to hide.
  sim::ICache cache(sim::CacheGeometry{512, 32, 1});
  const FrontEndResult result =
      run_seq3_frontend(trace, *image, layout, params, fe, &cache);
  EXPECT_GT(result.frontend.prefetch_issued, 0u);
  EXPECT_LE(result.frontend.prefetch_useful + result.frontend.prefetch_late +
                result.frontend.prefetch_evicted,
            result.frontend.prefetch_issued);
  const verify::Report report = verify::check_frontend_result(
      result, params, fe, verify::trace_instructions(trace, *image),
      /*with_trace_cache=*/false);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FrontEndTest, TraceCacheFrontendSatisfiesOracle) {
  Rng rng(99);
  const auto image = testing::random_image(rng, 8);
  const auto trace = testing::random_trace(*image, rng, 2000);
  const auto layout = cfg::AddressMap::original(*image);
  const sim::FetchParams params;
  const sim::TraceCacheParams tc;
  FrontEndParams fe;
  fe.kind = BpredKind::kBimodal;
  fe.prefetch = true;
  sim::ICache cache(kGeometry);
  const FrontEndResult result = run_trace_cache_frontend(
      trace, *image, layout, params, tc, fe, &cache);
  EXPECT_GT(result.frontend.bp_lookups, 0u);
  // Probe identity survives speculative next-trace selection.
  EXPECT_EQ(result.fetch.tc_probes,
            result.fetch.tc_hits + result.fetch.tc_misses);
  const verify::Report report = verify::check_frontend_result(
      result, params, fe, verify::trace_instructions(trace, *image),
      /*with_trace_cache=*/true);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FrontEndTest, RunsAreDeterministic) {
  Rng rng(5);
  const auto image = testing::random_image(rng, 6);
  const auto trace = testing::random_trace(*image, rng, 1000);
  const auto layout = cfg::AddressMap::original(*image);
  const sim::FetchParams params;
  FrontEndParams fe;
  fe.kind = BpredKind::kLocal;
  fe.prefetch = true;
  const auto run_once = [&] {
    sim::ICache cache(kGeometry);
    return run_seq3_frontend(trace, *image, layout, params, fe, &cache);
  };
  const FrontEndResult a = run_once();
  const FrontEndResult b = run_once();
  expect_same_fetch(a.fetch, b.fetch);
  EXPECT_EQ(a.frontend.bp_mispredicts, b.frontend.bp_mispredicts);
  EXPECT_EQ(a.frontend.prefetch_issued, b.frontend.prefetch_issued);
  EXPECT_EQ(a.frontend.prefetch_useful, b.frontend.prefetch_useful);
  EXPECT_EQ(a.frontend.prefetch_late_cycles, b.frontend.prefetch_late_cycles);
}

}  // namespace
}  // namespace stc::frontend
