// The crash-safe journal: CRC-framed appends that survive SIGKILL at any
// byte, a reader that treats every torn tail as a clean "stop here", and a
// writer whose error paths never leave a partial frame behind.
#include "support/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/faultpoint.h"
#include "support/io.h"

namespace stc {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    path_ = ::testing::TempDir() + "/stc_journal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".journal";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fault::reset();
    std::remove(path_.c_str());
  }

  std::string slurp() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void dump(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(JournalTest, RoundTripsPayloadsInOrder) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  // Payloads with newlines, embedded frame magic, and emptiness: the framing
  // is length-prefixed, so none of these can confuse the reader.
  const std::string payloads[] = {"{\"index\": 0}\n{\"nested\": true}",
                                  "STCJ1 99 deadbeef", ""};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(writer.append(p).is_ok());
  }
  writer.close();

  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
  ASSERT_EQ(scan.value().payloads.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scan.value().payloads[i], payloads[i]);
  }
  EXPECT_FALSE(scan.value().torn);
  EXPECT_EQ(scan.value().valid_bytes, slurp().size());
  ASSERT_EQ(scan.value().record_ends.size(), 3u);
  EXPECT_EQ(scan.value().record_ends[2], scan.value().valid_bytes);
}

TEST_F(JournalTest, MissingFileIsAnEmptyScanNotAnError) {
  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().payloads.empty());
  EXPECT_EQ(scan.value().valid_bytes, 0u);
  EXPECT_FALSE(scan.value().torn);
}

TEST_F(JournalTest, EveryTruncationOfAValidJournalStopsCleanly) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  ASSERT_TRUE(writer.append("{\"index\": 0, \"status\": \"ok\"}").is_ok());
  ASSERT_TRUE(writer.append("{\"index\": 1, \"status\": \"failed\"}").is_ok());
  ASSERT_TRUE(writer.append("{\"index\": 2}").is_ok());
  writer.close();
  const std::string full = slurp();
  Result<JournalScan> whole = read_journal(path_);
  ASSERT_TRUE(whole.is_ok());
  const std::vector<std::size_t> ends = whole.value().record_ends;

  // A SIGKILL can stop the writer at any byte; whatever survives must parse
  // as an exact record prefix with the tail flagged, never garbage records.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    dump(full.substr(0, cut));
    Result<JournalScan> scan = read_journal(path_);
    ASSERT_TRUE(scan.is_ok()) << "cut at " << cut;
    std::size_t expect_records = 0;
    for (const std::size_t end : ends) {
      if (cut >= end) ++expect_records;
    }
    EXPECT_EQ(scan.value().payloads.size(), expect_records)
        << "cut at " << cut;
    const bool mid_record =
        cut != 0 && (expect_records == 0 || cut != ends[expect_records - 1]);
    EXPECT_EQ(scan.value().torn, mid_record) << "cut at " << cut;
  }
}

TEST_F(JournalTest, CorruptedBytesAreATornTailNotData) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  ASSERT_TRUE(writer.append("first").is_ok());
  ASSERT_TRUE(writer.append("second").is_ok());
  writer.close();
  std::string bytes = slurp();
  // Flip a payload byte of the second record: its CRC no longer checks out.
  bytes[bytes.size() - 2] ^= 0x20;
  dump(bytes);

  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().payloads.size(), 1u);
  EXPECT_EQ(scan.value().payloads[0], "first");
  EXPECT_TRUE(scan.value().torn);
  EXPECT_EQ(scan.value().tear_reason, "record crc mismatch");

  // Truncating to the reported valid prefix and appending continues cleanly.
  JournalWriter resumed;
  ASSERT_TRUE(resumed.open(path_, scan.value().valid_bytes).is_ok());
  ASSERT_TRUE(resumed.append("third").is_ok());
  resumed.close();
  Result<JournalScan> rescan = read_journal(path_);
  ASSERT_TRUE(rescan.is_ok());
  ASSERT_EQ(rescan.value().payloads.size(), 2u);
  EXPECT_EQ(rescan.value().payloads[1], "third");
  EXPECT_FALSE(rescan.value().torn);
}

TEST_F(JournalTest, OpenWithKeepZeroDiscardsAStaleJournal) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  ASSERT_TRUE(writer.append("stale").is_ok());
  writer.close();

  JournalWriter fresh;
  ASSERT_TRUE(fresh.open(path_, 0).is_ok());
  ASSERT_TRUE(fresh.append("new").is_ok());
  fresh.close();
  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().payloads.size(), 1u);
  EXPECT_EQ(scan.value().payloads[0], "new");
}

TEST_F(JournalTest, InjectedTearErrorLeavesNoPartialFrame) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  ASSERT_TRUE(writer.append("before the tear").is_ok());
  fault::arm("journal.append.tear");
  const Status torn = writer.append("the record that tears");
  ASSERT_FALSE(torn.is_ok());
  EXPECT_EQ(torn.code(), ErrorCode::kFaultInjected);
  // The failed append truncated its partial frame off; the journal is clean
  // and the writer still usable.
  ASSERT_TRUE(writer.append("after the tear").is_ok());
  writer.close();
  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().payloads.size(), 2u);
  EXPECT_EQ(scan.value().payloads[0], "before the tear");
  EXPECT_EQ(scan.value().payloads[1], "after the tear");
  EXPECT_FALSE(scan.value().torn);
}

TEST_F(JournalTest, OpenAndWriteFaultPointsSurfaceAsErrors) {
  {
    fault::arm("journal.open");
    JournalWriter writer;
    const Status s = writer.open(path_, 0);
    ASSERT_FALSE(s.is_ok());
    EXPECT_FALSE(writer.is_open());
  }
  fault::reset();
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, 0).is_ok());
  ASSERT_TRUE(writer.append("kept").is_ok());
  fault::arm("journal.append.write");
  ASSERT_FALSE(writer.append("lost").is_ok());
  writer.close();
  Result<JournalScan> scan = read_journal(path_);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().payloads.size(), 1u);
  EXPECT_FALSE(scan.value().torn);
}

TEST_F(JournalTest, AppendOnAClosedWriterFails) {
  JournalWriter writer;
  EXPECT_FALSE(writer.append("nowhere to go").is_ok());
  EXPECT_FALSE(writer.is_open());
}

}  // namespace
}  // namespace stc
