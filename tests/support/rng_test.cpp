#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace stc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(29);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t rank = rng.zipf(100, 1.0);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    ++counts[rank];
  }
  // Rank 1 must be clearly more popular than rank 100.
  EXPECT_GT(counts[1], counts[100] * 5);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  rng.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(RngTest, RandomStringLengthAndAlphabet) {
  Rng rng(37);
  const std::string s = rng.random_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  // Child should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(43);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next_u64());
  rng.reseed(43);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

// ---- Distribution shape ----------------------------------------------------

TEST(RngTest, UniformSmallBoundWithinSamplingError) {
  // bound 3 does not divide 2^64, the classic modulo-bias trigger. Lemire
  // rejection must keep each bucket within ~5 sigma of n/3.
  Rng rng(47);
  const int n = 300000;
  int buckets[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(3)];
  const double expected = n / 3.0;
  const double sigma = std::sqrt(n * (1.0 / 3.0) * (2.0 / 3.0));  // ~258
  for (int count : buckets) {
    EXPECT_NEAR(static_cast<double>(count), expected, 5.0 * sigma);
  }
}

TEST(RngTest, UniformHugeBoundHasNoModuloBias) {
  // bound = 2^63 + 2^62: plain next_u64() % bound would hit [0, 2^62) twice
  // as often, putting HALF the mass below 2^62. Unbiased sampling puts only
  // a third there. The gap (0.5 vs 0.333) is enormous compared to sampling
  // noise, so this detects any modulo shortcut.
  Rng rng(53);
  const std::uint64_t bound = (1ull << 63) + (1ull << 62);
  const std::uint64_t cut = 1ull << 62;
  const int n = 100000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.uniform(bound) < cut) ++below;
  }
  const double fraction = static_cast<double>(below) / n;
  EXPECT_NEAR(fraction, 1.0 / 3.0, 0.01);
}

TEST(RngTest, ZipfHeadFollowsPowerLaw) {
  // With theta = 1, P(rank = k) ~ 1/k: rank 1 should draw about twice as
  // often as rank 2 and about ten times as often as rank 10.
  Rng rng(59);
  std::vector<int> counts(1001, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(1000, 1.0)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.35);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[10], 10.0, 2.5);
  EXPECT_GT(counts[1], counts[100]);
  EXPECT_GT(counts[100], counts[1000]);
}

TEST(RngTest, ZipfTailMassMatchesHarmonicSum) {
  // For theta = 1 the tail mass P(rank > n/2) is
  // (H(n) - H(n/2)) / H(n) = ln 2 / H(n) -- about 9.3% for n = 1000. A
  // sampler that truncates or misweights the tail misses this band.
  Rng rng(61);
  const int n = 200000;
  int tail = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(1000, 1.0) > 500) ++tail;
  }
  const double fraction = static_cast<double>(tail) / n;
  EXPECT_GT(fraction, 0.06);
  EXPECT_LT(fraction, 0.13);
}

TEST(RngTest, ZipfHigherThetaConcentratesMoreMass) {
  Rng rng(67);
  const int n = 50000;
  int top10_flat = 0;
  int top10_steep = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(1000, 0.8) <= 10) ++top10_flat;
  }
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(1000, 1.4) <= 10) ++top10_steep;
  }
  EXPECT_GT(top10_steep, top10_flat);
}

}  // namespace
}  // namespace stc
