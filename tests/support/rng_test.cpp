#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace stc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(29);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t rank = rng.zipf(100, 1.0);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    ++counts[rank];
  }
  // Rank 1 must be clearly more popular than rank 100.
  EXPECT_GT(counts[1], counts[100] * 5);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  rng.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(RngTest, RandomStringLengthAndAlphabet) {
  Rng rng(37);
  const std::string s = rng.random_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  // Child should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(43);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next_u64());
  rng.reseed(43);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

}  // namespace
}  // namespace stc
