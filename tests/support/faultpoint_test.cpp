#include "support/faultpoint.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "support/error.h"

namespace stc::fault {
namespace {

// Every test owns the process-global registry for its duration.
class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultPointTest, UnarmedNeverFires) {
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fire("test.unarmed"));
  EXPECT_EQ(hits("test.unarmed"), 100u);
}

TEST_F(FaultPointTest, ArmFiresOnNextHitOnly) {
  arm("test.point");
  EXPECT_FALSE(fire("test.other"));  // different point untouched
  EXPECT_TRUE(fire("test.point"));
  // One-shot: the armed entry is consumed, so a retry succeeds.
  EXPECT_FALSE(fire("test.point"));
  EXPECT_FALSE(fire("test.point"));
}

TEST_F(FaultPointTest, ArmNthCountsFromNow) {
  EXPECT_FALSE(fire("test.nth"));  // hit 1, before arming
  arm("test.nth", 3);
  EXPECT_FALSE(fire("test.nth"));  // 1st hit after arming
  EXPECT_FALSE(fire("test.nth"));  // 2nd
  EXPECT_TRUE(fire("test.nth"));   // 3rd fires
  EXPECT_FALSE(fire("test.nth"));
}

TEST_F(FaultPointTest, FailIfBuildsStatusNamingThePoint) {
  arm("test.fail");
  const Status s = fail_if("test.fail", "writing the report");
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kFaultInjected);
  EXPECT_NE(s.message().find("test.fail"), std::string::npos);
  EXPECT_NE(s.message().find("writing the report"), std::string::npos);
  EXPECT_TRUE(fail_if("test.fail", "retry").is_ok());
}

TEST_F(FaultPointTest, SpecParsesPointAndCount) {
  ASSERT_TRUE(arm_from_spec("test.spec:2").is_ok());
  EXPECT_FALSE(fire("test.spec"));
  EXPECT_TRUE(fire("test.spec"));
}

TEST_F(FaultPointTest, SpecCountDefaultsToOne) {
  ASSERT_TRUE(arm_from_spec("test.first").is_ok());
  EXPECT_TRUE(fire("test.first"));
}

TEST_F(FaultPointTest, SpecArmsMultiplePoints) {
  ASSERT_TRUE(arm_from_spec("test.a,test.b:2").is_ok());
  EXPECT_TRUE(fire("test.a"));
  EXPECT_FALSE(fire("test.b"));
  EXPECT_TRUE(fire("test.b"));
}

TEST_F(FaultPointTest, MalformedSpecsAreStructuredErrors) {
  for (const char* bad : {":", "a.b:", "a.b:zero", "a.b:1x", ":3", ",",
                          "a.b:0", "a.b:18446744073709551616"}) {
    const Status s = validate_spec(bad);
    EXPECT_FALSE(s.is_ok()) << "spec '" << bad << "' accepted";
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument) << bad;
  }
  EXPECT_TRUE(validate_spec("").is_ok());  // unset knob
  EXPECT_TRUE(validate_spec("a.b:2,c.d").is_ok());
}

TEST_F(FaultPointTest, ValidateDoesNotArm) {
  ASSERT_TRUE(validate_spec("test.validated:1").is_ok());
  EXPECT_FALSE(fire("test.validated"));
}

TEST_F(FaultPointTest, ProbabilisticIsDeterministicPerSeed) {
  arm_probabilistic(0.5, 1234);
  std::string pattern_a;
  for (int i = 0; i < 64; ++i) pattern_a += fire("test.prob") ? '1' : '0';
  reset();
  arm_probabilistic(0.5, 1234);
  std::string pattern_b;
  for (int i = 0; i < 64; ++i) pattern_b += fire("test.prob") ? '1' : '0';
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_NE(pattern_a.find('1'), std::string::npos);  // rate 0.5 fires some
  EXPECT_NE(pattern_a.find('0'), std::string::npos);  // ... and spares some
}

TEST_F(FaultPointTest, ProbabilisticRateZeroNeverFires) {
  arm_probabilistic(0.0, 7);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(fire("test.zero"));
}

TEST_F(FaultPointTest, ResetClearsArmsAndCounts) {
  arm("test.reset", 5);
  fire("test.reset");
  reset();
  EXPECT_EQ(hits("test.reset"), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fire("test.reset"));
}

TEST_F(FaultPointTest, ArmedCrashKillsTheProcessAtTheNthHit) {
  // SIGKILL, not exit(): the crash harness relies on the process dying with
  // no chance to flush, unwind, or run atexit hooks.
  EXPECT_EXIT(
      {
        arm_crash("test.crash", 2);
        fire("test.crash");  // 1st hit survives
        fire("test.crash");  // 2nd hit dies here
        std::exit(0);        // never reached
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

TEST_F(FaultPointTest, CrashArmsAndErrorArmsAreIndependent) {
  // An error-armed point still fires as a Status while a crash is armed on a
  // different point; reset clears crash arms too.
  arm_crash("test.crash.other", 1);
  arm("test.error");
  EXPECT_TRUE(fire("test.error"));
  reset();
  EXPECT_FALSE(fire("test.crash.other"));  // would have SIGKILLed if armed
}

}  // namespace
}  // namespace stc::fault
