#include "support/table.h"

#include <gtest/gtest.h>

namespace stc {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Every line has the same width.
  std::size_t width = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    pos = eol + 1;
  }
}

TEST(TextTableTest, NumericColumnsRightAligned) {
  TextTable t;
  t.header({"k", "v"});
  t.row({"x", "7"});
  t.row({"y", "123"});
  const std::string out = t.render();
  // "7" must be indented to align with "123"'s last digit.
  EXPECT_NE(out.find("  7"), std::string::npos);
}

TEST(FmtTest, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

TEST(FmtTest, CountWithThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(FmtTest, Percent) {
  EXPECT_EQ(fmt_percent(0.5), "50.00%");
  EXPECT_EQ(fmt_percent(0.1234), "12.34%");
}

TEST(FmtTest, Sizes) {
  EXPECT_EQ(fmt_size(512), "512B");
  EXPECT_EQ(fmt_size(2048), "2K");
  EXPECT_EQ(fmt_size(64 * 1024), "64K");
  EXPECT_EQ(fmt_size(3u * 1024 * 1024), "3M");
}

}  // namespace
}  // namespace stc
