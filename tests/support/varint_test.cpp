#include "support/varint.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace stc {
namespace {

TEST(VarintTest, SmallValuesUseOneByte) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 0);
  put_uvarint(buf, 1);
  put_uvarint(buf, 127);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(VarintTest, BoundaryAt128) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, RoundTripUnsignedCorpus) {
  const std::uint64_t corpus[] = {0,    1,    127,  128,   255,   16383,
                                  16384, 1u << 20, ~std::uint64_t{0} >> 1,
                                  ~std::uint64_t{0}};
  for (std::uint64_t value : corpus) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), value);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTripSignedCorpus) {
  const std::int64_t corpus[] = {0, 1, -1, 63, -64, 64, -65, 1 << 20,
                                 -(1 << 20), INT64_MAX, INT64_MIN};
  for (std::int64_t value : corpus) {
    std::vector<std::uint8_t> buf;
    put_svarint(buf, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_svarint(buf.data(), buf.size(), pos), value);
  }
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(VarintTest, SequencesDecodeInOrder) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v = 0; v < 1000; v += 7) put_uvarint(buf, v);
  std::size_t pos = 0;
  for (std::uint64_t v = 0; v < 1000; v += 7) {
    EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, EncodedLengthAtEverySevenBitBoundary) {
  // 2^(7k) - 1 is the largest k-byte value; 2^(7k) needs k+1 bytes.
  for (int k = 1; k <= 9; ++k) {
    const std::uint64_t largest_k_bytes = (std::uint64_t{1} << (7 * k)) - 1;
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, largest_k_bytes);
    EXPECT_EQ(buf.size(), static_cast<std::size_t>(k)) << "k=" << k;
    std::size_t pos = 0;
    EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), largest_k_bytes);

    if (k < 9) {
      const std::uint64_t smallest_k1_bytes = std::uint64_t{1} << (7 * k);
      buf.clear();
      put_uvarint(buf, smallest_k1_bytes);
      EXPECT_EQ(buf.size(), static_cast<std::size_t>(k) + 1) << "k=" << k;
      pos = 0;
      EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), smallest_k1_bytes);
    }
  }
}

TEST(VarintTest, MaxU64TakesTenBytes) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, ~std::uint64_t{0});
  EXPECT_EQ(buf.size(), 10u);
  std::size_t pos = 0;
  EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), ~std::uint64_t{0});
  EXPECT_EQ(pos, 10u);
}

TEST(VarintTest, ZeroTakesOneZeroByte) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 0);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0u);
  std::size_t pos = 0;
  EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), 0u);
}

TEST(VarintTest, ContinuationBitsAreWellFormed) {
  // Every byte except the last carries the continuation bit; the last does
  // not — the framing property the delta-decoder relies on.
  for (std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16384}, std::uint64_t{1} << 42, ~std::uint64_t{0}}) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, value);
    for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
      EXPECT_NE(buf[i] & 0x80, 0) << "value " << value << " byte " << i;
    }
    EXPECT_EQ(buf.back() & 0x80, 0) << "value " << value;
  }
}

TEST(VarintTest, SignedExtremesUseTenBytes) {
  // INT64_MIN zig-zags to the all-ones code, the widest possible encoding.
  std::vector<std::uint8_t> buf;
  put_svarint(buf, INT64_MIN);
  EXPECT_EQ(buf.size(), 10u);
  std::size_t pos = 0;
  EXPECT_EQ(get_svarint(buf.data(), buf.size(), pos), INT64_MIN);
  buf.clear();
  put_svarint(buf, INT64_MAX);
  EXPECT_EQ(buf.size(), 10u);
  pos = 0;
  EXPECT_EQ(get_svarint(buf.data(), buf.size(), pos), INT64_MAX);
}

TEST(VarintTest, RandomizedRoundTrip) {
  Rng rng(99);
  std::vector<std::uint8_t> buf;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(rng.next_u64()) >> (rng.uniform(64));
    values.push_back(v);
    put_svarint(buf, v);
  }
  std::size_t pos = 0;
  for (std::int64_t v : values) {
    ASSERT_EQ(get_svarint(buf.data(), buf.size(), pos), v);
  }
}

}  // namespace
}  // namespace stc
