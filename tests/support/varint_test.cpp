#include "support/varint.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace stc {
namespace {

TEST(VarintTest, SmallValuesUseOneByte) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 0);
  put_uvarint(buf, 1);
  put_uvarint(buf, 127);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(VarintTest, BoundaryAt128) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, RoundTripUnsignedCorpus) {
  const std::uint64_t corpus[] = {0,    1,    127,  128,   255,   16383,
                                  16384, 1u << 20, ~std::uint64_t{0} >> 1,
                                  ~std::uint64_t{0}};
  for (std::uint64_t value : corpus) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), value);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTripSignedCorpus) {
  const std::int64_t corpus[] = {0, 1, -1, 63, -64, 64, -65, 1 << 20,
                                 -(1 << 20), INT64_MAX, INT64_MIN};
  for (std::int64_t value : corpus) {
    std::vector<std::uint8_t> buf;
    put_svarint(buf, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_svarint(buf.data(), buf.size(), pos), value);
  }
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(VarintTest, SequencesDecodeInOrder) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v = 0; v < 1000; v += 7) put_uvarint(buf, v);
  std::size_t pos = 0;
  for (std::uint64_t v = 0; v < 1000; v += 7) {
    EXPECT_EQ(get_uvarint(buf.data(), buf.size(), pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RandomizedRoundTrip) {
  Rng rng(99);
  std::vector<std::uint8_t> buf;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(rng.next_u64()) >> (rng.uniform(64));
    values.push_back(v);
    put_svarint(buf, v);
  }
  std::size_t pos = 0;
  for (std::int64_t v : values) {
    ASSERT_EQ(get_svarint(buf.data(), buf.size(), pos), v);
  }
}

}  // namespace
}  // namespace stc
