// Fault-tolerant execution: per-job capture, retries, deadlines, and the
// failure report. Complements experiment_test.cpp (the clean-run contract).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>

#include "support/error.h"
#include "support/experiment.h"
#include "support/faultpoint.h"
#include "testing/json_parse.h"

namespace stc {
namespace {

ExperimentResult good_cell(double ipc) {
  ExperimentResult r;
  r.metric("ipc", ipc);
  r.counters().add("instructions", 1000);
  return r;
}

class ExperimentFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(ExperimentFaultTest, ThrowingJobIsRecordedNotFatal) {
  ExperimentRunner runner("ft");
  runner.add("good", [] { return good_cell(1.5); });
  const std::size_t bad = runner.add("bad", []() -> ExperimentResult {
    throw StatusError(corrupt_data_error("crc mismatch"));
  });
  runner.set_max_retries(0);
  runner.run(1);

  EXPECT_EQ(runner.job_status(0), JobStatus::kOk);
  EXPECT_EQ(runner.job_status(bad), JobStatus::kFailed);
  ASSERT_EQ(runner.failures().size(), 1u);
  const JobFailure& f = runner.failures()[0];
  EXPECT_EQ(f.index, bad);
  EXPECT_EQ(f.name, "bad");
  EXPECT_EQ(f.attempts, 1u);
  EXPECT_EQ(f.error.code(), ErrorCode::kCorruptData);
  // The error carries the job name as context.
  EXPECT_NE(f.error.message().find("job 'bad'"), std::string::npos);
  EXPECT_FALSE(runner.all_ok());
  EXPECT_EQ(runner.exit_code(), 3);
}

TEST_F(ExperimentFaultTest, PlainExceptionsBecomeInternalErrors) {
  ExperimentRunner runner("ft");
  runner.add("thrower", []() -> ExperimentResult {
    throw std::runtime_error("std failure");
  });
  runner.set_max_retries(0);
  runner.run(1);
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].error.code(), ErrorCode::kInternal);
  EXPECT_NE(runner.failures()[0].error.message().find("std failure"),
            std::string::npos);
}

TEST_F(ExperimentFaultTest, FailedAttemptsRetryUpToLimit) {
  int calls = 0;
  ExperimentRunner runner("ft");
  runner.add("flaky", [&]() -> ExperimentResult {
    ++calls;
    throw StatusError(io_error("transient"));
  });
  runner.set_max_retries(2);
  runner.run(1);
  EXPECT_EQ(calls, 3);  // 1 + 2 retries
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].attempts, 3u);
}

TEST_F(ExperimentFaultTest, TransientFaultSucceedsOnRetry) {
  // A one-shot armed fault fires on the first attempt and is consumed; the
  // retry runs clean — the STC_FAULT=job.exec:1 + STC_JOB_RETRIES=1 story.
  fault::arm("job.exec");
  ExperimentRunner runner("ft");
  const std::size_t job = runner.add("cell", [] { return good_cell(2.0); });
  runner.set_max_retries(1);
  runner.run(1);
  EXPECT_EQ(runner.job_status(job), JobStatus::kOk);
  EXPECT_TRUE(runner.all_ok());
  EXPECT_EQ(runner.exit_code(), 0);
  EXPECT_DOUBLE_EQ(runner.result(job).metric("ipc"), 2.0);
}

TEST_F(ExperimentFaultTest, InjectedFaultWithoutRetryFailsTheJob) {
  fault::arm("job.exec");
  ExperimentRunner runner("ft");
  const std::size_t job = runner.add("cell", [] { return good_cell(2.0); });
  runner.set_max_retries(0);
  runner.run(1);
  EXPECT_EQ(runner.job_status(job), JobStatus::kFailed);
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].error.code(), ErrorCode::kFaultInjected);
}

TEST_F(ExperimentFaultTest, OverrunIsTimedOutAndNotRetried) {
  int calls = 0;
  ExperimentRunner runner("ft");
  const std::size_t job = runner.add("slow", [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    return good_cell(1.0);
  });
  runner.set_max_retries(3);
  runner.set_job_timeout(0.01);
  runner.run(1);
  EXPECT_EQ(calls, 1);  // deterministic overruns are not transient
  EXPECT_EQ(runner.job_status(job), JobStatus::kTimedOut);
  ASSERT_EQ(runner.failures().size(), 1u);
  const JobFailure& f = runner.failures()[0];
  EXPECT_EQ(f.error.code(), ErrorCode::kTimeout);
  // The message is deterministic (no measured wall-clock in it), so failure
  // reports stay byte-identical across runs.
  EXPECT_EQ(f.error.message(), "job 'slow': ran past the 0.01s deadline");
}

TEST_F(ExperimentFaultTest, MetricOrSurvivesFailedCells) {
  ExperimentRunner runner("ft");
  const std::size_t good = runner.add("good", [] { return good_cell(1.5); });
  const std::size_t bad = runner.add("bad", []() -> ExperimentResult {
    throw StatusError(io_error("boom"));
  });
  runner.set_max_retries(0);
  runner.run(1);
  EXPECT_DOUBLE_EQ(runner.metric_or(good, "ipc"), 1.5);
  EXPECT_TRUE(std::isnan(runner.metric_or(bad, "ipc")));
  EXPECT_DOUBLE_EQ(runner.metric_or(bad, "ipc", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(runner.metric_or(good, "absent", 7.0), 7.0);
}

TEST_F(ExperimentFaultTest, MissingMetricIsStructuredNotFatal) {
  ExperimentResult r = good_cell(1.0);
  const Result<double> missing = r.try_metric("mpki");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
  EXPECT_NE(missing.status().message().find("mpki"), std::string::npos);
  EXPECT_NE(missing.status().message().find("ipc"), std::string::npos);
  EXPECT_THROW(r.metric("mpki"), StatusError);
}

TEST_F(ExperimentFaultTest, FailureSectionIsDeterministic) {
  const auto build = [] {
    ExperimentRunner runner("det");
    runner.add("a", [] { return good_cell(1.0); });
    runner.add("b", []() -> ExperimentResult {
      throw StatusError(corrupt_data_error("fixed message"));
    });
    runner.set_max_retries(1);
    runner.run(1);
    return runner.results_json();
  };
  EXPECT_EQ(build(), build());
}

TEST_F(ExperimentFaultTest, SuccessfulCellsStayByteIdenticalToCleanRun) {
  const auto cells = [](bool with_failure) {
    ExperimentRunner runner("ident");
    runner.add("a", {{"layout", "orig"}}, [] { return good_cell(1.25); });
    if (with_failure) {
      runner.add("b", []() -> ExperimentResult {
        throw StatusError(io_error("boom"));
      });
    }
    runner.add("c", {{"layout", "ops"}}, [] { return good_cell(2.5); });
    runner.set_max_retries(0);
    runner.run(1);
    return runner.results_json();
  };
  const std::string clean = cells(false);
  const std::string degraded = cells(true);
  // Every successful cell of the degraded run serializes to the exact bytes
  // of its clean-run counterpart (the failing cell is extra, between them).
  std::string err;
  const testing::JsonValue c = testing::parse_json(clean, &err);
  ASSERT_EQ(err, "");
  const testing::JsonValue d = testing::parse_json(degraded, &err);
  ASSERT_EQ(err, "");
  ASSERT_EQ(c.items.size(), 2u);
  ASSERT_EQ(d.items.size(), 3u);
  // Byte-level: each clean cell's rendered text appears verbatim in the
  // degraded document (same nesting depth, same writer).
  const std::size_t a_at = clean.find("\"name\": \"a\"");
  const std::size_t c_at = clean.find("\"name\": \"c\"");
  ASSERT_NE(a_at, std::string::npos);
  ASSERT_NE(c_at, std::string::npos);
  const std::string cell_a = clean.substr(a_at, clean.find("},", a_at) - a_at);
  const std::string cell_c = clean.substr(c_at, clean.rfind('}') - c_at);
  EXPECT_NE(degraded.find(cell_a), std::string::npos);
  EXPECT_NE(degraded.find(cell_c), std::string::npos);
  // And the failed cell carries status/error instead of metrics.
  const testing::JsonValue& failed = d.items[1];
  EXPECT_EQ(failed.find("status")->text, "failed");
  EXPECT_NE(failed.find("error"), nullptr);
}

TEST_F(ExperimentFaultTest, ReportJsonCarriesFailuresSection) {
  ExperimentRunner runner("ft");
  runner.add("ok", [] { return good_cell(1.0); });
  runner.add("dead", []() -> ExperimentResult {
    throw StatusError(corrupt_data_error("rotten"));
  });
  runner.set_max_retries(1);
  runner.run(1);
  std::string err;
  const testing::JsonValue report =
      testing::parse_json(runner.report_json(), &err);
  ASSERT_EQ(err, "");
  const testing::JsonValue* failures = report.find("failures");
  ASSERT_TRUE(failures != nullptr && failures->is_array());
  ASSERT_EQ(failures->items.size(), 1u);
  const testing::JsonValue& f = failures->items[0];
  EXPECT_EQ(f.members[0].first, "job");
  EXPECT_EQ(f.find("job")->text, "dead");
  EXPECT_EQ(f.find("index")->number, 1.0);
  EXPECT_EQ(f.find("status")->text, "failed");
  EXPECT_EQ(f.find("attempts")->number, 2.0);
  EXPECT_NE(f.find("error")->text.find("corrupt-data"), std::string::npos);
}

TEST_F(ExperimentFaultTest, ParallelAndSerialDegradedRunsAgree) {
  const auto build = [](std::size_t threads) {
    ExperimentRunner runner("par");
    for (int i = 0; i < 8; ++i) {
      const std::string name = "cell" + std::to_string(i);
      if (i == 3 || i == 6) {
        runner.add(name, []() -> ExperimentResult {
          throw StatusError(io_error("fixed"));
        });
      } else {
        runner.add(name, [i] { return good_cell(1.0 + i); });
      }
    }
    runner.set_max_retries(0);
    runner.run(threads);
    return runner.results_json();
  };
  EXPECT_EQ(build(1), build(4));
}

}  // namespace
}  // namespace stc
