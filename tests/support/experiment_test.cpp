#include "support/experiment.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace stc {
namespace {

ExperimentResult make_cell(std::size_t i) {
  ExperimentResult r;
  r.metric("value", double(i) * 1.25);
  r.metric("inverse", i ? 1.0 / double(i) : 0.0);
  r.counters().add("instructions", 100 * i);
  r.counters().add("blocks", 10 * i);
  return r;
}

// Builds the same 64-job grid on a fresh runner and executes it with the
// given thread count. Jobs deliberately take different amounts of time so a
// parallel pool completes them out of submission order.
ExperimentRunner run_grid(std::size_t threads) {
  ExperimentRunner runner("grid");
  runner.meta("k", std::uint64_t{64});
  for (std::size_t i = 0; i < 64; ++i) {
    runner.add("cell " + std::to_string(i),
               {{"index", std::to_string(i)}}, [i] {
                 if (i % 7 == 0) {
                   std::this_thread::sleep_for(std::chrono::microseconds(300));
                 }
                 return make_cell(i);
               });
  }
  runner.run(threads);
  return runner;
}

TEST(ExperimentResultTest, MetricsKeepInsertionOrderAndValues) {
  ExperimentResult r;
  r.metric("b", 2.0);
  r.metric("a", 1.0);
  EXPECT_TRUE(r.has_metric("b"));
  EXPECT_FALSE(r.has_metric("c"));
  EXPECT_DOUBLE_EQ(r.metric("a"), 1.0);
  ASSERT_EQ(r.metrics().size(), 2u);
  EXPECT_EQ(r.metrics()[0].first, "b");
  EXPECT_EQ(r.metrics()[1].first, "a");
}

TEST(ExperimentResultTest, SettingAMetricTwiceOverwrites) {
  ExperimentResult r;
  r.metric("x", 1.0);
  r.metric("x", 2.0);
  EXPECT_DOUBLE_EQ(r.metric("x"), 2.0);
  EXPECT_EQ(r.metrics().size(), 1u);
}

TEST(CounterSetTest, AddAccumulatesAndGetDefaultsToZero) {
  CounterSet c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.get("misses"), 0u);
  c.add("misses", 3);
  c.add("misses", 4);
  EXPECT_EQ(c.get("misses"), 7u);
  EXPECT_FALSE(c.empty());
}

TEST(CounterSetTest, MergeAddsByNameKeepingFirstSeenOrder) {
  CounterSet a;
  a.add("x", 1);
  a.add("y", 2);
  CounterSet b;
  b.add("y", 10);
  b.add("z", 20);
  a.merge(b);
  ASSERT_EQ(a.items().size(), 3u);
  EXPECT_EQ(a.items()[0].first, "x");
  EXPECT_EQ(a.items()[1].first, "y");
  EXPECT_EQ(a.items()[2].first, "z");
  EXPECT_EQ(a.get("y"), 12u);
  EXPECT_EQ(a.get("z"), 20u);
}

TEST(ExperimentRunnerTest, ResultsIndexedByDeclarationOrder) {
  const auto runner = run_grid(1);
  ASSERT_EQ(runner.num_jobs(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(runner.result(i).metric("value"), double(i) * 1.25);
    EXPECT_EQ(runner.result(i).counters().get("blocks"), 10 * i);
  }
}

// The tentpole guarantee: a parallel run must serialize to exactly the same
// bytes as a serial run — thread count may not leak into results.
TEST(ExperimentRunnerTest, ParallelResultsBitIdenticalToSerial) {
  const std::string serial = run_grid(1).results_json();
  for (const std::size_t threads : {2, 4, 8}) {
    EXPECT_EQ(run_grid(threads).results_json(), serial)
        << "threads=" << threads;
  }
}

TEST(ExperimentRunnerTest, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(run_grid(4).results_json(), run_grid(4).results_json());
}

TEST(ExperimentRunnerTest, PhasesAccumulateRepeatedNames) {
  ExperimentRunner runner("phases");
  runner.record_phase("setup", 1.5);
  runner.record_phase("setup", 0.5);
  runner.add("noop", [] { return ExperimentResult(); });
  runner.run(1);
  const std::string report = runner.report_json();
  EXPECT_NE(report.find("\"setup\": 2"), std::string::npos) << report;
  // The runner times the replay phase itself.
  EXPECT_NE(report.find("\"replay\""), std::string::npos);
}

TEST(ExperimentRunnerTest, ReportCarriesSchemaVersionAndMeta) {
  ExperimentRunner runner("report");
  runner.meta("scale_factor", 0.01);
  runner.meta("mode", "test");
  runner.add("one", {{"p", "q"}}, [] { return make_cell(3); });
  runner.run(1);
  const std::string report = runner.report_json();
  EXPECT_NE(report.find("\"bench\": \"report\""), std::string::npos);
  EXPECT_NE(report.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(report.find("\"scale_factor\": 0.01"), std::string::npos);
  EXPECT_NE(report.find("\"mode\": \"test\""), std::string::npos);
  EXPECT_NE(report.find("\"p\": \"q\""), std::string::npos);
  EXPECT_NE(report.find("\"instructions\": 300"), std::string::npos);
}

}  // namespace
}  // namespace stc
