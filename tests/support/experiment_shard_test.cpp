// Sharded experiment execution: a worker process under STC_SHARD runs only
// its modulo slice and writes a report fragment; the parent under STC_SHARDS
// spawns workers (here: a stand-in script via STC_SHARD_EXE), absorbs their
// fragments and produces a merged report byte-identical to an unsharded run.
#include "support/experiment.h"

#include <dirent.h>
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/faultpoint.h"

namespace stc {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

class ExperimentShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    // Per-test directory: ctest runs the suite's tests in parallel processes.
    dir_ = ::testing::TempDir() + "/stc_shard_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(
        ::system(("rm -rf '" + dir_ + "' && mkdir '" + dir_ + "'").c_str()),
        0);
  }
  void TearDown() override {
    fault::reset();
    [[maybe_unused]] int rc = ::system(("rm -rf '" + dir_ + "'").c_str());
  }

  // A deterministic 7-job grid; `ran` (when given) records which jobs
  // actually executed in this process.
  ExperimentRunner make_grid(std::vector<int>* ran = nullptr,
                             int failing_index = -1) {
    ExperimentRunner runner("shardgrid");
    runner.set_shardable(true);
    runner.meta("k", std::uint64_t{7});
    for (std::size_t i = 0; i < 7; ++i) {
      runner.add("cell " + std::to_string(i),
                 {{"index", std::to_string(i)}}, [i, ran, failing_index] {
                   if (ran != nullptr) ran->push_back(static_cast<int>(i));
                   if (static_cast<int>(i) == failing_index) {
                     throw StatusError(
                         internal_error("deliberate failure in cell"));
                   }
                   ExperimentResult r;
                   r.metric("value", double(i) * 1.25);
                   r.metric("third", double(i) / 3.0);  // non-trivial digits
                   r.counters().add("instructions", 100 * i + 1);
                   return r;
                 });
    }
    return runner;
  }

  std::string fragment_path(int shard, int count) const {
    return dir_ + "/BENCH_shardgrid.shard" + std::to_string(shard) + "of" +
           std::to_string(count) + ".json";
  }

  // Runs the grid in child mode for shard i/n and writes its fragment.
  void produce_fragment(int shard, int count, int failing_index = -1) {
    ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
    ScopedEnv shard_env("STC_SHARD", (std::to_string(shard) + "/" +
                                      std::to_string(count))
                                         .c_str());
    ExperimentRunner worker = make_grid(nullptr, failing_index);
    worker.run(1);
    auto written = worker.write_report();
    ASSERT_TRUE(written.is_ok()) << written.status().to_string();
    ASSERT_EQ(written.value(), fragment_path(shard, count));
  }

  std::string dir_;
};

TEST_F(ExperimentShardTest, ChildModeRunsOnlyItsModuloSlice) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv shard_env("STC_SHARD", "1/3");
  std::vector<int> ran;
  ExperimentRunner worker = make_grid(&ran);
  worker.run(1);
  EXPECT_EQ(ran, (std::vector<int>{1, 4}));
  EXPECT_TRUE(worker.all_ok());  // unowned jobs report ok without running
  auto written = worker.write_report();
  ASSERT_TRUE(written.is_ok());
  EXPECT_TRUE(file_exists(fragment_path(1, 3)));
}

TEST_F(ExperimentShardTest, NonShardableRunnerIgnoresShardEnv) {
  ScopedEnv shard_env("STC_SHARD", "1/3");
  std::vector<int> ran;
  ExperimentRunner runner("shardgrid");
  for (std::size_t i = 0; i < 4; ++i) {
    runner.add("cell " + std::to_string(i), [i, &ran] {
      ran.push_back(static_cast<int>(i));
      return ExperimentResult();
    });
  }
  runner.run(1);
  EXPECT_EQ(ran.size(), 4u);  // every job, not a slice
}

TEST_F(ExperimentShardTest, MergedFragmentsReproduceUnshardedResultsExactly) {
  ExperimentRunner reference = make_grid();
  {
    ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
    ScopedEnv shards_env("STC_SHARDS", nullptr);  // plain local run
    reference.run(1);
  }
  produce_fragment(0, 2);
  produce_fragment(1, 2);

  ExperimentRunner merged = make_grid();
  const Status s = merged.merge_fragments(
      {fragment_path(0, 2), fragment_path(1, 2)});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(merged.results_json(), reference.results_json());
  EXPECT_TRUE(merged.all_ok());
  // Fragments are consumed by the merge.
  EXPECT_FALSE(file_exists(fragment_path(0, 2)));
  EXPECT_FALSE(file_exists(fragment_path(1, 2)));
}

TEST_F(ExperimentShardTest, MergeCarriesFailuresAcrossTheProcessBoundary) {
  produce_fragment(0, 2, /*failing_index=*/2);
  produce_fragment(1, 2);

  ExperimentRunner merged = make_grid();
  const Status s = merged.merge_fragments(
      {fragment_path(0, 2), fragment_path(1, 2)});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_FALSE(merged.all_ok());
  EXPECT_EQ(merged.job_status(2), JobStatus::kFailed);
  EXPECT_EQ(merged.job_status(1), JobStatus::kOk);
  const std::string report = merged.report_json();
  EXPECT_NE(report.find("deliberate failure in cell"), std::string::npos);
}

TEST_F(ExperimentShardTest, MergeRejectsFragmentsFromAnotherBench) {
  {
    ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
    ScopedEnv shard_env("STC_SHARD", "0/2");
    ExperimentRunner other("otherbench");
    other.set_shardable(true);
    other.add("only", [] { return ExperimentResult(); });
    other.run(1);
    ASSERT_TRUE(other.write_report().is_ok());
  }
  ExperimentRunner merged = make_grid();
  const Status s = merged.merge_fragments(
      {dir_ + "/BENCH_otherbench.shard0of2.json"});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_NE(s.message().find("different bench"), std::string::npos);
}

TEST_F(ExperimentShardTest, MergeReportsMissingAndMalformedFragments) {
  {
    ExperimentRunner merged = make_grid();
    const Status s = merged.merge_fragments({dir_ + "/nonexistent.json"});
    ASSERT_FALSE(s.is_ok());
  }
  {
    std::ofstream out(dir_ + "/garbage.json");
    out << "{ not json";
  }
  ExperimentRunner merged = make_grid();
  const Status s = merged.merge_fragments({dir_ + "/garbage.json"});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
}

// The full parent protocol — fork/exec, waitpid, fragment absorption, spawn
// retry — against a stand-in worker: a shell script (STC_SHARD_EXE) that
// copies a pre-baked fragment into place, exactly what a real worker's
// write_report would produce.
class ExperimentSpawnTest : public ExperimentShardTest {
 protected:
  // Installs the stand-in worker: a shell script with `$i`, `$n` and `$frag`
  // (this slice's fragment path) pre-bound, followed by `body`.
  void write_script(const std::string& body) {
    script_ = dir_ + "/fake_worker.sh";
    std::ofstream out(script_);
    out << "#!/bin/sh\n"
           "i=${STC_SHARD%/*}\n"
           "n=${STC_SHARD#*/}\n"
        << "frag='" << dir_ << "/BENCH_shardgrid.shard'$i'of'$n'.json'\n"
        << body;
    out.close();
    ASSERT_EQ(::system(("chmod 755 '" + script_ + "'").c_str()), 0);
  }

  void stage_fragments() {
    produce_fragment(0, 2);
    produce_fragment(1, 2);
    // Park the fragments where the stand-in worker can find them (a live
    // fragment would be consumed by the first merge).
    ASSERT_EQ(::system(("mv '" + fragment_path(0, 2) + "' '" +
                        fragment_path(0, 2) + ".baked' && mv '" +
                        fragment_path(1, 2) + "' '" + fragment_path(1, 2) +
                        ".baked'")
                           .c_str()),
              0);
    // The default stand-in 'runs' its slice by publishing its pre-baked
    // fragment, exactly what a real worker's write_report would produce.
    write_script("cp \"$frag.baked\" \"$frag\"\n");
  }

  // Shard-scratch litter (fragments, temp files) left in dir_ — the set the
  // parent promises to clean on every exit path. Journals are excluded:
  // they are resume state and survive failed runs by design.
  std::vector<std::string> scratch_litter() {
    std::vector<std::string> hits;
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) return hits;
    const std::string frag_prefix = "BENCH_shardgrid.shard";
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      const auto ends_with = [&name](const std::string& tail) {
        return name.size() >= tail.size() &&
               name.compare(name.size() - tail.size(), tail.size(), tail) ==
                   0;
      };
      if (ends_with(".tmp") ||
          (name.rfind(frag_prefix, 0) == 0 && ends_with(".json"))) {
        hits.push_back(name);
      }
    }
    ::closedir(d);
    return hits;
  }

  std::string script_;
};

TEST_F(ExperimentSpawnTest, ParentSpawnsWorkersAndMergesTheirFragments) {
  stage_fragments();
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner reference = make_grid();
  {
    ScopedEnv no_shards("STC_SHARDS", nullptr);
    reference.run(1);
  }
  ExperimentRunner parent = make_grid();
  parent.run(1);
  EXPECT_TRUE(parent.all_ok());
  EXPECT_EQ(parent.results_json(), reference.results_json());
}

TEST_F(ExperimentSpawnTest, SpawnFaultIsRetriedAndRecovered) {
  stage_fragments();
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  fault::arm("shard.spawn");  // first spawn attempt dies; the retry succeeds
  ExperimentRunner parent = make_grid();
  parent.set_max_retries(1);
  parent.run(1);
  EXPECT_TRUE(parent.all_ok());
}

TEST_F(ExperimentSpawnTest, ExhaustedShardFailsItsOwnedJobsOnly) {
  stage_fragments();
  // Remove shard 1's baked fragment: its worker "runs" but publishes
  // nothing, so the parent marks shard 1's jobs failed after retries.
  ASSERT_EQ(::system(("rm '" + fragment_path(1, 2) + ".baked'").c_str()), 0);
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner parent = make_grid();
  parent.run(1);
  EXPECT_FALSE(parent.all_ok());
  for (std::size_t i = 0; i < 7; ++i) {
    const JobStatus expect =
        (i % 2 == 1) ? JobStatus::kFailed : JobStatus::kOk;
    EXPECT_EQ(parent.job_status(i), expect) << "job " << i;
  }
  ASSERT_FALSE(parent.failures().empty());
  for (const JobFailure& failure : parent.failures()) {
    EXPECT_EQ(failure.index % 2, 1u);
    EXPECT_NE(failure.error.message().find("shard 1/2"), std::string::npos)
        << failure.error.to_string();
  }
}

TEST_F(ExperimentSpawnTest, HungWorkerIsKilledAndItsSliceReassigned) {
  stage_fragments();
  // Shard 1's first incarnation wedges (no journal progress, no exit); the
  // parent must SIGKILL it at the heartbeat deadline and the respawn then
  // publishes the fragment normally.
  write_script("marker='" + dir_ +
               "/hung_once'\n"
               "if [ \"$i\" = \"1\" ] && [ ! -e \"$marker\" ]; then\n"
               "  : > \"$marker\"\n"
               "  exec sleep 60\n"
               "fi\n"
               "cp \"$frag.baked\" \"$frag\"\n");
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner reference = make_grid();
  {
    ScopedEnv no_shards("STC_SHARDS", nullptr);
    reference.run(1);
  }
  ExperimentRunner parent = make_grid();
  parent.set_heartbeat(1.0);
  parent.set_max_retries(1);
  parent.run(1);
  EXPECT_TRUE(parent.all_ok());
  EXPECT_EQ(parent.results_json(), reference.results_json());
  EXPECT_TRUE(file_exists(dir_ + "/hung_once"));  // the hang really happened
}

TEST_F(ExperimentSpawnTest, ExhaustedHeartbeatFailsTheSliceWithContext) {
  stage_fragments();
  // Shard 1 wedges on every attempt; with no retry budget its slice must be
  // marked failed with the heartbeat deadline spelled out, while shard 0's
  // cells land normally.
  write_script("if [ \"$i\" = \"1\" ]; then exec sleep 60; fi\n"
               "cp \"$frag.baked\" \"$frag\"\n");
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner parent = make_grid();
  parent.set_heartbeat(0.5);
  parent.set_max_retries(0);
  parent.run(1);
  EXPECT_FALSE(parent.all_ok());
  for (std::size_t i = 0; i < 7; ++i) {
    const JobStatus expect =
        (i % 2 == 1) ? JobStatus::kFailed : JobStatus::kOk;
    EXPECT_EQ(parent.job_status(i), expect) << "job " << i;
  }
  ASSERT_FALSE(parent.failures().empty());
  for (const JobFailure& failure : parent.failures()) {
    EXPECT_NE(failure.error.message().find("heartbeat deadline"),
              std::string::npos)
        << failure.error.to_string();
  }
}

TEST_F(ExperimentSpawnTest, CorruptFragmentsAndTempLitterAreCleaned) {
  // The worker publishes a corrupt fragment plus a stray temp file — the
  // merge must fail AND every piece of scratch must be gone afterwards, on
  // the failure path just like the success path.
  write_script("printf '{ not json' > \"$frag\"\n"
               "printf 'stale' > \"$frag.tmp\"\n");
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner parent = make_grid();
  parent.set_max_retries(0);
  parent.run(1);
  EXPECT_FALSE(parent.all_ok());
  EXPECT_EQ(scratch_litter(), std::vector<std::string>{});
}

TEST_F(ExperimentSpawnTest, StaleFragmentsFromACrashedRunAreNotTrusted) {
  stage_fragments();
  // A fragment for shard 0 already sits in the bench dir — litter from some
  // earlier crashed run. This run's shard 0 worker publishes nothing; if the
  // parent absorbed the stale fragment, shard 0 would look 'ok' with results
  // this run never produced.
  ASSERT_EQ(::system(("cp '" + fragment_path(0, 2) + ".baked' '" +
                      fragment_path(0, 2) + "'")
                         .c_str()),
            0);
  write_script("if [ \"$i\" = \"0\" ]; then exit 0; fi\n"
               "cp \"$frag.baked\" \"$frag\"\n");
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv exe("STC_SHARD_EXE", script_.c_str());
  ScopedEnv shards_env("STC_SHARDS", "2");
  ScopedEnv shard_env("STC_SHARD", nullptr);

  ExperimentRunner parent = make_grid();
  parent.set_max_retries(0);
  parent.run(1);
  EXPECT_FALSE(parent.all_ok());
  for (std::size_t i = 0; i < 7; i += 2) {
    EXPECT_EQ(parent.job_status(i), JobStatus::kFailed) << "job " << i;
  }
  EXPECT_EQ(scratch_litter(), std::vector<std::string>{});
}

}  // namespace
}  // namespace stc
