// Torn-input coverage for the JSON reader. The resume path hands this
// parser whatever half-written bytes a crash left behind — every truncated,
// split, or corrupted document must come back as a clean parse error ("stop
// here"), never UB, never a partially-populated value mistaken for data.
#include "support/json_read.h"

#include <gtest/gtest.h>

#include <string>

namespace stc {
namespace {

// Parses and returns whether the parser reported an error; the call itself
// must be safe for any byte content.
bool parse_fails(const std::string& doc) {
  std::string error;
  const JsonValue value = parse_json(doc, &error);
  (void)value;
  return !error.empty();
}

TEST(JsonReadTornTest, MidTokenEofIsAnErrorNotUb) {
  // Every class of token cut off mid-way.
  for (const char* doc : {
           "",            // nothing at all
           "{",           // open object
           "{\"a\"",      // key without colon
           "{\"a\":",     // colon without value
           "{\"a\": 1,",  // trailing comma, no pair
           "[",           // open array
           "[1, 2",       // unterminated array
           "\"abc",       // unterminated string
           "\"abc\\",     // string ending in a bare escape
           "\"abc\\u00",  // truncated \u escape
           "tru",         // truncated literal
           "fals",        //
           "nul",         //
           "{\"a\": 123.45e+",
       }) {
    EXPECT_TRUE(parse_fails(doc)) << "doc: " << doc;
  }
}

TEST(JsonReadTornTest, TruncatedBareNumbersAreLenientButNeverUb) {
  // The number scanner takes strtod semantics: a bare "-" or "1e" consumes
  // as a (zero-or-partial) number token rather than erroring. That leniency
  // is fine — journal/report payloads are objects, where the truncation
  // surfaces as a structural error (previous test) — but it must stay a
  // defined, non-UB parse.
  for (const char* doc : {"-", "1e", "1.", "+"}) {
    std::string error;
    const JsonValue value = parse_json(doc, &error);
    EXPECT_TRUE(error.empty()) << "doc: " << doc;
    EXPECT_TRUE(value.is_number()) << "doc: " << doc;
  }
}

TEST(JsonReadTornTest, SplitUtf8SequencesStopCleanly) {
  // Multi-byte UTF-8 cut mid-sequence before the closing quote — the string
  // never terminates, so the parse must fail without reading past the end.
  const std::string euro = "\xE2\x82\xAC";  // €
  EXPECT_TRUE(parse_fails("\"" + euro.substr(0, 1)));
  EXPECT_TRUE(parse_fails("\"" + euro.substr(0, 2)));
  EXPECT_TRUE(parse_fails("{\"k" + euro.substr(0, 2)));
  // The same bytes with their quote intact parse fine: the reader passes
  // unrecognized high bytes through rather than validating encodings.
  EXPECT_FALSE(parse_fails("\"" + euro + "\""));
}

TEST(JsonReadTornTest, EveryPrefixOfARealRecordFailsOrParses) {
  // The exact shape the journal and report writers emit, prefix by prefix —
  // the property a crashed writer actually exercises. Each prefix must
  // either parse (a lucky cut on a complete value) or error; with the
  // sanitizer jobs in CI this doubles as a memory-safety sweep.
  const std::string record =
      "{\n"
      "  \"index\": 3,\n"
      "  \"name\": \"cell \\\"3\\\" \\u0041\",\n"
      "  \"status\": \"ok\",\n"
      "  \"attempts\": 1,\n"
      "  \"metrics\": {\n"
      "    \"value\": 3.75,\n"
      "    \"third\": 0.6666666666666666,\n"
      "    \"negative\": -1.5e-3\n"
      "  },\n"
      "  \"counters\": {\n"
      "    \"instructions\": 18446744073709551615\n"
      "  },\n"
      "  \"flags\": [true, false, null]\n"
      "}";
  std::string full_error;
  parse_json(record, &full_error);
  ASSERT_TRUE(full_error.empty()) << full_error;

  std::size_t failed = 0;
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    std::string error;
    const JsonValue value = parse_json(record.substr(0, cut), &error);
    (void)value;
    if (!error.empty()) ++failed;
  }
  // Nearly every prefix is torn; a handful (e.g. whitespace-trimmed ends)
  // could parse if the document were a bare scalar, but an object cut short
  // never parses — all prefixes of this record must fail.
  EXPECT_EQ(failed, record.size());
}

TEST(JsonReadTornTest, HalfWrittenJournalPayloadIsARejectedRecord) {
  // What absorb sees when a CRC collision or manual edit lets a torn
  // payload through the framing: truncated JSON → parse error → the record
  // is dropped, not absorbed.
  const std::string payload =
      "{\"index\": 2, \"name\": \"cell 2\", \"status\": \"ok\", "
      "\"metrics\": {\"value\": 2.5}, \"counters\": {\"instructions\": 201}}";
  for (const std::size_t cut : {payload.size() - 1, payload.size() / 2,
                                std::size_t{1}}) {
    EXPECT_TRUE(parse_fails(payload.substr(0, cut))) << "cut " << cut;
  }
}

TEST(JsonReadTornTest, GarbageAfterACompleteValueIsAnError) {
  EXPECT_TRUE(parse_fails("{} trailing"));
  EXPECT_TRUE(parse_fails("1 2"));
  EXPECT_FALSE(parse_fails("{} \n\t "));  // trailing whitespace is fine
}

}  // namespace
}  // namespace stc
