#include "support/error.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(invalid_argument_error("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(corrupt_data_error("x").code(), ErrorCode::kCorruptData);
  EXPECT_EQ(io_error("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(not_found_error("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(timeout_error("x").code(), ErrorCode::kTimeout);
  EXPECT_EQ(fault_injected_error("x").code(), ErrorCode::kFaultInjected);
  EXPECT_EQ(internal_error("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(io_error("disk on fire").message(), "disk on fire");
}

TEST(StatusTest, ContextChainsOutsideIn) {
  const Status s = corrupt_data_error("crc mismatch")
                       .with_context("chunk 3")
                       .with_context("trace 'runs/test.trc'");
  EXPECT_EQ(s.message(), "trace 'runs/test.trc': chunk 3: crc mismatch");
  EXPECT_EQ(s.to_string(),
            "corrupt-data: trace 'runs/test.trc': chunk 3: crc mismatch");
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
}

TEST(StatusTest, ContextOnOkIsIdentity) {
  EXPECT_TRUE(Status::ok().with_context("ignored").is_ok());
  EXPECT_EQ(Status::ok().with_context("ignored").message(), "");
}

TEST(StatusErrorTest, CarriesStatusAndWhat) {
  const Status s = timeout_error("ran past the 2s deadline");
  try {
    throw StatusError(s);
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kTimeout);
    EXPECT_EQ(std::string(e.what()), s.to_string());
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(not_found_error("no such metric"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOnErrorThrowsStatusError) {
  Result<int> r(io_error("boom"));
  EXPECT_THROW(r.value(), StatusError);
  try {
    (void)r.value();
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kIoError);
  }
}

TEST(ResultTest, TakeMovesTheValueOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const std::vector<int> v = std::move(r).take();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(ResultTest, WithContextWrapsError) {
  Result<int> r = Result<int>(corrupt_data_error("bad varint"))
                      .with_context("chunk 0");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().message(), "chunk 0: bad varint");
}

TEST(ResultTest, MoveOnlyValueWorks) {
  // Result must hold move-only payloads (BlockTrace, file buffers).
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*std::move(r).take(), 9);
}

TEST(ErrorCodeTest, ToStringIsStable) {
  // These strings appear in BENCH_*.json failure entries — they are schema.
  EXPECT_STREQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid-argument");
  EXPECT_STREQ(to_string(ErrorCode::kCorruptData), "corrupt-data");
  EXPECT_STREQ(to_string(ErrorCode::kIoError), "io-error");
  EXPECT_STREQ(to_string(ErrorCode::kNotFound), "not-found");
  EXPECT_STREQ(to_string(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(to_string(ErrorCode::kFaultInjected), "fault-injected");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
}

}  // namespace
}  // namespace stc
