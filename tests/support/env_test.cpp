#include "support/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/error.h"

namespace stc::env {
namespace {

// Sets one environment variable for the test's scope, restoring the previous
// value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// Asserts the Result is an invalid-argument error naming knob and value.
template <typename T>
void expect_knob_error(const Result<T>& r, const char* knob,
                       const char* value) {
  ASSERT_FALSE(r.is_ok()) << knob << "='" << value << "' accepted";
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(knob), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find(value), std::string::npos)
      << r.status().message();
}

TEST(EnvTest, ThreadsDefaultsToZeroMeaningHardware) {
  ScopedEnv guard("STC_THREADS", nullptr);
  EXPECT_EQ(threads().value(), 0u);
}

TEST(EnvTest, ThreadsParsesAndBounds) {
  {
    ScopedEnv guard("STC_THREADS", "16");
    EXPECT_EQ(threads().value(), 16u);
  }
  for (const char* bad : {"all", "0", "4097", "-2", "3x", ""}) {
    ScopedEnv guard("STC_THREADS", bad);
    expect_knob_error(threads(), "STC_THREADS", bad);
  }
}

TEST(EnvTest, ScaleFactorStrictlyPositiveFinite) {
  {
    ScopedEnv guard("STC_SF", nullptr);
    EXPECT_DOUBLE_EQ(scale_factor().value(), 0.002);
  }
  {
    ScopedEnv guard("STC_SF", "0.01");
    EXPECT_DOUBLE_EQ(scale_factor().value(), 0.01);
  }
  // The historic failure mode: garbage parsed as 0 and silently ran a
  // degenerate experiment. Now a structured error.
  for (const char* bad : {"garbage", "0", "-1", "inf", "nan", ""}) {
    ScopedEnv guard("STC_SF", bad);
    expect_knob_error(scale_factor(), "STC_SF", bad);
  }
}

TEST(EnvTest, LineBytesPowerOfTwoInRange) {
  {
    ScopedEnv guard("STC_LINE", "64");
    EXPECT_EQ(line_bytes().value(), 64u);
  }
  for (const char* bad : {"48", "4", "2048", "0", "words"}) {
    ScopedEnv guard("STC_LINE", bad);
    expect_knob_error(line_bytes(), "STC_LINE", bad);
  }
}

TEST(EnvTest, BenchDirMustExist) {
  {
    ScopedEnv guard("STC_BENCH_DIR", nullptr);
    EXPECT_EQ(bench_dir().value(), ".");
  }
  {
    ScopedEnv guard("STC_BENCH_DIR", ::testing::TempDir().c_str());
    EXPECT_TRUE(bench_dir().is_ok());
  }
  {
    ScopedEnv guard("STC_BENCH_DIR", "/nonexistent/bench/dir");
    expect_knob_error(bench_dir(), "STC_BENCH_DIR", "/nonexistent/bench/dir");
  }
}

TEST(EnvTest, VerifyIsStrictlyBoolean) {
  {
    ScopedEnv guard("STC_VERIFY", nullptr);
    EXPECT_FALSE(verify().value());
  }
  {
    ScopedEnv guard("STC_VERIFY", "1");
    EXPECT_TRUE(verify().value());
  }
  {
    ScopedEnv guard("STC_VERIFY", "0");
    EXPECT_FALSE(verify().value());
  }
  // "yes" used to be treated as truthy; now it is a refusal to guess.
  for (const char* bad : {"yes", "true", "2"}) {
    ScopedEnv guard("STC_VERIFY", bad);
    expect_knob_error(verify(), "STC_VERIFY", bad);
  }
}

TEST(EnvTest, BpredNamesTheAcceptedSet) {
  {
    ScopedEnv guard("STC_BPRED", "gshare");
    EXPECT_EQ(bpred().value(), "gshare");
  }
  ScopedEnv guard("STC_BPRED", "tage");
  const auto r = bpred();
  expect_knob_error(r, "STC_BPRED", "tage");
  EXPECT_NE(r.status().message().find("perfect|always|bimodal|gshare|local"),
            std::string::npos);
}

TEST(EnvTest, ReplayNamesTheAcceptedSet) {
  {
    ScopedEnv guard("STC_REPLAY", nullptr);
    EXPECT_EQ(replay().value(), "auto");  // unset → engine picks
  }
  for (const char* good : {"interp", "batched", "compiled", "auto"}) {
    ScopedEnv guard("STC_REPLAY", good);
    EXPECT_EQ(replay().value(), good);
  }
  for (const char* bad : {"jit", "Interp", "compiled ", ""}) {
    ScopedEnv guard("STC_REPLAY", bad);
    const auto r = replay();
    expect_knob_error(r, "STC_REPLAY", bad);
    EXPECT_NE(r.status().message().find("interp|batched|compiled|auto"),
              std::string::npos);
  }
}

TEST(EnvTest, BackendNamesTheAcceptedSet) {
  {
    ScopedEnv guard("STC_BACKEND", nullptr);
    EXPECT_EQ(backend().value(), "off");  // unset → the paper's simulators
  }
  for (const char* good : {"off", "inorder", "ooo"}) {
    ScopedEnv guard("STC_BACKEND", good);
    EXPECT_EQ(backend().value(), good);
  }
  for (const char* bad : {"tomasulo", "Ooo", "ooo ", ""}) {
    ScopedEnv guard("STC_BACKEND", bad);
    const auto r = backend();
    expect_knob_error(r, "STC_BACKEND", bad);
    EXPECT_NE(r.status().message().find("off|inorder|ooo"),
              std::string::npos);
  }
}

TEST(EnvTest, IqDepthBounded) {
  {
    ScopedEnv guard("STC_IQ_DEPTH", nullptr);
    EXPECT_EQ(iq_depth().value(), 16u);
  }
  {
    ScopedEnv guard("STC_IQ_DEPTH", "1");
    EXPECT_EQ(iq_depth().value(), 1u);
  }
  for (const char* bad : {"0", "1025", "deep"}) {
    ScopedEnv guard("STC_IQ_DEPTH", bad);
    expect_knob_error(iq_depth(), "STC_IQ_DEPTH", bad);
  }
}

TEST(EnvTest, RobDepthBounded) {
  {
    ScopedEnv guard("STC_ROB_DEPTH", nullptr);
    EXPECT_EQ(rob_depth().value(), 64u);
  }
  {
    ScopedEnv guard("STC_ROB_DEPTH", "4096");
    EXPECT_EQ(rob_depth().value(), 4096u);
  }
  for (const char* bad : {"0", "4097", "big"}) {
    ScopedEnv guard("STC_ROB_DEPTH", bad);
    expect_knob_error(rob_depth(), "STC_ROB_DEPTH", bad);
  }
}

TEST(EnvTest, ValidateAllChecksBackendKnobs) {
  {
    ScopedEnv guard("STC_BACKEND", "scoreboard");
    const Status s = validate_all();
    ASSERT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("STC_BACKEND"), std::string::npos);
  }
  ScopedEnv guard("STC_ROB_DEPTH", "0");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_ROB_DEPTH"), std::string::npos);
}

TEST(EnvTest, ValidateAllChecksReplay) {
  ScopedEnv guard("STC_REPLAY", "jit");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_REPLAY"), std::string::npos);
}

TEST(EnvTest, FtqDepthBounded) {
  {
    ScopedEnv guard("STC_FTQ_DEPTH", "0");
    EXPECT_EQ(ftq_depth().value(), 0u);
  }
  ScopedEnv guard("STC_FTQ_DEPTH", "1025");
  expect_knob_error(ftq_depth(), "STC_FTQ_DEPTH", "1025");
}

TEST(EnvTest, TenantsBounded) {
  {
    ScopedEnv guard("STC_TENANTS", nullptr);
    EXPECT_EQ(tenants().value(), 4u);
  }
  {
    ScopedEnv guard("STC_TENANTS", "64");
    EXPECT_EQ(tenants().value(), 64u);
  }
  for (const char* bad : {"0", "65", "many"}) {
    ScopedEnv guard("STC_TENANTS", bad);
    expect_knob_error(tenants(), "STC_TENANTS", bad);
  }
}

TEST(EnvTest, QuantumZeroMeansUnbounded) {
  {
    ScopedEnv guard("STC_QUANTUM", nullptr);
    EXPECT_EQ(quantum().value(), 1000u);
  }
  {
    ScopedEnv guard("STC_QUANTUM", "0");
    EXPECT_EQ(quantum().value(), 0u);
  }
  for (const char* bad : {"1000000001", "-1", "fast"}) {
    ScopedEnv guard("STC_QUANTUM", bad);
    expect_knob_error(quantum(), "STC_QUANTUM", bad);
  }
}

TEST(EnvTest, ArrivalNamesTheAcceptedSet) {
  {
    ScopedEnv guard("STC_ARRIVAL", nullptr);
    EXPECT_EQ(arrival().value(), "poisson");
  }
  for (const char* good : {"rr", "poisson", "bursty", "diurnal"}) {
    ScopedEnv guard("STC_ARRIVAL", good);
    EXPECT_EQ(arrival().value(), good);
  }
  ScopedEnv guard("STC_ARRIVAL", "uniform");
  const auto r = arrival();
  expect_knob_error(r, "STC_ARRIVAL", "uniform");
  EXPECT_NE(r.status().message().find("rr|poisson|bursty|diurnal"),
            std::string::npos);
}

TEST(EnvTest, TenantMixIsACommaListOfKnownMixes) {
  {
    ScopedEnv guard("STC_TENANT_MIX", nullptr);
    EXPECT_EQ(tenant_mix().value(), "dss,oltp");
  }
  {
    ScopedEnv guard("STC_TENANT_MIX", "oltp");
    EXPECT_EQ(tenant_mix().value(), "oltp");
  }
  {
    ScopedEnv guard("STC_TENANT_MIX", "dss,dss_train,oltp");
    EXPECT_EQ(tenant_mix().value(), "dss,dss_train,oltp");
  }
  for (const char* bad : {"", "dss,", ",oltp", "tpcc", "dss;oltp"}) {
    ScopedEnv guard("STC_TENANT_MIX", bad);
    ASSERT_FALSE(tenant_mix().is_ok()) << "accepted '" << bad << "'";
    EXPECT_NE(tenant_mix().status().message().find("STC_TENANT_MIX"),
              std::string::npos);
  }
}

TEST(EnvTest, ValidateAllChecksComposerKnobs) {
  ScopedEnv guard("STC_ARRIVAL", "uniform");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_ARRIVAL"), std::string::npos);
}

TEST(EnvTest, JobTimeoutNonNegativeSeconds) {
  {
    ScopedEnv guard("STC_JOB_TIMEOUT", "2.5");
    EXPECT_DOUBLE_EQ(job_timeout().value(), 2.5);
  }
  for (const char* bad : {"-1", "soon"}) {
    ScopedEnv guard("STC_JOB_TIMEOUT", bad);
    expect_knob_error(job_timeout(), "STC_JOB_TIMEOUT", bad);
  }
}

TEST(EnvTest, JobRetriesBounded) {
  {
    ScopedEnv guard("STC_JOB_RETRIES", "0");
    EXPECT_EQ(job_retries().value(), 0u);
  }
  ScopedEnv guard("STC_JOB_RETRIES", "17");
  expect_knob_error(job_retries(), "STC_JOB_RETRIES", "17");
}

TEST(EnvTest, ValidateAllReportsFirstBadKnob) {
  ScopedEnv guard("STC_THREADS", "many");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_THREADS"), std::string::npos);
}

TEST(EnvTest, ValidateAllChecksFaultSpecSyntax) {
  ScopedEnv guard("STC_FAULT", "bad.spec:");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_FAULT"), std::string::npos);
}

TEST(EnvTest, ShardsBounded) {
  EXPECT_EQ(shards().value(), 1u);  // default: no sharding
  {
    ScopedEnv guard("STC_SHARDS", "8");
    EXPECT_EQ(shards().value(), 8u);
  }
  for (const char* bad : {"0", "257", "four"}) {
    ScopedEnv guard("STC_SHARDS", bad);
    expect_knob_error(shards(), "STC_SHARDS", bad);
  }
}

TEST(EnvTest, ShardSpecIsIndexSlashCount) {
  EXPECT_EQ(shard().value(), "");  // default: not a shard worker
  {
    ScopedEnv guard("STC_SHARD", "2/4");
    EXPECT_EQ(shard().value(), "2/4");
  }
  for (const char* bad : {"4/4", "2", "/4", "2/", "a/b", "1/300"}) {
    ScopedEnv guard("STC_SHARD", bad);
    expect_knob_error(shard(), "STC_SHARD", bad);
  }
}

TEST(EnvTest, MmapIsStrictlyBoolean) {
  EXPECT_TRUE(mmap_enabled().value());  // default on
  {
    ScopedEnv guard("STC_MMAP", "0");
    EXPECT_FALSE(mmap_enabled().value());
  }
  ScopedEnv guard("STC_MMAP", "yes");
  expect_knob_error(mmap_enabled(), "STC_MMAP", "yes");
}

TEST(EnvTest, PlanCacheDirMustExist) {
  EXPECT_EQ(plan_cache_dir().value(), "");  // default: cache disabled
  {
    ScopedEnv guard("STC_PLAN_CACHE_DIR", ::testing::TempDir().c_str());
    EXPECT_EQ(plan_cache_dir().value(), ::testing::TempDir());
  }
  ScopedEnv guard("STC_PLAN_CACHE_DIR", "/nonexistent/cache/dir");
  expect_knob_error(plan_cache_dir(), "STC_PLAN_CACHE_DIR",
                    "/nonexistent/cache/dir");
}

TEST(EnvTest, ValidateAllChecksShardKnobs) {
  ScopedEnv guard("STC_SHARDS", "1000");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_SHARDS"), std::string::npos);
}

TEST(EnvTest, ResumeIsStrictlyBoolean) {
  {
    ScopedEnv guard("STC_RESUME", nullptr);
    EXPECT_FALSE(resume().value());  // default: fresh run
  }
  {
    ScopedEnv guard("STC_RESUME", "1");
    EXPECT_TRUE(resume().value());
  }
  {
    ScopedEnv guard("STC_RESUME", "0");
    EXPECT_FALSE(resume().value());
  }
  for (const char* bad : {"yes", "true", "2"}) {
    ScopedEnv guard("STC_RESUME", bad);
    expect_knob_error(resume(), "STC_RESUME", bad);
  }
}

TEST(EnvTest, HeartbeatNonNegativeSeconds) {
  {
    ScopedEnv guard("STC_HEARTBEAT", nullptr);
    EXPECT_DOUBLE_EQ(heartbeat().value(), 0.0);  // default: supervision off
  }
  {
    ScopedEnv guard("STC_HEARTBEAT", "2.5");
    EXPECT_DOUBLE_EQ(heartbeat().value(), 2.5);
  }
  {
    ScopedEnv guard("STC_HEARTBEAT", "0");
    EXPECT_DOUBLE_EQ(heartbeat().value(), 0.0);
  }
  for (const char* bad : {"-1", "inf", "nan", "soon", ""}) {
    ScopedEnv guard("STC_HEARTBEAT", bad);
    expect_knob_error(heartbeat(), "STC_HEARTBEAT", bad);
  }
}

TEST(EnvTest, ZeroTimingsIsStrictlyBoolean) {
  {
    ScopedEnv guard("STC_ZERO_TIMINGS", nullptr);
    EXPECT_FALSE(zero_timings().value());
  }
  {
    ScopedEnv guard("STC_ZERO_TIMINGS", "1");
    EXPECT_TRUE(zero_timings().value());
  }
  for (const char* bad : {"yes", "2"}) {
    ScopedEnv guard("STC_ZERO_TIMINGS", bad);
    expect_knob_error(zero_timings(), "STC_ZERO_TIMINGS", bad);
  }
}

TEST(EnvTest, ValidateAllChecksResilienceKnobs) {
  {
    ScopedEnv guard("STC_RESUME", "maybe");
    const Status s = validate_all();
    ASSERT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("STC_RESUME"), std::string::npos);
  }
  {
    ScopedEnv guard("STC_HEARTBEAT", "-3");
    const Status s = validate_all();
    ASSERT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("STC_HEARTBEAT"), std::string::npos);
  }
  // STC_CRASH shares the fault-spec grammar; malformed specs are rejected up
  // front rather than exploding inside a worker.
  ScopedEnv guard("STC_CRASH", "point:");
  const Status s = validate_all();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("STC_CRASH"), std::string::npos);
}

TEST(EnvTest, ValidateAllCleanEnvironmentIsOk) {
  ScopedEnv t("STC_THREADS", nullptr);
  ScopedEnv sf("STC_SF", nullptr);
  ScopedEnv fault("STC_FAULT", nullptr);
  EXPECT_TRUE(validate_all().is_ok());
}

}  // namespace
}  // namespace stc::env
