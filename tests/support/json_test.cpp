#include "support/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace stc {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("4K/256B ops"), "4K/256B ops");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("\x00", 1)), "\\u0000");
}

TEST(JsonEscapeTest, PassesUtf8BytesThrough) {
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonNumberTest, IntegralValuesHaveNoFraction) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(1e9), "1000000000");
}

TEST(JsonNumberTest, RoundTripsThroughStrtod) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           3.141592653589793,
                           2.5066282746310002,
                           1e-300,
                           -123.456e77,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonNumberTest, NegativeZeroKeepsItsSign) {
  EXPECT_EQ(json_number(-0.0), "-0");
  EXPECT_EQ(json_number(0.0), "0");
}

TEST(JsonNumberTest, SeventeenDigitValuesRoundTrip) {
  // Doubles that need the full 17 significant digits to distinguish from
  // their neighbors (precision 15 and 16 fail for these).
  const double values[] = {0.1 + 0.2,                 // 0.30000000000000004
                           1.0 + 1e-15,
                           9007199254740993.1,        // above 2^53
                           5e-324,                    // min subnormal
                           1.7976931348623157e308};   // max double
  for (const double v : values) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonWriterTest, NonFiniteValuesSerializeAsNull) {
  JsonWriter w;
  w.begin_object()
      .key("nan")
      .value(std::nan(""))
      .key("inf")
      .value(std::numeric_limits<double>::infinity())
      .key("ninf")
      .value(-std::numeric_limits<double>::infinity())
      .end_object();
  EXPECT_EQ(w.str(),
            "{\n  \"nan\": null,\n  \"inf\": null,\n  \"ninf\": null\n}");
}

TEST(JsonWriterTest, EmptyContainers) {
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.begin_array().end_array();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriterTest, FlatObjectKeepsInsertionOrder) {
  JsonWriter w;
  w.begin_object()
      .key("b")
      .value("two")
      .key("a")
      .value(1)
      .key("ok")
      .value(true)
      .key("miss")
      .null()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\n  \"b\": \"two\",\n  \"a\": 1,\n  \"ok\": true,\n"
            "  \"miss\": null\n}");
}

TEST(JsonWriterTest, NestedStructuresIndentPerDepth) {
  JsonWriter w;
  w.begin_object()
      .key("results")
      .begin_array()
      .begin_object()
      .key("name")
      .value("cell")
      .key("values")
      .begin_array()
      .value(1)
      .value(2.5)
      .end_array()
      .end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"results\": [\n"
            "    {\n"
            "      \"name\": \"cell\",\n"
            "      \"values\": [\n"
            "        1,\n"
            "        2.5\n"
            "      ]\n"
            "    }\n"
            "  ]\n"
            "}");
}

TEST(JsonWriterTest, EscapesKeysAndValues) {
  JsonWriter w;
  w.begin_object().key("a\"b").value("c\nd").end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\\\"b\": \"c\\nd\"\n}");
}

TEST(JsonWriterTest, LargeUnsignedValuesSurviveExactly) {
  JsonWriter w;
  const std::uint64_t big = 18446744073709551615ull;
  w.begin_object().key("n").value(big).end_object();
  EXPECT_EQ(w.str(), "{\n  \"n\": 18446744073709551615\n}");
}

TEST(JsonWriterTest, IdenticalInputsGiveIdenticalBytes) {
  const auto build = [] {
    JsonWriter w;
    w.begin_object()
        .key("pi")
        .value(3.141592653589793)
        .key("xs")
        .begin_array()
        .value(std::uint64_t{7})
        .value(false)
        .end_array()
        .end_object();
    return w.str();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace stc
