// Checkpoint/resume for the experiment runner: every finished cell is
// journaled as it completes; STC_RESUME=1 replays the journal, skips the
// recorded cells (including failures — their retry budget is spent), and
// produces a report byte-identical to an uninterrupted run.
#include "support/experiment.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/faultpoint.h"
#include "support/journal.h"

namespace stc {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

class ExperimentResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    dir_ = ::testing::TempDir() + "/stc_resume_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(
        ::system(("rm -rf '" + dir_ + "' && mkdir '" + dir_ + "'").c_str()),
        0);
  }
  void TearDown() override {
    fault::reset();
    [[maybe_unused]] int rc = ::system(("rm -rf '" + dir_ + "'").c_str());
  }

  // A 6-cell grid; `ran` records which cells actually executed in this
  // process (a resumed cell must not re-execute).
  ExperimentRunner make_grid(std::vector<int>* ran = nullptr,
                             int failing_index = -1) {
    ExperimentRunner runner("resumegrid");
    runner.set_shardable(true);  // journaling rides the shardable contract
    runner.meta("k", std::uint64_t{6});
    for (std::size_t i = 0; i < 6; ++i) {
      runner.add("cell " + std::to_string(i), {{"index", std::to_string(i)}},
                 [i, ran, failing_index] {
                   if (ran != nullptr) ran->push_back(static_cast<int>(i));
                   if (static_cast<int>(i) == failing_index) {
                     throw StatusError(
                         internal_error("deliberate failure in cell"));
                   }
                   ExperimentResult r;
                   r.metric("value", double(i) * 1.25);
                   r.metric("third", double(i) / 3.0);
                   r.counters().add("instructions", 100 * i + 1);
                   return r;
                 });
    }
    return runner;
  }

  std::string journal_file() const {
    return dir_ + "/BENCH_resumegrid.journal";
  }

  // Truncates the journal so only the first `keep` records survive —
  // exactly what a crash between cell `keep` and `keep+1` leaves behind.
  void truncate_journal_to(std::size_t keep) {
    Result<JournalScan> scan = read_journal(journal_file());
    ASSERT_TRUE(scan.is_ok());
    ASSERT_GE(scan.value().payloads.size(), keep);
    const std::size_t bytes =
        keep == 0 ? 0 : scan.value().record_ends[keep - 1];
    ASSERT_EQ(::truncate(journal_file().c_str(),
                         static_cast<off_t>(bytes)),
              0);
  }

  std::string dir_;
};

TEST_F(ExperimentResumeTest, JournalRecordsEveryCompletedCell) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv resume("STC_RESUME", nullptr);
  ExperimentRunner runner = make_grid();
  runner.run(1);
  Result<JournalScan> scan = read_journal(journal_file());
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().payloads.size(), 6u);
  EXPECT_FALSE(scan.value().torn);
}

TEST_F(ExperimentResumeTest, ResumeSkipsJournaledCellsAndMatchesByteExact) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv zero("STC_ZERO_TIMINGS", "1");  // byte-compare the full report
  std::string reference;
  {
    ScopedEnv resume("STC_RESUME", nullptr);
    ExperimentRunner runner = make_grid();
    runner.run(1);
    reference = runner.report_json();
  }
  // Keep only the first 4 records: the "crash" hit between cells 3 and 4.
  truncate_journal_to(4);

  ScopedEnv resume("STC_RESUME", "1");
  std::vector<int> ran;
  ExperimentRunner resumed = make_grid(&ran);
  resumed.run(1);
  EXPECT_EQ(ran, (std::vector<int>{4, 5}));  // only the unjournaled tail
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(resumed.report_json(), reference);
}

TEST_F(ExperimentResumeTest, JournaledFailuresAreFinalNotReRun) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv zero("STC_ZERO_TIMINGS", "1");
  std::string reference;
  {
    ScopedEnv resume("STC_RESUME", nullptr);
    ExperimentRunner runner = make_grid(nullptr, /*failing_index=*/2);
    runner.set_max_retries(1);
    runner.run(1);
    ASSERT_FALSE(runner.all_ok());
    reference = runner.report_json();
  }
  // Resume with a grid that would now succeed: the journaled failure spent
  // its retry budget in the original run and must be replayed, not retried —
  // otherwise the resumed report could not match the uninterrupted one.
  ScopedEnv resume("STC_RESUME", "1");
  std::vector<int> ran;
  ExperimentRunner resumed = make_grid(&ran);
  resumed.set_max_retries(1);
  resumed.run(1);
  EXPECT_TRUE(ran.empty());
  EXPECT_EQ(resumed.job_status(2), JobStatus::kFailed);
  ASSERT_EQ(resumed.failures().size(), 1u);
  EXPECT_EQ(resumed.failures()[0].attempts, 2u);
  EXPECT_EQ(resumed.report_json(), reference);
}

TEST_F(ExperimentResumeTest, StaleJournalIsDiscardedWithoutResume) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  {
    ScopedEnv resume("STC_RESUME", nullptr);
    ExperimentRunner runner = make_grid();
    runner.run(1);
  }
  ASSERT_TRUE(file_exists(journal_file()));
  ScopedEnv resume("STC_RESUME", nullptr);
  std::vector<int> ran;
  ExperimentRunner again = make_grid(&ran);
  again.run(1);
  EXPECT_EQ(ran.size(), 6u);  // every cell re-ran: no silent resume
}

TEST_F(ExperimentResumeTest, TornJournalTailIsTruncatedAndReRun) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv zero("STC_ZERO_TIMINGS", "1");
  std::string reference;
  {
    ScopedEnv resume("STC_RESUME", nullptr);
    ExperimentRunner runner = make_grid();
    runner.run(1);
    reference = runner.report_json();
  }
  truncate_journal_to(3);
  {
    // A half-written record after the 3 good ones: mid-crash state.
    std::ofstream out(journal_file(),
                      std::ios::binary | std::ios::app);
    out << "STCJ1 400 0123abcd\n{\"index\": 3, \"na";
  }
  ScopedEnv resume("STC_RESUME", "1");
  std::vector<int> ran;
  ExperimentRunner resumed = make_grid(&ran);
  resumed.run(1);
  EXPECT_EQ(ran, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(resumed.report_json(), reference);
}

TEST_F(ExperimentResumeTest, MismatchedJournalRecordsAreDropped) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  {
    // A journal from a *different* grid: same bench name, other job names.
    ScopedEnv resume("STC_RESUME", nullptr);
    ExperimentRunner other("resumegrid");
    other.set_shardable(true);
    other.add("not the same cell", [] { return ExperimentResult(); });
    other.run(1);
  }
  ScopedEnv resume("STC_RESUME", "1");
  std::vector<int> ran;
  ExperimentRunner resumed = make_grid(&ran);
  resumed.run(1);
  EXPECT_EQ(ran.size(), 6u);  // nothing absorbed from the foreign journal
  EXPECT_TRUE(resumed.all_ok());
}

TEST_F(ExperimentResumeTest, WriteReportRetiresTheJournal) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv resume("STC_RESUME", nullptr);
  ExperimentRunner runner = make_grid();
  runner.run(1);
  ASSERT_TRUE(file_exists(journal_file()));
  ASSERT_TRUE(runner.write_report().is_ok());
  EXPECT_FALSE(file_exists(journal_file()));
  EXPECT_TRUE(file_exists(dir_ + "/BENCH_resumegrid.json"));
}

TEST_F(ExperimentResumeTest, PlainRunnersDoNotJournal) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv resume("STC_RESUME", nullptr);
  ExperimentRunner runner("resumegrid");  // not shardable
  runner.add("only", [] { return ExperimentResult(); });
  runner.run(1);
  EXPECT_FALSE(file_exists(journal_file()));
}

TEST_F(ExperimentResumeTest, SetJournalingOverridesTheDefault) {
  ScopedEnv bench_dir("STC_BENCH_DIR", dir_.c_str());
  ScopedEnv resume("STC_RESUME", nullptr);
  ExperimentRunner runner("resumegrid");
  runner.set_journaling(true);  // journaling without the shard contract
  runner.add("only", [] { return ExperimentResult(); });
  runner.run(1);
  EXPECT_TRUE(file_exists(journal_file()));
}

}  // namespace
}  // namespace stc
