#include "support/stats.h"

#include <gtest/gtest.h>

namespace stc {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(BoundedHistogramTest, BucketsAndOverflow) {
  BoundedHistogram h({10, 100, 1000});
  h.add(5);      // < 10
  h.add(10);     // < 100 (upper bounds are exclusive below)
  h.add(99);     // < 100
  h.add(500);    // < 1000
  h.add(5000);   // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction_below(10), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(100), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(1000), 4.0 / 5.0);
}

TEST(BoundedHistogramTest, WeightedAdds) {
  BoundedHistogram h({10, 100});
  h.add(1, 9);
  h.add(50, 1);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.fraction_below(10), 0.9);
}

TEST(BoundedHistogramTest, EmptyFractionIsZero) {
  BoundedHistogram h({10});
  EXPECT_DOUBLE_EQ(h.fraction_below(10), 0.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

}  // namespace
}  // namespace stc
