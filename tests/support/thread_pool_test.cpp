#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace stc {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, InlineModeWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);  // inline mode spawns no workers
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(50, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(256, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  // On a single-core host the pool runs inline (no workers); otherwise it
  // spawns one worker per hardware thread. Either way every index runs.
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 1) {
    EXPECT_EQ(pool.thread_count(), hw);
  } else {
    EXPECT_EQ(pool.thread_count(), 0u);
  }
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr std::size_t kTasks = 10000;
  std::vector<std::atomic<std::uint8_t>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1)
      << "index " << i;
}

TEST(ThreadPoolTest, ResultsIndependentOfExecutionOrder) {
  // Workers may pick up indices in any order; writing into index-addressed
  // slots must still produce the same vector as a serial loop.
  std::vector<std::uint64_t> serial(512);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = i * 2654435761u;

  for (const std::size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(serial.size(), 0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = i * 2654435761u; });
    EXPECT_EQ(out, serial) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   ++ran;
                                   if (i == 37) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The batch drains fully (no wedged workers) and the pool stays usable.
  EXPECT_EQ(ran.load(), 100);
  std::atomic<int> again{0};
  pool.parallel_for(50, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 50);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndLaterBatchesAreClean) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     10, [&](std::size_t) { throw std::runtime_error("boom"); }),
                 std::runtime_error);
  }
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPoolTest, InlineModeExceptionPropagates) {
  ThreadPool pool(1);  // no workers: tasks run on the caller
  EXPECT_THROW(
      pool.parallel_for(5, [&](std::size_t) { throw std::logic_error("inl"); }),
      std::logic_error);
}

TEST(ThreadPoolTest, MixedDurationStress) {
  // Tasks with wildly different runtimes must all complete exactly once and
  // the pool must stay usable for further batches.
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int round = 0; round < 3; ++round) {
    pool.parallel_for(kTasks, [&](std::size_t i) {
      if (i % 17 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else if (i % 5 == 0) {
        volatile std::uint64_t spin = 0;
        for (int k = 0; k < 1000; ++k) spin += k;
      }
      ++hits[i];
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

}  // namespace
}  // namespace stc
