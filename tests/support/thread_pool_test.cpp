#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace stc {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, InlineModeWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);  // inline mode spawns no workers
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(50, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(256, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace stc
