#include "support/io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/faultpoint.h"

namespace stc {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override {
    fault::reset();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_ = temp_path("stc_io_test.txt");
};

TEST_F(AtomicWriteTest, WritesAndReplaces) {
  ASSERT_TRUE(write_file_atomic(path_, "one", 3, "test.write").is_ok());
  EXPECT_EQ(slurp(path_), "one");
  ASSERT_TRUE(write_file_atomic(path_, "twotwo", 6, "test.write").is_ok());
  EXPECT_EQ(slurp(path_), "twotwo");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicWriteTest, UnwritableDirectoryIsIoError) {
  const Status s =
      write_file_atomic("/nonexistent/dir/file.txt", "x", 1, "test.write");
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kIoError);
  EXPECT_NE(s.message().find("/nonexistent/dir/file.txt"), std::string::npos);
}

TEST_F(AtomicWriteTest, FaultAtEveryStepLeavesOldContentIntact) {
  // The no-torn-file property: whichever step fails, the previous content
  // survives untouched and no temp file is left behind.
  ASSERT_TRUE(write_file_atomic(path_, "old", 3, "test.write").is_ok());
  for (const char* point :
       {"test.write.open", "test.write.write", "test.write.rename"}) {
    fault::arm(point);
    const Status s = write_file_atomic(path_, "NEW", 3, "test.write");
    ASSERT_FALSE(s.is_ok()) << point;
    EXPECT_EQ(s.code(), ErrorCode::kFaultInjected) << point;
    EXPECT_EQ(slurp(path_), "old") << point;
    EXPECT_FALSE(exists(path_ + ".tmp")) << point;
  }
  // With the faults consumed the write goes through.
  ASSERT_TRUE(write_file_atomic(path_, "NEW", 3, "test.write").is_ok());
  EXPECT_EQ(slurp(path_), "NEW");
}

TEST(ReadFileTest, MissingFileIsNotFound) {
  auto r = read_file("/nonexistent/file.bin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ReadFileTest, RoundTripsBytes) {
  const std::string path = temp_path("stc_io_roundtrip.bin");
  const std::vector<std::uint8_t> payload = {0x00, 0xff, 0x7f, 0x0a, 0x00};
  ASSERT_TRUE(
      write_file_atomic(path, payload.data(), payload.size(), "test.write")
          .is_ok());
  auto r = read_file(path);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), payload);
  std::remove(path.c_str());
}

TEST(ReadFileTest, EmptyFileReadsEmpty) {
  const std::string path = temp_path("stc_io_empty.bin");
  ASSERT_TRUE(write_file_atomic(path, "", 0, "test.write").is_ok());
  auto r = read_file(path);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().empty());
  std::remove(path.c_str());
}

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    payload_.resize(10000);
    for (std::size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    ASSERT_TRUE(write_file_atomic(path_, payload_.data(), payload_.size(),
                                  "test.write")
                    .is_ok());
  }
  void TearDown() override {
    fault::reset();
    std::remove(path_.c_str());
  }
  bool matches(const MappedFile& file) const {
    return file.size() == payload_.size() &&
           std::equal(payload_.begin(), payload_.end(), file.data());
  }
  std::string path_ = temp_path("stc_io_mapped.bin");
  std::vector<std::uint8_t> payload_;
};

TEST_F(MappedFileTest, MapsRegularFile) {
  auto r = MappedFile::open(path_);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().mapped());
  EXPECT_TRUE(matches(r.value()));
}

TEST_F(MappedFileTest, MapFaultFallsBackToBufferedRead) {
  // The mmap attempt is a named fault point; when it fires the open must
  // degrade to a buffered read with the same bytes, not an error.
  fault::arm("trace.mmap.open");
  auto r = MappedFile::open(path_, true, "trace.mmap.open");
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().mapped());
  EXPECT_TRUE(matches(r.value()));
}

TEST_F(MappedFileTest, WantMapFalseReadsBuffered) {
  auto r = MappedFile::open(path_, false);
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().mapped());
  EXPECT_TRUE(matches(r.value()));
}

TEST_F(MappedFileTest, ReleaseKeepsBytesReadable) {
  // MADV_DONTNEED on a read-only file map is non-destructive: released
  // pages re-fault with the same content.
  auto r = MappedFile::open(path_);
  ASSERT_TRUE(r.is_ok());
  r.value().release(0, r.value().size());
  EXPECT_TRUE(matches(r.value()));
}

TEST_F(MappedFileTest, ReleaseIsNoOpForBufferedAndOutOfRange) {
  auto r = MappedFile::open(path_, false);
  ASSERT_TRUE(r.is_ok());
  r.value().release(0, r.value().size());       // buffered: no-op
  r.value().release(payload_.size(), 100);      // out of range: no-op
  r.value().release(0, payload_.size() + 100);  // too long: no-op
  EXPECT_TRUE(matches(r.value()));
}

TEST_F(MappedFileTest, EmptyFileGivesEmptyUnmappedView) {
  const std::string empty = temp_path("stc_io_mapped_empty.bin");
  ASSERT_TRUE(write_file_atomic(empty, "", 0, "test.write").is_ok());
  auto r = MappedFile::open(empty);
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().mapped());
  EXPECT_EQ(r.value().size(), 0u);
  std::remove(empty.c_str());
}

TEST_F(MappedFileTest, MissingFileIsNotFound) {
  auto r = MappedFile::open("/nonexistent/file.bin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(MappedFileTest, MoveTransfersTheView) {
  auto r = MappedFile::open(path_);
  ASSERT_TRUE(r.is_ok());
  MappedFile moved = std::move(r).take();
  EXPECT_TRUE(moved.mapped());
  EXPECT_TRUE(matches(moved));
}

}  // namespace
}  // namespace stc
