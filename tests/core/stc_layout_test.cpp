#include "core/stc_layout.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc::core {
namespace {

TEST(FitExecThresholdTest, FittedPassRespectsBudget) {
  Rng rng(404);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto seeds = select_seeds(cfg, SeedKind::kAuto);
  for (std::uint64_t cfa : {256u, 1024u, 4096u}) {
    const std::uint64_t t = fit_exec_threshold(cfg, seeds, 0.4, cfa);
    std::vector<bool> visited(cfg.block_count.size(), false);
    const auto seqs =
        build_traces_complete(cfg, seeds, TraceBuildParams{t, 0.4}, &visited);
    EXPECT_LE(sequences_bytes(*image, seqs), cfa) << "cfa=" << cfa;
  }
}

TEST(FitExecThresholdTest, LargerBudgetAdmitsMoreCode) {
  Rng rng(405);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto seeds = select_seeds(cfg, SeedKind::kAuto);
  const std::uint64_t t_small = fit_exec_threshold(cfg, seeds, 0.4, 256);
  const std::uint64_t t_large = fit_exec_threshold(cfg, seeds, 0.4, 8192);
  EXPECT_GE(t_small, t_large);
}

TEST(FitExecThresholdTest, ZeroCfaReturnsSentinel) {
  Rng rng(406);
  auto image = testing::random_image(rng, 10);
  const auto cfg = testing::random_wcfg(*image, rng);
  EXPECT_EQ(fit_exec_threshold(cfg, select_seeds(cfg, SeedKind::kAuto), 0.4, 0),
            ~std::uint64_t{0});
}

TEST(StcLayoutTest, ProducesValidLayout) {
  Rng rng(407);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  result.layout.validate(*image);  // all blocks placed, no overlap
  EXPECT_LE(result.pass1_bytes, params.cfa_bytes);
  EXPECT_GE(result.num_passes, 2u);
}

TEST(StcLayoutTest, Pass1BlocksLiveInsideCfaWindowZero) {
  Rng rng(408);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  // Every non-CFA *sequence* block avoids CFA offsets; only the cold tail
  // may use them. Equivalent check: any block below pass1_bytes is in the
  // first region; blocks mapped at CFA offsets of later regions must be
  // unexecuted (cold).
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    const std::uint64_t addr = result.layout.addr(b);
    if (addr >= params.cache_bytes && addr % params.cache_bytes < params.cfa_bytes) {
      EXPECT_EQ(cfg.block_count[b], 0u)
          << "executed block in a reserved CFA window";
    }
  }
}

TEST(StcLayoutTest, ExecutedCodePrecedesColdCode) {
  Rng rng(409);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng, 0.3);
  StcParams params;
  params.cache_bytes = 4096;
  params.cfa_bytes = 1024;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  std::uint64_t max_hot = 0;
  std::uint64_t min_cold = ~std::uint64_t{0};
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    if (cfg.block_count[b] > 0) {
      max_hot = std::max(max_hot, result.layout.addr(b));
    } else {
      min_cold = std::min(min_cold, result.layout.addr(b));
    }
  }
  EXPECT_LT(max_hot, min_cold);
}

TEST(StcLayoutTest, ExplicitThresholdHonored) {
  Rng rng(410);
  auto image = testing::random_image(rng, 40);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 4096;
  params.cfa_bytes = 1024;
  params.exec_threshold_pass1 = 12345;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  EXPECT_EQ(result.exec_threshold_pass1, 12345u);
}

TEST(StcLayoutTest, OpsSeedsProduceValidLayoutToo) {
  Rng rng(411);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kOps, params);
  result.layout.validate(*image);
  EXPECT_EQ(result.layout.name(), "stc-ops");
}

TEST(StcLayoutTest, DeterministicAcrossRuns) {
  Rng rng(412);
  auto image = testing::random_image(rng, 50);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 256;
  const StcResult a = stc_layout(cfg, SeedKind::kAuto, params);
  const StcResult b = stc_layout(cfg, SeedKind::kAuto, params);
  for (cfg::BlockId blk = 0; blk < image->num_blocks(); ++blk) {
    ASSERT_EQ(a.layout.addr(blk), b.layout.addr(blk));
  }
}

}  // namespace
}  // namespace stc::core
