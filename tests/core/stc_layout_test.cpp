#include "core/stc_layout.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <utility>

#include "cfg/builder.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc::core {
namespace {

TEST(FitExecThresholdTest, FittedPassRespectsBudget) {
  Rng rng(404);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto seeds = select_seeds(cfg, SeedKind::kAuto);
  for (std::uint64_t cfa : {256u, 1024u, 4096u}) {
    const std::uint64_t t = fit_exec_threshold(cfg, seeds, 0.4, cfa);
    std::vector<bool> visited(cfg.block_count.size(), false);
    const auto seqs =
        build_traces_complete(cfg, seeds, TraceBuildParams{t, 0.4}, &visited);
    EXPECT_LE(sequences_bytes(*image, seqs), cfa) << "cfa=" << cfa;
  }
}

TEST(FitExecThresholdTest, LargerBudgetAdmitsMoreCode) {
  Rng rng(405);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto seeds = select_seeds(cfg, SeedKind::kAuto);
  const std::uint64_t t_small = fit_exec_threshold(cfg, seeds, 0.4, 256);
  const std::uint64_t t_large = fit_exec_threshold(cfg, seeds, 0.4, 8192);
  EXPECT_GE(t_small, t_large);
}

TEST(FitExecThresholdTest, ZeroCfaReturnsSentinel) {
  Rng rng(406);
  auto image = testing::random_image(rng, 10);
  const auto cfg = testing::random_wcfg(*image, rng);
  EXPECT_EQ(fit_exec_threshold(cfg, select_seeds(cfg, SeedKind::kAuto), 0.4, 0),
            ~std::uint64_t{0});
}

TEST(StcLayoutTest, ProducesValidLayout) {
  Rng rng(407);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  result.layout.validate(*image);  // all blocks placed, no overlap
  EXPECT_LE(result.pass1_bytes, params.cfa_bytes);
  EXPECT_GE(result.num_passes, 2u);
}

TEST(StcLayoutTest, Pass1BlocksLiveInsideCfaWindowZero) {
  Rng rng(408);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  // Every non-CFA *sequence* block avoids CFA offsets; only the cold tail
  // may use them. Equivalent check: any block below pass1_bytes is in the
  // first region; blocks mapped at CFA offsets of later regions must be
  // unexecuted (cold).
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    const std::uint64_t addr = result.layout.addr(b);
    if (addr >= params.cache_bytes && addr % params.cache_bytes < params.cfa_bytes) {
      EXPECT_EQ(cfg.block_count[b], 0u)
          << "executed block in a reserved CFA window";
    }
  }
}

TEST(StcLayoutTest, ExecutedCodePrecedesColdCode) {
  Rng rng(409);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng, 0.3);
  StcParams params;
  params.cache_bytes = 4096;
  params.cfa_bytes = 1024;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  std::uint64_t max_hot = 0;
  std::uint64_t min_cold = ~std::uint64_t{0};
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    if (cfg.block_count[b] > 0) {
      max_hot = std::max(max_hot, result.layout.addr(b));
    } else {
      min_cold = std::min(min_cold, result.layout.addr(b));
    }
  }
  EXPECT_LT(max_hot, min_cold);
}

TEST(StcLayoutTest, ExplicitThresholdHonored) {
  Rng rng(410);
  auto image = testing::random_image(rng, 40);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 4096;
  params.cfa_bytes = 1024;
  params.exec_threshold_pass1 = 12345;
  const StcResult result = stc_layout(cfg, SeedKind::kAuto, params);
  EXPECT_EQ(result.exec_threshold_pass1, 12345u);
}

TEST(StcLayoutTest, OpsSeedsProduceValidLayoutToo) {
  Rng rng(411);
  auto image = testing::random_image(rng, 80);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const StcResult result = stc_layout(cfg, SeedKind::kOps, params);
  result.layout.validate(*image);
  EXPECT_EQ(result.layout.name(), "stc-ops");
}

// ---- Tenant-partitioned layouts -------------------------------------------

// 8 one-block routines of 16 insns (64 bytes) each, so window geometry is
// easy to reason about.
std::unique_ptr<cfg::ProgramImage> grid_image() {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  for (int i = 0; i < 8; ++i) {
    b.routine("r" + std::to_string(i), m,
              {{"b", 16, cfg::BlockKind::kReturn}});
  }
  return b.build();
}

profile::WeightedCFG flat_wcfg(
    const cfg::ProgramImage& image,
    std::initializer_list<std::pair<cfg::BlockId, std::uint64_t>> counts) {
  profile::WeightedCFG cfg;
  cfg.image = &image;
  cfg.block_count.assign(image.num_blocks(), 0);
  cfg.succs.resize(image.num_blocks());
  for (const auto& [block, count] : counts) cfg.block_count[block] = count;
  return cfg;
}

TEST(StcLayoutPartitionedTest, BudgetsFollowTenantDemand) {
  const auto image = grid_image();
  // Tenant 0 carries ~190x tenant 1's dynamic instruction weight.
  const auto heavy = flat_wcfg(*image, {{0, 1000}, {1, 900}});
  const auto light = flat_wcfg(*image, {{2, 10}});
  StcParams params;
  params.cache_bytes = 512;
  params.cfa_bytes = 256;
  MappingProvenance prov;
  const StcResult result = stc_layout_partitioned({&heavy, &light},
                                                  SeedKind::kAuto, params,
                                                  &prov);
  result.layout.validate(*image);
  EXPECT_EQ(result.layout.name(), "stc-auto-part2");

  ASSERT_EQ(prov.num_tenant_regions, 2u);
  ASSERT_EQ(prov.tenant_region_start.size(), 3u);
  EXPECT_EQ(prov.tenant_region_start.front(), 0u);
  EXPECT_EQ(prov.tenant_region_start.back(), params.cfa_bytes);
  const std::uint64_t window0 =
      prov.tenant_region_start[1] - prov.tenant_region_start[0];
  const std::uint64_t window1 =
      prov.tenant_region_start[2] - prov.tenant_region_start[1];
  // Demand-weighted: the heavy tenant gets (much) more than the light one,
  // but every tenant keeps at least its one-byte floor.
  EXPECT_GT(window0, window1);
  EXPECT_GE(window1, 1u);
  // The heavy tenant's hot blocks start at its window's base.
  EXPECT_EQ(result.layout.addr(0), prov.tenant_region_start[0]);
  EXPECT_EQ(prov.tenant_of[0], 0u);
  EXPECT_EQ(prov.tenant_of[1], 0u);
}

TEST(StcLayoutPartitionedTest, ZeroWeightTenantsShareEvenly) {
  const auto image = grid_image();
  const auto idle_a = flat_wcfg(*image, {});
  const auto idle_b = flat_wcfg(*image, {});
  StcParams params;
  params.cache_bytes = 512;
  params.cfa_bytes = 256;
  MappingProvenance prov;
  const StcResult result = stc_layout_partitioned({&idle_a, &idle_b},
                                                  SeedKind::kAuto, params,
                                                  &prov);
  result.layout.validate(*image);
  ASSERT_EQ(prov.tenant_region_start.size(), 3u);
  // No demand signal: windows split evenly (modulo the leftover byte, which
  // goes to the first group), still tiling [0, cfa) with non-empty windows.
  EXPECT_EQ(prov.tenant_region_start.back(), params.cfa_bytes);
  for (std::size_t g = 0; g + 1 < prov.tenant_region_start.size(); ++g) {
    EXPECT_LT(prov.tenant_region_start[g], prov.tenant_region_start[g + 1]);
  }
  EXPECT_NEAR(static_cast<double>(prov.tenant_region_start[1]),
              static_cast<double>(params.cfa_bytes) / 2, 1.0);
}

TEST(StcLayoutPartitionedTest, DeterministicAcrossRuns) {
  Rng rng(413);
  auto image = testing::random_image(rng, 50);
  const auto cfg_a = testing::random_wcfg(*image, rng);
  const auto cfg_b = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 256;
  MappingProvenance prov_x;
  MappingProvenance prov_y;
  const StcResult x = stc_layout_partitioned({&cfg_a, &cfg_b}, SeedKind::kAuto,
                                             params, &prov_x);
  const StcResult y = stc_layout_partitioned({&cfg_a, &cfg_b}, SeedKind::kAuto,
                                             params, &prov_y);
  for (cfg::BlockId blk = 0; blk < image->num_blocks(); ++blk) {
    ASSERT_EQ(x.layout.addr(blk), y.layout.addr(blk));
  }
  EXPECT_EQ(prov_x.tenant_region_start, prov_y.tenant_region_start);
  EXPECT_EQ(prov_x.tenant_of, prov_y.tenant_of);
}

TEST(StcLayoutTest, DeterministicAcrossRuns) {
  Rng rng(412);
  auto image = testing::random_image(rng, 50);
  const auto cfg = testing::random_wcfg(*image, rng);
  StcParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 256;
  const StcResult a = stc_layout(cfg, SeedKind::kAuto, params);
  const StcResult b = stc_layout(cfg, SeedKind::kAuto, params);
  for (cfg::BlockId blk = 0; blk < image->num_blocks(); ++blk) {
    ASSERT_EQ(a.layout.addr(blk), b.layout.addr(blk));
  }
}

}  // namespace
}  // namespace stc::core
