// Parameterized property sweep: every layout algorithm, over a family of
// random programs and cache geometries, must produce a valid permutation of
// the program (every block placed exactly once, no overlaps) and must be
// deterministic.
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc::core {
namespace {

struct PropertyParams {
  LayoutKind kind;
  std::uint64_t seed;
  int routines;
  std::uint64_t cache_bytes;
  std::uint64_t cfa_bytes;
};

class LayoutPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(LayoutPropertyTest, IsValidPermutation) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto map = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  map.validate(*image);
}

TEST_P(LayoutPropertyTest, IsDeterministic) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto a = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  const auto b = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  for (cfg::BlockId blk = 0; blk < image->num_blocks(); ++blk) {
    ASSERT_EQ(a.addr(blk), b.addr(blk));
  }
}

TEST_P(LayoutPropertyTest, FootprintIsBoundedByImagePlusHoles) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto map = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  // Reserved CFA windows can at most double the packed size (cfa < cache),
  // plus one extra region of slack.
  EXPECT_LE(map.extent(*image), 2 * image->image_bytes() + 2 * p.cache_bytes);
}

std::vector<PropertyParams> make_params() {
  std::vector<PropertyParams> out;
  std::uint64_t seed = 1000;
  for (LayoutKind kind :
       {LayoutKind::kOrig, LayoutKind::kPettisHansen, LayoutKind::kTorrellas,
        LayoutKind::kStcAuto, LayoutKind::kStcOps}) {
    for (int routines : {5, 40, 120}) {
      for (std::uint64_t cache : {1024u, 8192u}) {
        out.push_back({kind, seed++, routines, cache, cache / 4});
      }
    }
  }
  return out;
}

std::string param_name(
    const ::testing::TestParamInfo<PropertyParams>& info) {
  std::string name = to_string(info.param.kind);
  for (char& c : name) {
    if (c == '&') c = 'n';
  }
  return name + "_r" + std::to_string(info.param.routines) + "_c" +
         std::to_string(info.param.cache_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutPropertyTest,
                         ::testing::ValuesIn(make_params()), param_name);

}  // namespace
}  // namespace stc::core
