// Parameterized property sweep: every layout algorithm, over a family of
// random programs and cache geometries, must produce a valid permutation of
// the program (every block placed exactly once, no overlaps), must be
// deterministic, and must satisfy the full layout-equivalence oracle
// (structure, replay equivalence, Figure 4 CFA occupancy) on a random trace.
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "verify/oracle.h"

namespace stc::core {
namespace {

struct PropertyParams {
  LayoutKind kind;
  std::uint64_t seed;
  int routines;
  std::uint64_t cache_bytes;
  std::uint64_t cfa_bytes;
};

class LayoutPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(LayoutPropertyTest, IsValidPermutation) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto map = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  map.validate(*image);
}

TEST_P(LayoutPropertyTest, IsDeterministic) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto a = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  const auto b = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  for (cfg::BlockId blk = 0; blk < image->num_blocks(); ++blk) {
    ASSERT_EQ(a.addr(blk), b.addr(blk));
  }
}

TEST_P(LayoutPropertyTest, FootprintIsBoundedByImagePlusHoles) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto map = make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes);
  // Each cache-sized region offers (cache - cfa) usable bytes outside the
  // reserved window, so the footprint can expand by cache/(cache - cfa);
  // allow 2x that for fragmentation plus two regions of slack.
  const std::uint64_t window = p.cache_bytes - p.cfa_bytes;
  const std::uint64_t regions = 2 * image->image_bytes() / window + 2;
  EXPECT_LE(map.extent(*image),
            regions * p.cache_bytes + 2 * p.cache_bytes);
}

// The oracle subsumes validate(): structure, replay equivalence over a
// random trace, and — for the CFA-aware layouts — the Figure 4 occupancy
// contract checked against the mapping's own provenance record.
TEST_P(LayoutPropertyTest, SatisfiesEquivalenceOracle) {
  const PropertyParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::random_image(rng, p.routines);
  const auto cfg = testing::random_wcfg(*image, rng);
  const auto trace = testing::random_trace(*image, rng, 5000);
  MappingProvenance provenance;
  const auto map =
      make_layout(p.kind, cfg, p.cache_bytes, p.cfa_bytes, &provenance);
  verify::OracleOptions options;
  options.simulators = false;  // sim invariants live in sim_property_test
  const auto report =
      verify::verify_layout(trace, *image, map, &provenance, options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

std::vector<PropertyParams> make_params() {
  std::vector<PropertyParams> out;
  std::uint64_t seed = 1000;
  for (LayoutKind kind :
       {LayoutKind::kOrig, LayoutKind::kPettisHansen, LayoutKind::kTorrellas,
        LayoutKind::kStcAuto, LayoutKind::kStcOps}) {
    for (int routines : {5, 40, 120}) {
      for (std::uint64_t cache : {1024u, 8192u}) {
        // Two seeds per (kind, routines, cache) point, and both a moderate
        // and an extreme CFA budget.
        out.push_back({kind, seed++, routines, cache, cache / 4});
        out.push_back({kind, seed++, routines, cache, cache - 4});
      }
    }
  }
  return out;
}

std::string param_name(
    const ::testing::TestParamInfo<PropertyParams>& info) {
  std::string name = to_string(info.param.kind);
  for (char& c : name) {
    if (c == '&') c = 'n';
  }
  return name + "_r" + std::to_string(info.param.routines) + "_c" +
         std::to_string(info.param.cache_bytes) + "_f" +
         std::to_string(info.param.cfa_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutPropertyTest,
                         ::testing::ValuesIn(make_params()), param_name);

// ---- Degenerate families ---------------------------------------------------
//
// Every layout kind must also satisfy the oracle on the edge-case program
// shapes: empty programs, single-block programs, all-single-block routines,
// blocks larger than a cache line, and non-return routine tails — driven by
// profiles containing self-loops and zero-weight edges.

struct DegenerateParams {
  LayoutKind kind;
  int family;
  std::uint64_t seed;
};

class DegenerateLayoutTest : public ::testing::TestWithParam<DegenerateParams> {
};

TEST_P(DegenerateLayoutTest, SatisfiesEquivalenceOracle) {
  const DegenerateParams& p = GetParam();
  Rng rng(p.seed);
  auto image = testing::degenerate_image(rng, p.family);
  const auto cfg = testing::degenerate_wcfg(*image, rng);
  const auto trace =
      image->num_blocks() == 0
          ? trace::BlockTrace{}
          : testing::random_trace(*image, rng, 2000);
  MappingProvenance provenance;
  const auto map = make_layout(p.kind, cfg, 1024, 256, &provenance);
  map.validate(*image);
  verify::OracleOptions options;
  options.simulators = false;
  const auto report =
      verify::verify_layout(trace, *image, map, &provenance, options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

std::vector<DegenerateParams> degenerate_params() {
  std::vector<DegenerateParams> out;
  std::uint64_t seed = 77000;
  for (LayoutKind kind :
       {LayoutKind::kOrig, LayoutKind::kPettisHansen, LayoutKind::kTorrellas,
        LayoutKind::kStcAuto, LayoutKind::kStcOps}) {
    for (int family = 0; family < testing::kNumDegenerateFamilies; ++family) {
      out.push_back({kind, family, seed++});
      out.push_back({kind, family, seed++});
    }
  }
  return out;
}

std::string degenerate_name(
    const ::testing::TestParamInfo<DegenerateParams>& info) {
  std::string kind = to_string(info.param.kind);
  for (char& c : kind) {
    if (c == '&') c = 'n';
  }
  return kind + "_" + testing::degenerate_family_name(info.param.family) +
         "_s" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(DegenerateFamilies, DegenerateLayoutTest,
                         ::testing::ValuesIn(degenerate_params()),
                         degenerate_name);

}  // namespace
}  // namespace stc::core
