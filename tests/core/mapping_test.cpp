#include "core/mapping.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::BlockKind;

// 16 one-block routines of 64 bytes each (16 insns), so placement geometry
// is easy to reason about.
struct Fixture {
  Fixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    for (int i = 0; i < 16; ++i) {
      b.routine("r" + std::to_string(i), m,
                {{"b", 16, BlockKind::kReturn}});
    }
    image = b.build();
  }
  Sequence seq(std::initializer_list<BlockId> blocks) const {
    Sequence s;
    s.blocks = blocks;
    return s;
  }
  std::unique_ptr<cfg::ProgramImage> image;
};

TEST(MappingTest, Pass1StartsAtZeroAndStaysInCfa) {
  Fixture f;
  MappingParams params{512, 128, false};
  // Pass 1: two 64-byte blocks -> exactly fills the 128-byte CFA.
  const auto map = map_sequences(
      *f.image, "t", {{f.seq({0, 1})}, {f.seq({2, 3, 4})}},
      {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, params);
  EXPECT_EQ(map.addr(0), 0u);
  EXPECT_EQ(map.addr(1), 64u);
  // Later passes start at the CFA boundary.
  EXPECT_EQ(map.addr(2), 128u);
}

TEST(MappingTest, CfaWindowReservedInEveryLogicalCache) {
  Fixture f;
  MappingParams params{256, 64, false};
  // Pass 2 has 8 blocks of 64B = 512B; non-CFA windows are 192B each, so
  // placement must skip offsets [0, 64) of every 256B region.
  const auto map = map_sequences(
      *f.image, "t", {{f.seq({0})}, {f.seq({1, 2, 3, 4, 5, 6, 7, 8})}},
      {9, 10, 11, 12, 13, 14, 15}, params);
  for (BlockId b = 1; b <= 8; ++b) {
    EXPECT_GE(map.addr(b) % 256, 64u) << "block " << b << " in CFA window";
  }
}

TEST(MappingTest, ColdFillIgnoresReservation) {
  Fixture f;
  MappingParams params{256, 64, false};
  std::vector<BlockId> cold;
  for (BlockId b = 1; b < 16; ++b) cold.push_back(b);
  const auto map =
      map_sequences(*f.image, "t", {{f.seq({0})}, {}}, cold, params);
  // 15 cold blocks of 64B from offset 64: they cover [64, 1024), which
  // necessarily includes CFA offsets of later regions.
  bool cold_in_cfa_window = false;
  for (BlockId b = 1; b < 16; ++b) {
    if (map.addr(b) % 256 < 64 && map.addr(b) >= 256) cold_in_cfa_window = true;
  }
  EXPECT_TRUE(cold_in_cfa_window);
  map.validate(*f.image);
}

TEST(MappingTest, ZeroCfaDisablesReservation) {
  Fixture f;
  MappingParams params{256, 0, false};
  const auto map = map_sequences(
      *f.image, "t", {{}, {f.seq({0, 1, 2, 3, 4, 5, 6, 7})}},
      {8, 9, 10, 11, 12, 13, 14, 15}, params);
  // Fully packed from zero.
  for (BlockId b = 0; b < 8; ++b) EXPECT_EQ(map.addr(b), b * 64u);
}

TEST(MappingTest, AvoidSplittingMovesSequenceToFreshWindow) {
  Fixture f;
  MappingParams params{256, 64, true};
  // First pass-2 sequence uses 128B of the 192B window; the second (128B)
  // does not fit the remaining 64B and must start at the next window.
  const auto map = map_sequences(
      *f.image, "t", {{}, {f.seq({0, 1}), f.seq({2, 3})}},
      {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, params);
  EXPECT_EQ(map.addr(0), 64u);
  EXPECT_EQ(map.addr(2), 256u + 64u);
  // Block 3 follows block 2 contiguously.
  EXPECT_EQ(map.addr(3), map.addr(2) + 64u);
}

TEST(MappingTest, SplittingAllowedPlacesBlockByBlock) {
  Fixture f;
  MappingParams params{256, 64, false};
  const auto map = map_sequences(
      *f.image, "t", {{}, {f.seq({0, 1}), f.seq({2, 3})}},
      {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, params);
  EXPECT_EQ(map.addr(2), 192u);        // last 64B of window 0
  EXPECT_EQ(map.addr(3), 256u + 64u);  // wraps into window 1
}

TEST(MappingTest, ProducesValidPermutation) {
  Fixture f;
  MappingParams params{512, 128, false};
  std::vector<BlockId> cold;
  for (BlockId b = 6; b < 16; ++b) cold.push_back(b);
  const auto map = map_sequences(
      *f.image, "t", {{f.seq({3})}, {f.seq({0, 1}), f.seq({2})}, {f.seq({4, 5})}},
      cold, params);
  map.validate(*f.image);  // aborts on overlap or missing blocks
}

TEST(MappingTest, PartitionedWindowsFollowTheBudgets) {
  Fixture f;
  MappingParams params{512, 256, false};
  MappingProvenance prov;
  // Two tenant groups: group 0's 128-byte budget holds blocks {0,1}, group
  // 1's 128-byte budget holds block {2}. Later pass and cold fill the rest.
  const auto map = map_sequences_partitioned(
      *f.image, "t", {{f.seq({0, 1})}, {f.seq({2})}}, {128, 128},
      {{f.seq({3, 4})}}, {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, params,
      &prov);
  EXPECT_EQ(map.addr(0), 0u);
  EXPECT_EQ(map.addr(1), 64u);
  EXPECT_EQ(map.addr(2), 128u);  // group 1 starts at its window boundary
  // Later passes start past the CFA and avoid every region's [0, 256).
  EXPECT_GE(map.addr(3), 256u);
  EXPECT_GE(map.addr(3) % 512, 256u);
  EXPECT_GE(map.addr(4) % 512, 256u);
  map.validate(*f.image);

  ASSERT_TRUE(prov.partitioned());
  EXPECT_EQ(prov.num_tenant_regions, 2u);
  const std::vector<std::uint64_t> expected_starts = {0, 128, 256};
  EXPECT_EQ(prov.tenant_region_start, expected_starts);
  EXPECT_EQ(prov.tenant_of[0], 0u);
  EXPECT_EQ(prov.tenant_of[1], 0u);
  EXPECT_EQ(prov.tenant_of[2], 1u);
  for (BlockId b = 3; b < 16; ++b) {
    EXPECT_EQ(prov.tenant_of[b], MappingProvenance::kNoTenant) << b;
  }
  EXPECT_EQ(prov.pass_of[0], 0u);
  EXPECT_EQ(prov.pass_of[2], 0u);
  EXPECT_EQ(prov.pass_of[3], 1u);
}

TEST(MappingTest, UnevenBudgetsShiftTheWindowBoundary) {
  Fixture f;
  MappingParams params{512, 256, false};
  MappingProvenance prov;
  // A 64/192 split: group 1 begins at offset 64 and can hold three blocks.
  const auto map = map_sequences_partitioned(
      *f.image, "t", {{f.seq({0})}, {f.seq({1, 2, 3})}}, {64, 192}, {},
      {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, params, &prov);
  EXPECT_EQ(map.addr(0), 0u);
  EXPECT_EQ(map.addr(1), 64u);
  EXPECT_EQ(map.addr(3), 192u);
  const std::vector<std::uint64_t> expected_starts = {0, 64, 256};
  EXPECT_EQ(prov.tenant_region_start, expected_starts);
  map.validate(*f.image);
}

TEST(MappingDeathTest, PartitionedBudgetsMustTileTheCfa) {
  Fixture f;
  MappingParams params{512, 256, false};
  std::vector<BlockId> cold;
  for (BlockId b = 2; b < 16; ++b) cold.push_back(b);
  EXPECT_DEATH(
      map_sequences_partitioned(*f.image, "t", {{f.seq({0})}, {f.seq({1})}},
                                {128, 64}, {}, cold, params),
      "sum to cfa_bytes");
}

TEST(MappingDeathTest, PartitionedSubWindowOverflowAborts) {
  Fixture f;
  MappingParams params{512, 256, false};
  std::vector<BlockId> cold;
  for (BlockId b = 4; b < 16; ++b) cold.push_back(b);
  // Group 0 needs 192 bytes but its budget is 128.
  EXPECT_DEATH(
      map_sequences_partitioned(*f.image, "t",
                                {{f.seq({0, 1, 2})}, {f.seq({3})}}, {128, 128},
                                {}, cold, params),
      "exceed the CFA sub-window");
}

TEST(MappingDeathTest, Pass1OverflowAborts) {
  Fixture f;
  MappingParams params{512, 128, false};
  std::vector<BlockId> cold;
  for (BlockId b = 3; b < 16; ++b) cold.push_back(b);
  EXPECT_DEATH(map_sequences(*f.image, "t", {{f.seq({0, 1, 2})}}, cold, params),
               "exceed the CFA");
}

TEST(MappingDeathTest, DoublePlacementAborts) {
  Fixture f;
  MappingParams params{512, 128, false};
  std::vector<BlockId> cold;
  for (BlockId b = 0; b < 16; ++b) cold.push_back(b);  // includes block 0 again
  EXPECT_DEATH(
      map_sequences(*f.image, "t", {{f.seq({0})}, {}}, cold, params),
      "already placed");
}

}  // namespace
}  // namespace stc::core
