// Tests of the greedy sequence builder, including a reconstruction of the
// paper's Figure 3 worked example (ExecThresh = 4, BranchThresh = 0.4):
// starting from seed A1 the main trace runs A1 -> ... -> A8; the transitions
// to B1 and C5 are discarded by the Branch Threshold; the A3 -> A5 transition
// is noted and grows a secondary trace containing only A5 (its successors
// are visited); no secondary trace starts from A6 because its weight is
// below the Exec Threshold.
#include "core/trace_builder.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::BlockKind;

// The Figure-3 weighted graph, with weights scaled by 10 so they are
// integral (ExecThresh 4 -> 40).
struct Figure3 {
  Figure3() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    // One routine per "function" of the example.
    a = b.routine("A", m,
                  {{"A1", 2, BlockKind::kBranch},
                   {"A2", 2, BlockKind::kBranch},
                   {"A3", 2, BlockKind::kBranch},
                   {"A4", 2, BlockKind::kBranch},
                   {"A5", 2, BlockKind::kBranch},
                   {"A6", 2, BlockKind::kBranch},
                   {"A7", 2, BlockKind::kBranch},
                   {"A8", 2, BlockKind::kReturn}});
    bb = b.routine("B", m, {{"B1", 2, BlockKind::kReturn}});
    c = b.routine("C", m,
                  {{"C1", 2, BlockKind::kBranch},
                   {"C2", 2, BlockKind::kBranch},
                   {"C3", 2, BlockKind::kBranch},
                   {"C4", 2, BlockKind::kBranch},
                   {"C5", 2, BlockKind::kReturn}});
    image = b.build();

    cfg.image = image.get();
    cfg.block_count.assign(image->num_blocks(), 0);
    cfg.succs.resize(image->num_blocks());
    count("A1", 100);
    count("A2", 100);
    count("A3", 100);
    count("A4", 60);
    count("A5", 40);
    count("A6", 24);
    count("A7", 76);
    count("A8", 100);
    count("B1", 10);
    count("C1", 300);
    count("C2", 300);
    count("C3", 150);
    count("C4", 150);
    count("C5", 1);
    edge("A1", "A2", 100);  // prob 1.0
    edge("A2", "A3", 90);   // prob 0.9
    edge("A2", "B1", 10);   // prob 0.1 -> discarded
    edge("A3", "A4", 60);   // prob 0.6 -> followed
    edge("A3", "A5", 40);   // prob 0.4 -> noted
    edge("A4", "A7", 60);   // prob 1.0
    edge("A5", "A6", 24);   // A6 below ExecThresh
    edge("A5", "A7", 16);
    edge("A7", "A8", 75);   // ~0.99
    edge("A7", "C5", 1);    // prob ~0.01 -> discarded
    edge("C1", "C2", 300);
    edge("C2", "C3", 150);
    edge("C2", "C4", 150);
    edge("C3", "C4", 0);
  }

  BlockId id(const std::string& name) const {
    for (BlockId b = 0; b < image->num_blocks(); ++b) {
      if (image->block(b).name == name) return b;
    }
    ADD_FAILURE() << "unknown block " << name;
    return 0;
  }
  void count(const std::string& name, std::uint64_t n) {
    cfg.block_count[id(name)] = n;
  }
  void edge(const std::string& from, const std::string& to, std::uint64_t n) {
    if (n == 0) return;
    cfg.succs[id(from)].push_back({id(to), n});
    std::sort(cfg.succs[id(from)].begin(), cfg.succs[id(from)].end(),
              [](const auto& x, const auto& y) {
                if (x.count != y.count) return x.count > y.count;
                return x.to < y.to;
              });
  }
  std::vector<std::string> names(const Sequence& seq) const {
    std::vector<std::string> out;
    for (BlockId b : seq.blocks) out.push_back(image->block(b).name);
    return out;
  }

  std::unique_ptr<cfg::ProgramImage> image;
  cfg::RoutineId a = 0, bb = 0, c = 0;
  profile::WeightedCFG cfg;
};

TEST(TraceBuilderFigure3Test, MainTraceRunsA1ToA8) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{40, 0.4});
  ASSERT_GE(seqs.size(), 1u);
  EXPECT_TRUE(seqs[0].main_trace);
  EXPECT_EQ(f.names(seqs[0]),
            (std::vector<std::string>{"A1", "A2", "A3", "A4", "A7", "A8"}));
}

TEST(TraceBuilderFigure3Test, SecondaryTraceIsA5Alone) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{40, 0.4});
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_FALSE(seqs[1].main_trace);
  EXPECT_EQ(f.names(seqs[1]), (std::vector<std::string>{"A5"}));
}

TEST(TraceBuilderFigure3Test, DiscardedBlocksStayOut) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{40, 0.4});
  for (const Sequence& seq : seqs) {
    for (BlockId b : seq.blocks) {
      const std::string& name = f.image->block(b).name;
      EXPECT_NE(name, "B1");  // branch threshold
      EXPECT_NE(name, "C5");  // branch threshold
      EXPECT_NE(name, "A6");  // exec threshold
    }
  }
}

TEST(TraceBuilderTest, SeedBelowExecThresholdSkipped) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A6")}, TraceBuildParams{40, 0.4});
  EXPECT_TRUE(seqs.empty());
}

TEST(TraceBuilderTest, VisitedSeedSkipped) {
  Figure3 f;
  std::vector<bool> visited(f.image->num_blocks(), false);
  visited[f.id("A1")] = true;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{40, 0.4}, &visited);
  EXPECT_TRUE(seqs.empty());
}

TEST(TraceBuilderTest, SecondSeedStartsAfterFirstCompletes) {
  Figure3 f;
  const auto seqs = build_traces(f.cfg, {f.id("A1"), f.id("C1")},
                                 TraceBuildParams{40, 0.4});
  // A's main + A5 secondary, then C's main (+ C4 secondary from C2).
  ASSERT_GE(seqs.size(), 3u);
  EXPECT_EQ(f.names(seqs[2])[0], "C1");
  EXPECT_EQ(seqs[2].seed_index, 1u);
  EXPECT_TRUE(seqs[2].main_trace);
}

TEST(TraceBuilderTest, CSeedBuildsMainAndSecondary) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("C1")}, TraceBuildParams{40, 0.4});
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(f.names(seqs[0]), (std::vector<std::string>{"C1", "C2", "C3"}));
  EXPECT_EQ(f.names(seqs[1]), (std::vector<std::string>{"C4"}));
}

TEST(TraceBuilderTest, ZeroThresholdsCoverEverythingReachable) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{1, 0.0});
  std::size_t placed = 0;
  for (const auto& seq : seqs) placed += seq.blocks.size();
  // Everything reachable from A1 (all A blocks + B1 + C5).
  EXPECT_EQ(placed, 10u);
}

TEST(TraceBuilderTest, NoBlockAppearsTwice) {
  Figure3 f;
  const auto seqs = build_traces(f.cfg, {f.id("A1"), f.id("C1"), f.id("B1")},
                                 TraceBuildParams{1, 0.0});
  std::vector<int> seen(f.image->num_blocks(), 0);
  for (const auto& seq : seqs) {
    for (BlockId b : seq.blocks) ++seen[b];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST(TraceBuilderTest, SequenceWeightIsFirstBlockCount) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("C1")}, TraceBuildParams{40, 0.4});
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs[0].weight, 300u);
}

TEST(TraceBuilderCompleteTest, SweepsOrphanedHotBlocks) {
  Figure3 f;
  std::vector<bool> visited(f.image->num_blocks(), false);
  // Pretend an earlier pass consumed the whole A main trace.
  for (const char* name : {"A1", "A2", "A3", "A4", "A7", "A8"}) {
    visited[f.id(name)] = true;
  }
  // A5 (weight 40) is now unreachable through unvisited paths, but the
  // complete builder must still place it.
  const auto seqs = build_traces_complete(f.cfg, {f.id("A1")},
                                          TraceBuildParams{40, 0.4}, &visited);
  bool found_a5 = false;
  for (const auto& seq : seqs) {
    for (BlockId b : seq.blocks) {
      if (f.image->block(b).name == "A5") found_a5 = true;
    }
  }
  EXPECT_TRUE(found_a5);
  EXPECT_TRUE(visited[f.id("A5")]);
}

TEST(TraceBuilderCompleteTest, SweepRespectsExecThreshold) {
  Figure3 f;
  std::vector<bool> visited(f.image->num_blocks(), false);
  const auto seqs = build_traces_complete(f.cfg, {}, TraceBuildParams{40, 0.4},
                                          &visited);
  // All blocks with weight >= 40 are placed, none below.
  for (BlockId b = 0; b < f.image->num_blocks(); ++b) {
    if (f.cfg.block_count[b] >= 40) {
      EXPECT_TRUE(visited[b]) << f.image->block(b).name;
    } else {
      EXPECT_FALSE(visited[b]) << f.image->block(b).name;
    }
  }
  (void)seqs;
}

TEST(TraceBuilderTest, SequencesBytesSumsBlockSizes) {
  Figure3 f;
  const auto seqs =
      build_traces(f.cfg, {f.id("A1")}, TraceBuildParams{40, 0.4});
  // 6-block main + 1-block secondary, 2 insns (8 bytes) each.
  EXPECT_EQ(sequences_bytes(*f.image, seqs), 7u * 8u);
}

}  // namespace
}  // namespace stc::core
