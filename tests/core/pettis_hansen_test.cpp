#include "core/pettis_hansen.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::BlockKind;

TEST(PettisHansenTest, FluffMovesToEndOfProgram) {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const cfg::RoutineId r = b.routine("f", m,
                                     {{"hot1", 4, BlockKind::kBranch},
                                      {"cold", 4, BlockKind::kBranch},
                                      {"hot2", 4, BlockKind::kReturn}});
  auto image = b.build();
  profile::WeightedCFG cfg;
  cfg.image = image.get();
  cfg.block_count = {100, 0, 100};
  cfg.succs.resize(3);
  cfg.succs[0].push_back({2, 100});  // hot1 -> hot2

  const auto map = pettis_hansen_layout(cfg);
  map.validate(*image);
  const BlockId hot1 = image->block_id(r, "hot1");
  const BlockId hot2 = image->block_id(r, "hot2");
  const BlockId cold = image->block_id(r, "cold");
  // Never-executed block is split out past all executed code.
  EXPECT_GT(map.addr(cold), map.addr(hot1));
  EXPECT_GT(map.addr(cold), map.addr(hot2));
  // Chaining places hot2 right after hot1 despite the cold block between.
  EXPECT_EQ(map.addr(hot2), map.addr(hot1) + image->block(hot1).bytes());
}

TEST(PettisHansenTest, EntryChainComesFirstInRoutine) {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const cfg::RoutineId r = b.routine("f", m,
                                     {{"entry", 4, BlockKind::kBranch},
                                      {"side", 4, BlockKind::kBranch},
                                      {"main", 4, BlockKind::kReturn}});
  auto image = b.build();
  profile::WeightedCFG cfg;
  cfg.image = image.get();
  cfg.block_count = {10, 1000, 1000};
  cfg.succs.resize(3);
  // side <-> main is the heaviest chain, but the entry block must still
  // start the routine's layout.
  cfg.succs[1].push_back({2, 1000});
  cfg.succs[0].push_back({1, 10});
  const auto map = pettis_hansen_layout(cfg);
  const BlockId entry = image->block_id(r, "entry");
  EXPECT_LT(map.addr(entry), map.addr(image->block_id(r, "side")));
  EXPECT_LT(map.addr(entry), map.addr(image->block_id(r, "main")));
}

TEST(PettisHansenTest, AffineProceduresPlacedAdjacent) {
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const cfg::RoutineId f = b.routine(
      "f", m, {{"c", 2, BlockKind::kCall}, {"r", 2, BlockKind::kReturn}});
  const cfg::RoutineId g =
      b.routine("g", m, {{"r", 2, BlockKind::kReturn}});
  const cfg::RoutineId unrelated =
      b.routine("unrelated", m, {{"r", 2, BlockKind::kReturn}});
  auto image = b.build();
  profile::WeightedCFG cfg;
  cfg.image = image.get();
  cfg.block_count.assign(image->num_blocks(), 10);
  cfg.succs.resize(image->num_blocks());
  // Heavy call edge f.c -> g.r.
  cfg.succs[image->block_id(f, "c")].push_back(
      {image->block_id(g, "r"), 100000});

  const auto map = pettis_hansen_layout(cfg);
  const std::uint64_t f_addr = map.addr(image->entry_of(f));
  const std::uint64_t g_addr = map.addr(image->entry_of(g));
  const std::uint64_t u_addr = map.addr(image->entry_of(unrelated));
  // g ends up adjacent to f; the unrelated routine does not sit between.
  const auto dist = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : b - a;
  };
  EXPECT_LT(dist(f_addr, g_addr), dist(f_addr, u_addr));
}

TEST(PettisHansenTest, LayoutIsValidOnRandomInputs) {
  Rng rng(500);
  for (int iter = 0; iter < 10; ++iter) {
    auto image = testing::random_image(rng, 30 + iter * 10);
    const auto cfg = testing::random_wcfg(*image, rng);
    const auto map = pettis_hansen_layout(cfg);
    map.validate(*image);
  }
}

TEST(PettisHansenTest, AllColdBlocksAfterAllHotBlocks) {
  Rng rng(501);
  auto image = testing::random_image(rng, 50);
  const auto cfg = testing::random_wcfg(*image, rng, 0.4);
  const auto map = pettis_hansen_layout(cfg);
  std::uint64_t max_hot = 0;
  std::uint64_t min_cold = ~std::uint64_t{0};
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    if (cfg.block_count[b] > 0) {
      max_hot = std::max(max_hot, map.addr(b));
    } else {
      min_cold = std::min(min_cold, map.addr(b));
    }
  }
  EXPECT_LT(max_hot, min_cold);
}

}  // namespace
}  // namespace stc::core
