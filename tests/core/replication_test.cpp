#include "core/replication.h"

#include "core/stc_layout.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "cfg/exec.h"
#include "trace/fetch_stream.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::BlockKind;
using cfg::RoutineId;

// Two callers invoking a shared helper; caller bodies differ. Traces are
// produced through a validated ExecContext so they obey the discipline the
// transformer relies on.
struct Fixture {
  Fixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    helper = b.routine("helper", m,
                       {{"entry", 2, BlockKind::kBranch},
                        {"ret", 2, BlockKind::kReturn}});
    caller_a = b.routine("caller_a", m,
                         {{"entry", 2, BlockKind::kCall},
                          {"after", 2, BlockKind::kBranch},
                          {"ret", 2, BlockKind::kReturn}});
    caller_b = b.routine("caller_b", m,
                         {{"entry", 2, BlockKind::kCall},
                          {"after", 2, BlockKind::kBranch},
                          {"ret", 2, BlockKind::kReturn}});
    image = b.build();
  }

  void run_helper(cfg::ExecContext& ctx) const {
    cfg::RoutineScope scope(ctx, helper);
    ctx.bb(image->block_id(helper, "entry"));
    ctx.bb(image->block_id(helper, "ret"));
  }
  void run_caller(cfg::ExecContext& ctx, RoutineId caller) const {
    cfg::RoutineScope scope(ctx, caller);
    ctx.bb(image->block_id(caller, "entry"));
    run_helper(ctx);
    ctx.bb(image->block_id(caller, "after"));
    ctx.bb(image->block_id(caller, "ret"));
  }

  // Alternating activations of both callers, `n` each.
  trace::BlockTrace record(int n, profile::Profile* prof = nullptr) const {
    trace::BlockTrace t;
    trace::TraceRecorder recorder(t);
    cfg::TeeSink tee;
    tee.add(&recorder);
    if (prof != nullptr) tee.add(prof);
    cfg::ExecContext ctx(*image, &tee, /*validate=*/true);
    for (int i = 0; i < n; ++i) {
      run_caller(ctx, caller_a);
      run_caller(ctx, caller_b);
    }
    return t;
  }

  std::unique_ptr<cfg::ProgramImage> image;
  RoutineId helper = 0, caller_a = 0, caller_b = 0;
};

ReplicationParams eager_params() {
  ReplicationParams params;
  params.min_routine_weight = 0.0001;
  params.min_call_sites = 2;
  params.max_code_growth = 4.0;
  return params;
}

TEST(ReplicatorTest, ClonesHotSharedRoutinePerCallSite) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(50, &prof);
  const Replicator repl(*f.image, prof, eager_params());
  EXPECT_EQ(repl.num_cloned_routines(), 1u);
  EXPECT_EQ(repl.num_clones(), 2u);  // one per call site
  EXPECT_GT(repl.code_growth(), 1.0);
  // Original block ids unchanged in the extended image.
  for (BlockId b = 0; b < f.image->num_blocks(); ++b) {
    EXPECT_EQ(repl.image().block(b).name, f.image->block(b).name);
    EXPECT_EQ(repl.image().block(b).insns, f.image->block(b).insns);
    EXPECT_EQ(repl.image().block(b).kind, f.image->block(b).kind);
  }
}

TEST(ReplicatorTest, TransformRoutesActivationsToTheirClones) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(10, &prof);
  const Replicator repl(*f.image, prof, eager_params());
  const auto transformed = repl.transform(t);
  ASSERT_EQ(transformed.num_events(), t.num_events());

  // Collect the helper-entry ids observed after each caller's call block.
  const BlockId site_a = f.image->block_id(f.caller_a, "entry");
  const BlockId site_b = f.image->block_id(f.caller_b, "entry");
  BlockId after_a = cfg::kInvalidBlock;
  BlockId after_b = cfg::kInvalidBlock;
  BlockId prev = cfg::kInvalidBlock;
  transformed.for_each([&](BlockId cur) {
    if (prev == site_a) after_a = cur;
    if (prev == site_b) after_b = cur;
    prev = cur;
  });
  // Each call site gets its own helper copy, and neither is the original.
  EXPECT_NE(after_a, after_b);
  EXPECT_NE(after_a, f.image->block_id(f.helper, "entry"));
  EXPECT_NE(after_b, f.image->block_id(f.helper, "entry"));
  // Clone blocks mirror the helper's shape.
  EXPECT_EQ(repl.image().block(after_a).name, "entry");
  EXPECT_EQ(repl.image().block(after_a).insns, 2);
}

TEST(ReplicatorTest, TransformPreservesInstructionCount) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(25, &prof);
  const Replicator repl(*f.image, prof, eager_params());
  const auto transformed = repl.transform(t);
  const auto orig_layout = cfg::AddressMap::original(*f.image);
  const auto repl_layout = cfg::AddressMap::original(repl.image());
  const auto before = trace::measure_sequentiality(t, *f.image, orig_layout);
  const auto after =
      trace::measure_sequentiality(transformed, repl.image(), repl_layout);
  EXPECT_EQ(before.instructions, after.instructions);
  EXPECT_EQ(before.dynamic_blocks, after.dynamic_blocks);
}

TEST(ReplicatorTest, NoQualifyingRoutinesMeansIdentity) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(5, &prof);
  ReplicationParams params;
  params.min_routine_weight = 0.99;  // nothing qualifies
  const Replicator repl(*f.image, prof, params);
  EXPECT_EQ(repl.num_clones(), 0u);
  const auto transformed = repl.transform(t);
  trace::BlockTrace::Cursor a(t);
  trace::BlockTrace::Cursor b(transformed);
  while (!a.done()) ASSERT_EQ(a.next(), b.next());
}

TEST(ReplicatorTest, GrowthBudgetCapsClones) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(50, &prof);
  ReplicationParams params = eager_params();
  params.max_code_growth = 1.0;  // no budget at all
  const Replicator repl(*f.image, prof, params);
  EXPECT_EQ(repl.num_clones(), 0u);
}

TEST(ReplicatorTest, ReplicationUnlocksSequentiality) {
  Fixture f;
  profile::Profile prof(*f.image);
  const auto t = f.record(50, &prof);
  const Replicator repl(*f.image, prof, eager_params());
  const auto transformed = repl.transform(t);

  // Rebuild profiles and STC layouts for both programs.
  profile::Profile prof_before(*f.image);
  prof_before.consume(t);
  profile::Profile prof_after(repl.image());
  prof_after.consume(transformed);
  StcParams stc;
  stc.cache_bytes = 1024;
  stc.cfa_bytes = 256;
  const auto before_layout =
      stc_layout(profile::WeightedCFG::from_profile(prof_before),
                 SeedKind::kAuto, stc)
          .layout;
  const auto after_layout =
      stc_layout(profile::WeightedCFG::from_profile(prof_after),
                 SeedKind::kAuto, stc)
          .layout;
  const auto before =
      trace::measure_sequentiality(t, *f.image, before_layout);
  const auto after =
      trace::measure_sequentiality(transformed, repl.image(), after_layout);
  // Without clones, at most one call site can fall through into the helper;
  // with per-site copies both can.
  EXPECT_LT(after.taken_transitions, before.taken_transitions);
}

TEST(ReplicatorTest, RecursionThroughDispatcherIsHandled) {
  // r calls itself through a trampoline: t(entry kCall) -> r. The
  // transformer's activation stack must keep clone deltas per activation.
  cfg::ProgramBuilder b;
  const cfg::ModuleId m = b.module("mod");
  const RoutineId tramp = b.routine("tramp", m,
                                    {{"entry", 2, BlockKind::kCall},
                                     {"ret", 2, BlockKind::kReturn}});
  const RoutineId rec = b.routine("rec", m,
                                  {{"entry", 2, BlockKind::kBranch},
                                   {"again", 2, BlockKind::kCall},
                                   {"ret", 2, BlockKind::kReturn}});
  auto image = b.build();

  trace::BlockTrace t;
  trace::TraceRecorder recorder(t);
  profile::Profile prof(*image);
  cfg::TeeSink tee;
  tee.add(&recorder);
  tee.add(&prof);
  cfg::ExecContext ctx(*image, &tee, true);

  // tramp -> rec -> (tramp -> rec)* bounded depth, repeated.
  struct Runner {
    const cfg::ProgramImage& im;
    RoutineId tramp, rec;
    cfg::ExecContext& ctx;
    void run_tramp(int depth) {
      cfg::RoutineScope scope(ctx, tramp);
      ctx.bb(im.block_id(tramp, "entry"));
      run_rec(depth);
      ctx.bb(im.block_id(tramp, "ret"));
    }
    void run_rec(int depth) {
      cfg::RoutineScope scope(ctx, rec);
      ctx.bb(im.block_id(rec, "entry"));
      if (depth > 0) {
        ctx.bb(im.block_id(rec, "again"));
        run_tramp(depth - 1);
      }
      ctx.bb(im.block_id(rec, "ret"));
    }
  } runner{*image, tramp, rec, ctx};
  for (int i = 0; i < 20; ++i) runner.run_tramp(3);

  ReplicationParams params;
  params.min_routine_weight = 0.0001;
  params.min_call_sites = 1;
  params.max_code_growth = 4.0;
  const Replicator repl(*image, prof, params);
  const auto transformed = repl.transform(t);
  ASSERT_EQ(transformed.num_events(), t.num_events());
  // Every transformed id must be a valid block of the extended image and
  // preserve the original block shape.
  trace::BlockTrace::Cursor orig_cursor(t);
  transformed.for_each([&](BlockId cur) {
    const BlockId orig = orig_cursor.next();
    ASSERT_LT(cur, repl.image().num_blocks());
    EXPECT_EQ(repl.image().block(cur).insns, image->block(orig).insns);
    EXPECT_EQ(repl.image().block(cur).kind, image->block(orig).kind);
    EXPECT_EQ(repl.image().block(cur).name, image->block(orig).name);
  });
}

}  // namespace
}  // namespace stc::core
