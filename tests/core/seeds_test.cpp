#include "core/seeds.h"

#include <gtest/gtest.h>

#include "cfg/builder.h"

namespace stc::core {
namespace {

using cfg::BlockKind;

struct Fixture {
  Fixture() {
    cfg::ProgramBuilder b;
    const cfg::ModuleId m = b.module("mod");
    plain_hot = b.routine("plain_hot", m, {{"e", 2, BlockKind::kReturn}});
    op_warm = b.routine("op_warm", m, {{"e", 2, BlockKind::kReturn}}, true);
    op_cold = b.routine("op_cold", m, {{"e", 2, BlockKind::kReturn}}, true);
    plain_dead = b.routine("plain_dead", m, {{"e", 2, BlockKind::kReturn}});
    image = b.build();
    cfg.image = image.get();
    cfg.block_count.assign(image->num_blocks(), 0);
    cfg.succs.resize(image->num_blocks());
    cfg.block_count[image->entry_of(plain_hot)] = 1000;
    cfg.block_count[image->entry_of(op_warm)] = 100;
    cfg.block_count[image->entry_of(op_cold)] = 10;
    // plain_dead never executes.
  }
  std::unique_ptr<cfg::ProgramImage> image;
  cfg::RoutineId plain_hot = 0, op_warm = 0, op_cold = 0, plain_dead = 0;
  profile::WeightedCFG cfg;
};

TEST(SeedsTest, AutoSelectsAllExecutedEntriesByPopularity) {
  Fixture f;
  const auto seeds = select_seeds(f.cfg, SeedKind::kAuto);
  ASSERT_EQ(seeds.size(), 3u);  // plain_dead excluded
  EXPECT_EQ(seeds[0], f.image->entry_of(f.plain_hot));
  EXPECT_EQ(seeds[1], f.image->entry_of(f.op_warm));
  EXPECT_EQ(seeds[2], f.image->entry_of(f.op_cold));
}

TEST(SeedsTest, OpsSelectsExecutorOperationsOnly) {
  Fixture f;
  const auto seeds = select_seeds(f.cfg, SeedKind::kOps);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], f.image->entry_of(f.op_warm));
  EXPECT_EQ(seeds[1], f.image->entry_of(f.op_cold));
}

TEST(SeedsTest, UnexecutedEntriesExcluded) {
  Fixture f;
  for (const SeedKind kind : {SeedKind::kAuto, SeedKind::kOps}) {
    for (cfg::BlockId seed : select_seeds(f.cfg, kind)) {
      EXPECT_GT(f.cfg.block_count[seed], 0u);
    }
  }
}

TEST(SeedsTest, EmptyProfileYieldsNoSeeds) {
  Fixture f;
  std::fill(f.cfg.block_count.begin(), f.cfg.block_count.end(), 0);
  EXPECT_TRUE(select_seeds(f.cfg, SeedKind::kAuto).empty());
}

}  // namespace
}  // namespace stc::core
