#include "core/torrellas.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc::core {
namespace {

TEST(TorrellasTest, MostPopularBlocksOccupyTheCfa) {
  Rng rng(600);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  TorrParams params;
  params.cache_bytes = 2048;
  params.cfa_bytes = 512;
  const auto map = torrellas_layout(cfg, params);
  map.validate(*image);

  // Determine the CFA content cutoff: the most popular blocks, by bytes.
  std::vector<cfg::BlockId> pop;
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    if (cfg.block_count[b] > 0) pop.push_back(b);
  }
  std::sort(pop.begin(), pop.end(), [&](cfg::BlockId a, cfg::BlockId b) {
    if (cfg.block_count[a] != cfg.block_count[b]) {
      return cfg.block_count[a] > cfg.block_count[b];
    }
    return a < b;
  });
  std::uint64_t used = 0;
  for (cfg::BlockId b : pop) {
    if (used + image->block(b).bytes() > params.cfa_bytes) break;
    used += image->block(b).bytes();
    EXPECT_LT(map.addr(b), params.cfa_bytes)
        << "popular block " << b << " outside the CFA";
  }
}

TEST(TorrellasTest, NonCfaExecutedBlocksAvoidReservedWindows) {
  Rng rng(601);
  auto image = testing::random_image(rng, 60);
  const auto cfg = testing::random_wcfg(*image, rng);
  TorrParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 256;
  const auto map = torrellas_layout(cfg, params);
  for (cfg::BlockId b = 0; b < image->num_blocks(); ++b) {
    if (cfg.block_count[b] == 0) continue;
    const std::uint64_t addr = map.addr(b);
    if (addr >= params.cache_bytes) {
      EXPECT_GE(addr % params.cache_bytes, params.cfa_bytes)
          << "executed block " << b << " in a reserved window";
    }
  }
}

TEST(TorrellasTest, ValidOnRandomInputs) {
  Rng rng(602);
  for (int iter = 0; iter < 8; ++iter) {
    auto image = testing::random_image(rng, 40);
    const auto cfg = testing::random_wcfg(*image, rng);
    TorrParams params;
    params.cache_bytes = 4096;
    params.cfa_bytes = 1024;
    torrellas_layout(cfg, params).validate(*image);
  }
}

TEST(TorrellasTest, ZeroCfaStillValid) {
  Rng rng(603);
  auto image = testing::random_image(rng, 30);
  const auto cfg = testing::random_wcfg(*image, rng);
  TorrParams params;
  params.cache_bytes = 1024;
  params.cfa_bytes = 0;
  torrellas_layout(cfg, params).validate(*image);
}

}  // namespace
}  // namespace stc::core
