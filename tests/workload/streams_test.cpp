// Tests for the per-tenant stream builders (src/workload/streams): mix-list
// parsing, the extracted OLTP recorder (determinism plus trace/profile
// agreement through the tee), per-tenant seed/rotation perturbation, and
// make_tenant_streams' round-robin mix assignment with aligned profiles.
#include "workload/streams.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "db/kernel.h"
#include "db/tpcd/oltp.h"
#include "db/tpcd/workload.h"
#include "profile/profile.h"
#include "trace/block_trace.h"

namespace stc::workload {
namespace {

TEST(StreamsTest, ParseMixRoundTrips) {
  for (const MixKind kind :
       {MixKind::kDss, MixKind::kDssTrain, MixKind::kOltp}) {
    const Result<MixKind> parsed = parse_mix(to_string(kind));
    ASSERT_TRUE(parsed.is_ok()) << to_string(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(parse_mix("olap").is_ok());
  EXPECT_FALSE(parse_mix("").is_ok());
}

TEST(StreamsTest, ParseMixListSplitsOnCommas) {
  const Result<std::vector<MixKind>> mixes = parse_mix_list("dss,oltp,dss");
  ASSERT_TRUE(mixes.is_ok());
  const std::vector<MixKind> expected = {MixKind::kDss, MixKind::kOltp,
                                         MixKind::kDss};
  EXPECT_EQ(mixes.value(), expected);
  EXPECT_FALSE(parse_mix_list("").is_ok());
  EXPECT_FALSE(parse_mix_list("dss,").is_ok());
  EXPECT_FALSE(parse_mix_list("dss,unknown").is_ok());
}

// Database-backed tests share one small TPC-D pair; OLTP recordings that
// must be reproducible use fresh databases (new-order inserts mutate state).
class StreamsDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db::tpcd::WorkloadConfig config;
    config.scale_factor = 0.001;
    btree_ = db::tpcd::make_database(config, db::IndexKind::kBTree).release();
    hash_ = db::tpcd::make_database(config, db::IndexKind::kHash).release();
  }
  static void TearDownTestSuite() {
    delete btree_;
    delete hash_;
    btree_ = nullptr;
    hash_ = nullptr;
  }
  static std::unique_ptr<db::Database> fresh_btree() {
    db::tpcd::WorkloadConfig config;
    config.scale_factor = 0.001;
    return db::tpcd::make_database(config, db::IndexKind::kBTree);
  }
  static db::Database* btree_;
  static db::Database* hash_;
};

db::Database* StreamsDbTest::btree_ = nullptr;
db::Database* StreamsDbTest::hash_ = nullptr;

TEST_F(StreamsDbTest, RecordOltpStreamIsDeterministicOnFreshDatabases) {
  db::tpcd::OltpConfig config;
  config.transactions = 60;
  trace::BlockTrace a;
  trace::BlockTrace b;
  db::tpcd::OltpStats stats_a;
  db::tpcd::OltpStats stats_b;
  {
    auto fresh = fresh_btree();
    stats_a = record_oltp_stream(*fresh, config, a, nullptr);
  }
  {
    auto fresh = fresh_btree();
    stats_b = record_oltp_stream(*fresh, config, b, nullptr);
  }
  EXPECT_GT(a.num_events(), 0u);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(stats_a.order_status, stats_b.order_status);
  EXPECT_EQ(stats_a.stock_checks, stats_b.stock_checks);
  EXPECT_EQ(stats_a.new_orders, stats_b.new_orders);
  EXPECT_EQ(stats_a.order_status + stats_a.stock_checks + stats_a.new_orders,
            config.transactions);
}

TEST_F(StreamsDbTest, RecordOltpStreamTeesTraceAndProfileConsistently) {
  db::tpcd::OltpConfig config;
  config.transactions = 40;
  trace::BlockTrace trace;
  profile::Profile profile(db::kernel_image());
  record_oltp_stream(*btree_, config, trace, &profile);
  // The recorder and the profile sit behind one tee: every trace event is
  // exactly one profile block-count increment.
  const profile::WeightedCFG wcfg = profile::WeightedCFG::from_profile(profile);
  const std::uint64_t counted = std::accumulate(
      wcfg.block_count.begin(), wcfg.block_count.end(), std::uint64_t{0});
  EXPECT_EQ(counted, trace.num_events());
  EXPECT_GT(trace.num_events(), 0u);
}

TEST_F(StreamsDbTest, OltpTenantsPerturbTheTransactionSeed) {
  StreamConfig config;
  config.oltp_transactions = 50;
  trace::BlockTrace t0;
  trace::BlockTrace t1;
  {
    auto fresh = fresh_btree();
    record_stream(MixKind::kOltp, 0, *fresh, *hash_, config, t0, nullptr);
  }
  {
    auto fresh = fresh_btree();
    record_stream(MixKind::kOltp, 1, *fresh, *hash_, config, t1, nullptr);
  }
  EXPECT_GT(t0.num_events(), 0u);
  EXPECT_GT(t1.num_events(), 0u);
  // Same mix, different tenant index: distinct transaction sequences.
  EXPECT_NE(t0.serialize(), t1.serialize());
}

TEST_F(StreamsDbTest, MakeTenantStreamsAssignsMixesRoundRobin) {
  StreamConfig config;
  config.oltp_transactions = 30;
  std::vector<profile::Profile> profiles;
  const std::vector<MixKind> mixes = {MixKind::kOltp, MixKind::kDssTrain};
  const std::vector<TenantStream> streams = make_tenant_streams(
      3, mixes, *btree_, *hash_, config, db::kernel_image(), &profiles);

  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].name, "oltp#0");
  EXPECT_EQ(streams[1].name, "dss_train#1");
  EXPECT_EQ(streams[2].name, "oltp#2");
  ASSERT_EQ(profiles.size(), 3u);
  for (std::size_t t = 0; t < streams.size(); ++t) {
    EXPECT_GT(streams[t].trace.num_events(), 0u) << streams[t].name;
    // Each profile is aligned with its stream: counts total the events.
    const profile::WeightedCFG wcfg =
        profile::WeightedCFG::from_profile(profiles[t]);
    const std::uint64_t counted = std::accumulate(
        wcfg.block_count.begin(), wcfg.block_count.end(), std::uint64_t{0});
    EXPECT_EQ(counted, streams[t].trace.num_events()) << streams[t].name;
  }
  // Same-mix tenants are perturbed (OLTP seed offset), not clones.
  EXPECT_NE(streams[0].trace.serialize(), streams[2].trace.serialize());
}

}  // namespace
}  // namespace stc::workload
