// Unit and property tests for the multi-tenant composer (src/workload):
// exact round-robin scheduling, event conservation under every arrival
// model, determinism under a seed (including across concurrent callers),
// the tenants=1 byte-identity lock the acceptance criteria pin, and
// structured fault behaviour (no partial trace escapes a mid-compose or
// mid-write fault).
#include "workload/composer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/faultpoint.h"
#include "trace/block_trace.h"

namespace stc::workload {
namespace {

// A recognizable per-tenant stream: tenant `base` emits base*100 + i for
// event i, so any reordering or cross-tenant mixup changes the bytes.
trace::BlockTrace ramp_trace(std::uint32_t base, std::uint64_t events) {
  trace::BlockTrace trace;
  for (std::uint64_t i = 0; i < events; ++i) {
    trace.append(static_cast<cfg::BlockId>(base * 100 + i));
  }
  return trace;
}

std::vector<TenantStream> ramp_streams(
    const std::vector<std::uint64_t>& sizes) {
  std::vector<TenantStream> streams;
  for (std::uint32_t t = 0; t < sizes.size(); ++t) {
    streams.push_back({"t" + std::to_string(t), ramp_trace(t, sizes[t])});
  }
  return streams;
}

std::vector<cfg::BlockId> events_of(const trace::BlockTrace& trace) {
  std::vector<cfg::BlockId> out;
  trace.for_each([&](cfg::BlockId b) { out.push_back(b); });
  return out;
}

constexpr ArrivalKind kAllArrivals[] = {
    ArrivalKind::kRoundRobin, ArrivalKind::kPoisson, ArrivalKind::kBursty,
    ArrivalKind::kDiurnal};

TEST(ComposerTest, ParseArrivalRoundTrips) {
  for (const ArrivalKind kind : kAllArrivals) {
    const Result<ArrivalKind> parsed = parse_arrival(to_string(kind));
    ASSERT_TRUE(parsed.is_ok()) << to_string(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  const Result<ArrivalKind> bad = parse_arrival("fifo");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ComposerTest, RoundRobinInterleavesAtExactQuantum) {
  ComposeParams params;
  params.quantum_events = 2;
  params.arrival = ArrivalKind::kRoundRobin;
  Result<ComposedTrace> composed = compose(ramp_streams({6, 6}), params);
  ASSERT_TRUE(composed.is_ok()) << composed.status().to_string();
  const ComposedTrace& out = composed.value();
  const std::vector<cfg::BlockId> expected = {0,   1,   100, 101, 2,   3,
                                              102, 103, 4,   5,   104, 105};
  EXPECT_EQ(events_of(out.trace), expected);
  ASSERT_EQ(out.segments.size(), 6u);
  for (std::size_t i = 0; i < out.segments.size(); ++i) {
    EXPECT_EQ(out.segments[i].tenant, i % 2) << "segment " << i;
    EXPECT_EQ(out.segments[i].events, 2u) << "segment " << i;
  }
  EXPECT_EQ(out.context_switches, 5u);
}

TEST(ComposerTest, ConservationHoldsUnderEveryArrivalModel) {
  const std::vector<std::uint64_t> sizes = {100, 7, 53, 260};
  const auto streams = ramp_streams(sizes);
  for (const ArrivalKind kind : kAllArrivals) {
    ComposeParams params;
    params.quantum_events = 5;
    params.arrival = kind;
    Result<ComposedTrace> composed = compose(streams, params);
    ASSERT_TRUE(composed.is_ok()) << to_string(kind);
    const ComposedTrace& out = composed.value();

    std::uint64_t total = 0;
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      EXPECT_EQ(out.tenant_events[t], sizes[t])
          << to_string(kind) << " tenant " << t;
      total += sizes[t];
    }
    EXPECT_EQ(out.trace.num_events(), total) << to_string(kind);

    // Segment provenance tiles the composed trace exactly, with merged
    // (never adjacent-equal) tenants, and replays every stream in order.
    std::uint64_t segment_total = 0;
    std::vector<std::uint64_t> per_tenant(sizes.size(), 0);
    for (std::size_t i = 0; i < out.segments.size(); ++i) {
      EXPECT_GT(out.segments[i].events, 0u);
      if (i > 0) {
        EXPECT_NE(out.segments[i].tenant, out.segments[i - 1].tenant)
            << to_string(kind) << " segment " << i;
      }
      segment_total += out.segments[i].events;
      per_tenant[out.segments[i].tenant] += out.segments[i].events;
    }
    EXPECT_EQ(segment_total, total) << to_string(kind);
    EXPECT_EQ(per_tenant, out.tenant_events) << to_string(kind);
    EXPECT_EQ(out.context_switches,
              out.segments.empty() ? 0 : out.segments.size() - 1);

    // Projecting the composed trace through the segments recovers each
    // input stream byte for byte.
    std::vector<std::vector<cfg::BlockId>> projected(sizes.size());
    const std::vector<cfg::BlockId> all = events_of(out.trace);
    std::size_t pos = 0;
    for (const TenantSegment& seg : out.segments) {
      for (std::uint64_t i = 0; i < seg.events; ++i) {
        projected[seg.tenant].push_back(all[pos++]);
      }
    }
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      EXPECT_EQ(projected[t], events_of(streams[t].trace))
          << to_string(kind) << " tenant " << t;
    }
  }
}

TEST(ComposerTest, SameSeedIsByteIdenticalAcrossConcurrentCallers) {
  const auto streams = ramp_streams({40, 90, 17});
  ComposeParams params;
  params.quantum_events = 3;
  params.arrival = ArrivalKind::kPoisson;
  params.seed = 42;

  const auto reference = compose(streams, params);
  ASSERT_TRUE(reference.is_ok());
  const std::vector<std::uint8_t> expected =
      reference.value().trace.serialize();

  // The composer keeps no hidden global state: four concurrent compositions
  // of the same input are all byte-identical to the serial reference.
  std::vector<std::vector<std::uint8_t>> got(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back([&, i] {
      const auto composed = compose(streams, params);
      if (composed.is_ok()) got[i] = composed.value().trace.serialize();
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected) << "thread " << i;
  }

  // A different seed schedules differently (the streams carry distinct
  // block ids, so a different interleave changes the bytes).
  ComposeParams reseeded = params;
  reseeded.seed = 43;
  const auto other = compose(streams, reseeded);
  ASSERT_TRUE(other.is_ok());
  EXPECT_NE(other.value().trace.serialize(), expected);
}

TEST(ComposerTest, SingleTenantCompositionIsByteIdentical) {
  const trace::BlockTrace input = ramp_trace(3, 257);
  std::vector<TenantStream> streams;
  streams.push_back({"only", ramp_trace(3, 257)});
  for (const ArrivalKind kind : kAllArrivals) {
    for (const std::uint64_t quantum : {std::uint64_t{0}, std::uint64_t{7}}) {
      ComposeParams params;
      params.quantum_events = quantum;
      params.arrival = kind;
      Result<ComposedTrace> composed = compose(streams, params);
      ASSERT_TRUE(composed.is_ok()) << to_string(kind);
      const ComposedTrace& out = composed.value();
      EXPECT_EQ(out.trace.serialize(), input.serialize())
          << to_string(kind) << " quantum " << quantum;
      ASSERT_EQ(out.segments.size(), 1u);
      EXPECT_EQ(out.segments[0].tenant, 0u);
      EXPECT_EQ(out.segments[0].events, input.num_events());
      EXPECT_EQ(out.context_switches, 0u);
    }
  }
}

TEST(ComposerTest, ZeroQuantumRoundRobinConcatenatesInStreamOrder) {
  const auto streams = ramp_streams({5, 3, 4});
  ComposeParams params;
  params.quantum_events = 0;
  params.arrival = ArrivalKind::kRoundRobin;
  Result<ComposedTrace> composed = compose(streams, params);
  ASSERT_TRUE(composed.is_ok());

  trace::BlockTrace expected;
  for (const TenantStream& s : streams) {
    s.trace.for_each([&](cfg::BlockId b) { expected.append(b); });
  }
  EXPECT_EQ(composed.value().trace.serialize(), expected.serialize());
  EXPECT_EQ(composed.value().context_switches, 2u);
}

TEST(ComposerTest, EmptyAndOversizedStreamListsAreStructuredErrors) {
  const Result<ComposedTrace> none = compose({}, ComposeParams{});
  ASSERT_FALSE(none.is_ok());
  EXPECT_EQ(none.status().code(), ErrorCode::kInvalidArgument);

  std::vector<TenantStream> too_many;
  for (int i = 0; i < 65; ++i) too_many.push_back({"t", ramp_trace(0, 1)});
  const Result<ComposedTrace> overflow = compose(too_many, ComposeParams{});
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_EQ(overflow.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ComposerTest, EmptyTenantStreamsContributeNothing) {
  auto streams = ramp_streams({4, 0, 2});
  ComposeParams params;
  params.quantum_events = 0;
  params.arrival = ArrivalKind::kRoundRobin;
  Result<ComposedTrace> composed = compose(streams, params);
  ASSERT_TRUE(composed.is_ok());
  const ComposedTrace& out = composed.value();
  EXPECT_EQ(out.tenant_events[1], 0u);
  for (const TenantSegment& seg : out.segments) EXPECT_NE(seg.tenant, 1u);
  EXPECT_EQ(out.trace.num_events(), 6u);
}

// Fault-point tests own the process-global fault registry.
class ComposerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(ComposerFaultTest, ArmedFaultFailsWithStructuredError) {
  fault::arm("workload.compose");
  const Result<ComposedTrace> composed =
      compose(ramp_streams({10, 10}), ComposeParams{});
  ASSERT_FALSE(composed.is_ok());
  EXPECT_EQ(composed.status().code(), ErrorCode::kFaultInjected);
  EXPECT_NE(composed.status().message().find("workload.compose"),
            std::string::npos);
}

TEST_F(ComposerFaultTest, MidComposeFaultFailsCleanly) {
  // The point fires once per scheduled slice; arming the 4th hit fails
  // mid-merge, after several slices have already been emitted. The Result
  // carries only the error — no partial ComposedTrace escapes.
  fault::arm("workload.compose", 4);
  ComposeParams params;
  params.quantum_events = 2;
  params.arrival = ArrivalKind::kRoundRobin;
  const Result<ComposedTrace> composed =
      compose(ramp_streams({10, 10}), params);
  ASSERT_FALSE(composed.is_ok());
  EXPECT_EQ(composed.status().code(), ErrorCode::kFaultInjected);
  // The registry entry was consumed: a retry succeeds in full.
  const Result<ComposedTrace> retry = compose(ramp_streams({10, 10}), params);
  ASSERT_TRUE(retry.is_ok());
  EXPECT_EQ(retry.value().trace.num_events(), 20u);
}

TEST_F(ComposerFaultTest, ComposeToFileLeavesNoFileOnComposeFault) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "composed_fault.trace")
          .string();
  std::filesystem::remove(path);
  fault::arm("workload.compose", 3);
  ComposeParams params;
  params.quantum_events = 2;
  const Status status = compose_to_file(ramp_streams({10, 10}), params, path);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFaultInjected);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ComposerFaultTest, ComposeToFileLeavesNoFileOnWriteFault) {
  // Composition succeeds in memory; the atomic save's rename step fails.
  // The temp-plus-rename discipline means no file appears at `path`.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "composed_rename.trace")
          .string();
  std::filesystem::remove(path);
  fault::arm("trace.save.rename");
  const Status status =
      compose_to_file(ramp_streams({10, 10}), ComposeParams{}, path);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFaultInjected);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ComposerFaultTest, ComposeToFileRoundTripsThroughDisk) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "composed_ok.trace")
          .string();
  ComposeParams params;
  params.quantum_events = 3;
  params.arrival = ArrivalKind::kBursty;
  const auto streams = ramp_streams({25, 13});
  ASSERT_TRUE(compose_to_file(streams, params, path).is_ok());
  Result<trace::BlockTrace> loaded = trace::BlockTrace::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const auto composed = compose(streams, params);
  ASSERT_TRUE(composed.is_ok());
  EXPECT_EQ(loaded.value().serialize(), composed.value().trace.serialize());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace stc::workload
