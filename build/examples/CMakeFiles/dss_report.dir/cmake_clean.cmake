file(REMOVE_RECURSE
  "CMakeFiles/dss_report.dir/dss_report.cpp.o"
  "CMakeFiles/dss_report.dir/dss_report.cpp.o.d"
  "dss_report"
  "dss_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
