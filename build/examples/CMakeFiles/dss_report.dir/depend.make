# Empty dependencies file for dss_report.
# This may be replaced when dependencies are built.
