
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/layouts.cpp" "src/core/CMakeFiles/stc_core.dir/layouts.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/layouts.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/stc_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/pettis_hansen.cpp" "src/core/CMakeFiles/stc_core.dir/pettis_hansen.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/pettis_hansen.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/stc_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/replication.cpp.o.d"
  "/root/repo/src/core/seeds.cpp" "src/core/CMakeFiles/stc_core.dir/seeds.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/seeds.cpp.o.d"
  "/root/repo/src/core/stc_layout.cpp" "src/core/CMakeFiles/stc_core.dir/stc_layout.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/stc_layout.cpp.o.d"
  "/root/repo/src/core/torrellas.cpp" "src/core/CMakeFiles/stc_core.dir/torrellas.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/torrellas.cpp.o.d"
  "/root/repo/src/core/trace_builder.cpp" "src/core/CMakeFiles/stc_core.dir/trace_builder.cpp.o" "gcc" "src/core/CMakeFiles/stc_core.dir/trace_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/stc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/stc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
