file(REMOVE_RECURSE
  "libstc_core.a"
)
