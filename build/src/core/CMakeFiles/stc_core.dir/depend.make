# Empty dependencies file for stc_core.
# This may be replaced when dependencies are built.
