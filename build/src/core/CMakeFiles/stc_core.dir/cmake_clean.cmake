file(REMOVE_RECURSE
  "CMakeFiles/stc_core.dir/layouts.cpp.o"
  "CMakeFiles/stc_core.dir/layouts.cpp.o.d"
  "CMakeFiles/stc_core.dir/mapping.cpp.o"
  "CMakeFiles/stc_core.dir/mapping.cpp.o.d"
  "CMakeFiles/stc_core.dir/pettis_hansen.cpp.o"
  "CMakeFiles/stc_core.dir/pettis_hansen.cpp.o.d"
  "CMakeFiles/stc_core.dir/replication.cpp.o"
  "CMakeFiles/stc_core.dir/replication.cpp.o.d"
  "CMakeFiles/stc_core.dir/seeds.cpp.o"
  "CMakeFiles/stc_core.dir/seeds.cpp.o.d"
  "CMakeFiles/stc_core.dir/stc_layout.cpp.o"
  "CMakeFiles/stc_core.dir/stc_layout.cpp.o.d"
  "CMakeFiles/stc_core.dir/torrellas.cpp.o"
  "CMakeFiles/stc_core.dir/torrellas.cpp.o.d"
  "CMakeFiles/stc_core.dir/trace_builder.cpp.o"
  "CMakeFiles/stc_core.dir/trace_builder.cpp.o.d"
  "libstc_core.a"
  "libstc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
