# Empty compiler generated dependencies file for stc_db.
# This may be replaced when dependencies are built.
