
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/btree.cpp" "src/db/CMakeFiles/stc_db.dir/btree.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/btree.cpp.o.d"
  "/root/repo/src/db/buffer.cpp" "src/db/CMakeFiles/stc_db.dir/buffer.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/buffer.cpp.o.d"
  "/root/repo/src/db/catalog.cpp" "src/db/CMakeFiles/stc_db.dir/catalog.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/catalog.cpp.o.d"
  "/root/repo/src/db/coldcode.cpp" "src/db/CMakeFiles/stc_db.dir/coldcode.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/coldcode.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/db/CMakeFiles/stc_db.dir/database.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/database.cpp.o.d"
  "/root/repo/src/db/exec.cpp" "src/db/CMakeFiles/stc_db.dir/exec.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/exec.cpp.o.d"
  "/root/repo/src/db/exec_agg.cpp" "src/db/CMakeFiles/stc_db.dir/exec_agg.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/exec_agg.cpp.o.d"
  "/root/repo/src/db/exec_join.cpp" "src/db/CMakeFiles/stc_db.dir/exec_join.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/exec_join.cpp.o.d"
  "/root/repo/src/db/exec_register.cpp" "src/db/CMakeFiles/stc_db.dir/exec_register.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/exec_register.cpp.o.d"
  "/root/repo/src/db/expr.cpp" "src/db/CMakeFiles/stc_db.dir/expr.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/expr.cpp.o.d"
  "/root/repo/src/db/hash_index.cpp" "src/db/CMakeFiles/stc_db.dir/hash_index.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/hash_index.cpp.o.d"
  "/root/repo/src/db/heap.cpp" "src/db/CMakeFiles/stc_db.dir/heap.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/heap.cpp.o.d"
  "/root/repo/src/db/kernel.cpp" "src/db/CMakeFiles/stc_db.dir/kernel.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/kernel.cpp.o.d"
  "/root/repo/src/db/plan.cpp" "src/db/CMakeFiles/stc_db.dir/plan.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/plan.cpp.o.d"
  "/root/repo/src/db/sql/lexer.cpp" "src/db/CMakeFiles/stc_db.dir/sql/lexer.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/sql/lexer.cpp.o.d"
  "/root/repo/src/db/sql/parser.cpp" "src/db/CMakeFiles/stc_db.dir/sql/parser.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/sql/parser.cpp.o.d"
  "/root/repo/src/db/sql/planner.cpp" "src/db/CMakeFiles/stc_db.dir/sql/planner.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/sql/planner.cpp.o.d"
  "/root/repo/src/db/storage.cpp" "src/db/CMakeFiles/stc_db.dir/storage.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/storage.cpp.o.d"
  "/root/repo/src/db/tpcd/dbgen.cpp" "src/db/CMakeFiles/stc_db.dir/tpcd/dbgen.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/tpcd/dbgen.cpp.o.d"
  "/root/repo/src/db/tpcd/oltp.cpp" "src/db/CMakeFiles/stc_db.dir/tpcd/oltp.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/tpcd/oltp.cpp.o.d"
  "/root/repo/src/db/tpcd/queries.cpp" "src/db/CMakeFiles/stc_db.dir/tpcd/queries.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/tpcd/queries.cpp.o.d"
  "/root/repo/src/db/tpcd/schema.cpp" "src/db/CMakeFiles/stc_db.dir/tpcd/schema.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/tpcd/schema.cpp.o.d"
  "/root/repo/src/db/tpcd/workload.cpp" "src/db/CMakeFiles/stc_db.dir/tpcd/workload.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/tpcd/workload.cpp.o.d"
  "/root/repo/src/db/typeops.cpp" "src/db/CMakeFiles/stc_db.dir/typeops.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/typeops.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/db/CMakeFiles/stc_db.dir/value.cpp.o" "gcc" "src/db/CMakeFiles/stc_db.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/stc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
