file(REMOVE_RECURSE
  "libstc_db.a"
)
