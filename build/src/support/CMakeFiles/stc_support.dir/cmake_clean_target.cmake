file(REMOVE_RECURSE
  "libstc_support.a"
)
