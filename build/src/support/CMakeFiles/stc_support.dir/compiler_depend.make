# Empty compiler generated dependencies file for stc_support.
# This may be replaced when dependencies are built.
