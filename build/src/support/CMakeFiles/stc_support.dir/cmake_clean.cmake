file(REMOVE_RECURSE
  "CMakeFiles/stc_support.dir/rng.cpp.o"
  "CMakeFiles/stc_support.dir/rng.cpp.o.d"
  "CMakeFiles/stc_support.dir/stats.cpp.o"
  "CMakeFiles/stc_support.dir/stats.cpp.o.d"
  "CMakeFiles/stc_support.dir/table.cpp.o"
  "CMakeFiles/stc_support.dir/table.cpp.o.d"
  "CMakeFiles/stc_support.dir/thread_pool.cpp.o"
  "CMakeFiles/stc_support.dir/thread_pool.cpp.o.d"
  "CMakeFiles/stc_support.dir/varint.cpp.o"
  "CMakeFiles/stc_support.dir/varint.cpp.o.d"
  "libstc_support.a"
  "libstc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
