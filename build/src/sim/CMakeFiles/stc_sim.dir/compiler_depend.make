# Empty compiler generated dependencies file for stc_sim.
# This may be replaced when dependencies are built.
