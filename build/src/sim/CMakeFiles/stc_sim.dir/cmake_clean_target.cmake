file(REMOVE_RECURSE
  "libstc_sim.a"
)
