
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fetch_unit.cpp" "src/sim/CMakeFiles/stc_sim.dir/fetch_unit.cpp.o" "gcc" "src/sim/CMakeFiles/stc_sim.dir/fetch_unit.cpp.o.d"
  "/root/repo/src/sim/icache.cpp" "src/sim/CMakeFiles/stc_sim.dir/icache.cpp.o" "gcc" "src/sim/CMakeFiles/stc_sim.dir/icache.cpp.o.d"
  "/root/repo/src/sim/trace_cache.cpp" "src/sim/CMakeFiles/stc_sim.dir/trace_cache.cpp.o" "gcc" "src/sim/CMakeFiles/stc_sim.dir/trace_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/stc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/stc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
