file(REMOVE_RECURSE
  "CMakeFiles/stc_sim.dir/fetch_unit.cpp.o"
  "CMakeFiles/stc_sim.dir/fetch_unit.cpp.o.d"
  "CMakeFiles/stc_sim.dir/icache.cpp.o"
  "CMakeFiles/stc_sim.dir/icache.cpp.o.d"
  "CMakeFiles/stc_sim.dir/trace_cache.cpp.o"
  "CMakeFiles/stc_sim.dir/trace_cache.cpp.o.d"
  "libstc_sim.a"
  "libstc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
