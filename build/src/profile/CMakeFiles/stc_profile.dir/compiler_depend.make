# Empty compiler generated dependencies file for stc_profile.
# This may be replaced when dependencies are built.
