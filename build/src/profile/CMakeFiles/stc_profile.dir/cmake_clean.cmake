file(REMOVE_RECURSE
  "CMakeFiles/stc_profile.dir/locality.cpp.o"
  "CMakeFiles/stc_profile.dir/locality.cpp.o.d"
  "CMakeFiles/stc_profile.dir/profile.cpp.o"
  "CMakeFiles/stc_profile.dir/profile.cpp.o.d"
  "libstc_profile.a"
  "libstc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
