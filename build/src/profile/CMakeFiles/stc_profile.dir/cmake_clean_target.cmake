file(REMOVE_RECURSE
  "libstc_profile.a"
)
