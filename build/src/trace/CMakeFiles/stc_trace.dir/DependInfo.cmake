
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/block_trace.cpp" "src/trace/CMakeFiles/stc_trace.dir/block_trace.cpp.o" "gcc" "src/trace/CMakeFiles/stc_trace.dir/block_trace.cpp.o.d"
  "/root/repo/src/trace/fetch_stream.cpp" "src/trace/CMakeFiles/stc_trace.dir/fetch_stream.cpp.o" "gcc" "src/trace/CMakeFiles/stc_trace.dir/fetch_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/stc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
