file(REMOVE_RECURSE
  "CMakeFiles/stc_trace.dir/block_trace.cpp.o"
  "CMakeFiles/stc_trace.dir/block_trace.cpp.o.d"
  "CMakeFiles/stc_trace.dir/fetch_stream.cpp.o"
  "CMakeFiles/stc_trace.dir/fetch_stream.cpp.o.d"
  "libstc_trace.a"
  "libstc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
