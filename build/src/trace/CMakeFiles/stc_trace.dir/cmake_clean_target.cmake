file(REMOVE_RECURSE
  "libstc_trace.a"
)
