# Empty compiler generated dependencies file for stc_trace.
# This may be replaced when dependencies are built.
