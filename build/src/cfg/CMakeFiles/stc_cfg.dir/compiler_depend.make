# Empty compiler generated dependencies file for stc_cfg.
# This may be replaced when dependencies are built.
