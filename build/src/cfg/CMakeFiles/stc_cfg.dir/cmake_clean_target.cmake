file(REMOVE_RECURSE
  "libstc_cfg.a"
)
