
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/address_map.cpp" "src/cfg/CMakeFiles/stc_cfg.dir/address_map.cpp.o" "gcc" "src/cfg/CMakeFiles/stc_cfg.dir/address_map.cpp.o.d"
  "/root/repo/src/cfg/exec.cpp" "src/cfg/CMakeFiles/stc_cfg.dir/exec.cpp.o" "gcc" "src/cfg/CMakeFiles/stc_cfg.dir/exec.cpp.o.d"
  "/root/repo/src/cfg/program.cpp" "src/cfg/CMakeFiles/stc_cfg.dir/program.cpp.o" "gcc" "src/cfg/CMakeFiles/stc_cfg.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
