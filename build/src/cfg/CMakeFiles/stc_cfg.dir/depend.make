# Empty dependencies file for stc_cfg.
# This may be replaced when dependencies are built.
