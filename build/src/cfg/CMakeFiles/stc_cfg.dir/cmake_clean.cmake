file(REMOVE_RECURSE
  "CMakeFiles/stc_cfg.dir/address_map.cpp.o"
  "CMakeFiles/stc_cfg.dir/address_map.cpp.o.d"
  "CMakeFiles/stc_cfg.dir/exec.cpp.o"
  "CMakeFiles/stc_cfg.dir/exec.cpp.o.d"
  "CMakeFiles/stc_cfg.dir/program.cpp.o"
  "CMakeFiles/stc_cfg.dir/program.cpp.o.d"
  "libstc_cfg.a"
  "libstc_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
