# Empty compiler generated dependencies file for table2_bbtypes.
# This may be replaced when dependencies are built.
