file(REMOVE_RECURSE
  "CMakeFiles/table2_bbtypes.dir/table2_bbtypes.cpp.o"
  "CMakeFiles/table2_bbtypes.dir/table2_bbtypes.cpp.o.d"
  "table2_bbtypes"
  "table2_bbtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bbtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
