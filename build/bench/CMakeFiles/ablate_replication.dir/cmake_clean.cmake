file(REMOVE_RECURSE
  "CMakeFiles/ablate_replication.dir/ablate_replication.cpp.o"
  "CMakeFiles/ablate_replication.dir/ablate_replication.cpp.o.d"
  "ablate_replication"
  "ablate_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
