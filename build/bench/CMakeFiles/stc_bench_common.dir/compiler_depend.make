# Empty compiler generated dependencies file for stc_bench_common.
# This may be replaced when dependencies are built.
