file(REMOVE_RECURSE
  "libstc_bench_common.a"
)
