file(REMOVE_RECURSE
  "CMakeFiles/stc_bench_common.dir/common.cpp.o"
  "CMakeFiles/stc_bench_common.dir/common.cpp.o.d"
  "libstc_bench_common.a"
  "libstc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
