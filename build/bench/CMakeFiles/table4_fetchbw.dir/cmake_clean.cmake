file(REMOVE_RECURSE
  "CMakeFiles/table4_fetchbw.dir/table4_fetchbw.cpp.o"
  "CMakeFiles/table4_fetchbw.dir/table4_fetchbw.cpp.o.d"
  "table4_fetchbw"
  "table4_fetchbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fetchbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
