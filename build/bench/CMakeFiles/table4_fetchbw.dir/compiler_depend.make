# Empty compiler generated dependencies file for table4_fetchbw.
# This may be replaced when dependencies are built.
