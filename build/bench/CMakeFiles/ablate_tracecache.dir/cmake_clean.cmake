file(REMOVE_RECURSE
  "CMakeFiles/ablate_tracecache.dir/ablate_tracecache.cpp.o"
  "CMakeFiles/ablate_tracecache.dir/ablate_tracecache.cpp.o.d"
  "ablate_tracecache"
  "ablate_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
