# Empty compiler generated dependencies file for ablate_tracecache.
# This may be replaced when dependencies are built.
