file(REMOVE_RECURSE
  "CMakeFiles/fig2_cumrefs.dir/fig2_cumrefs.cpp.o"
  "CMakeFiles/fig2_cumrefs.dir/fig2_cumrefs.cpp.o.d"
  "fig2_cumrefs"
  "fig2_cumrefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cumrefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
