# Empty compiler generated dependencies file for fig2_cumrefs.
# This may be replaced when dependencies are built.
