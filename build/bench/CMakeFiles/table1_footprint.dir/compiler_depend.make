# Empty compiler generated dependencies file for table1_footprint.
# This may be replaced when dependencies are built.
