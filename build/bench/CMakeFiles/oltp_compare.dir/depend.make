# Empty dependencies file for oltp_compare.
# This may be replaced when dependencies are built.
