file(REMOVE_RECURSE
  "CMakeFiles/oltp_compare.dir/oltp_compare.cpp.o"
  "CMakeFiles/oltp_compare.dir/oltp_compare.cpp.o.d"
  "oltp_compare"
  "oltp_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
