file(REMOVE_RECURSE
  "CMakeFiles/table3_missrate.dir/table3_missrate.cpp.o"
  "CMakeFiles/table3_missrate.dir/table3_missrate.cpp.o.d"
  "table3_missrate"
  "table3_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
