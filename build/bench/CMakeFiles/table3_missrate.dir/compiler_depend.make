# Empty compiler generated dependencies file for table3_missrate.
# This may be replaced when dependencies are built.
