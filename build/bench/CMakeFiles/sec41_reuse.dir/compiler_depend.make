# Empty compiler generated dependencies file for sec41_reuse.
# This may be replaced when dependencies are built.
