file(REMOVE_RECURSE
  "CMakeFiles/sec41_reuse.dir/sec41_reuse.cpp.o"
  "CMakeFiles/sec41_reuse.dir/sec41_reuse.cpp.o.d"
  "sec41_reuse"
  "sec41_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
