# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stc_support_test[1]_include.cmake")
include("/root/repo/build/tests/stc_cfg_test[1]_include.cmake")
include("/root/repo/build/tests/stc_trace_test[1]_include.cmake")
include("/root/repo/build/tests/stc_profile_test[1]_include.cmake")
include("/root/repo/build/tests/stc_core_test[1]_include.cmake")
include("/root/repo/build/tests/stc_sim_test[1]_include.cmake")
include("/root/repo/build/tests/stc_db_test[1]_include.cmake")
include("/root/repo/build/tests/stc_sql_test[1]_include.cmake")
include("/root/repo/build/tests/stc_tpcd_test[1]_include.cmake")
include("/root/repo/build/tests/stc_integration_test[1]_include.cmake")
