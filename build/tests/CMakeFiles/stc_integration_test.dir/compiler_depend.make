# Empty compiler generated dependencies file for stc_integration_test.
# This may be replaced when dependencies are built.
