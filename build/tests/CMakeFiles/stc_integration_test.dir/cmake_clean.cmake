file(REMOVE_RECURSE
  "CMakeFiles/stc_integration_test.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/stc_integration_test.dir/integration/pipeline_test.cpp.o.d"
  "stc_integration_test"
  "stc_integration_test.pdb"
  "stc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
