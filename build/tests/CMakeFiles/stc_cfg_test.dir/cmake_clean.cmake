file(REMOVE_RECURSE
  "CMakeFiles/stc_cfg_test.dir/cfg/address_map_test.cpp.o"
  "CMakeFiles/stc_cfg_test.dir/cfg/address_map_test.cpp.o.d"
  "CMakeFiles/stc_cfg_test.dir/cfg/exec_test.cpp.o"
  "CMakeFiles/stc_cfg_test.dir/cfg/exec_test.cpp.o.d"
  "CMakeFiles/stc_cfg_test.dir/cfg/program_test.cpp.o"
  "CMakeFiles/stc_cfg_test.dir/cfg/program_test.cpp.o.d"
  "stc_cfg_test"
  "stc_cfg_test.pdb"
  "stc_cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
