# Empty compiler generated dependencies file for stc_cfg_test.
# This may be replaced when dependencies are built.
