file(REMOVE_RECURSE
  "CMakeFiles/stc_tpcd_test.dir/tpcd/dbgen_test.cpp.o"
  "CMakeFiles/stc_tpcd_test.dir/tpcd/dbgen_test.cpp.o.d"
  "CMakeFiles/stc_tpcd_test.dir/tpcd/oltp_test.cpp.o"
  "CMakeFiles/stc_tpcd_test.dir/tpcd/oltp_test.cpp.o.d"
  "CMakeFiles/stc_tpcd_test.dir/tpcd/queries_test.cpp.o"
  "CMakeFiles/stc_tpcd_test.dir/tpcd/queries_test.cpp.o.d"
  "stc_tpcd_test"
  "stc_tpcd_test.pdb"
  "stc_tpcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_tpcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
