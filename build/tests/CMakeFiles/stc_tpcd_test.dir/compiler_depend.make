# Empty compiler generated dependencies file for stc_tpcd_test.
# This may be replaced when dependencies are built.
