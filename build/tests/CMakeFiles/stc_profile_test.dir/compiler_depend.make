# Empty compiler generated dependencies file for stc_profile_test.
# This may be replaced when dependencies are built.
