file(REMOVE_RECURSE
  "CMakeFiles/stc_profile_test.dir/profile/locality_test.cpp.o"
  "CMakeFiles/stc_profile_test.dir/profile/locality_test.cpp.o.d"
  "CMakeFiles/stc_profile_test.dir/profile/profile_test.cpp.o"
  "CMakeFiles/stc_profile_test.dir/profile/profile_test.cpp.o.d"
  "stc_profile_test"
  "stc_profile_test.pdb"
  "stc_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
