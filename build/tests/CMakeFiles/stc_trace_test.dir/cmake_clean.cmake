file(REMOVE_RECURSE
  "CMakeFiles/stc_trace_test.dir/trace/block_trace_test.cpp.o"
  "CMakeFiles/stc_trace_test.dir/trace/block_trace_test.cpp.o.d"
  "CMakeFiles/stc_trace_test.dir/trace/fetch_stream_test.cpp.o"
  "CMakeFiles/stc_trace_test.dir/trace/fetch_stream_test.cpp.o.d"
  "stc_trace_test"
  "stc_trace_test.pdb"
  "stc_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
