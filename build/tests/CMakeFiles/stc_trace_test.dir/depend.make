# Empty dependencies file for stc_trace_test.
# This may be replaced when dependencies are built.
