# Empty dependencies file for stc_sim_test.
# This may be replaced when dependencies are built.
