file(REMOVE_RECURSE
  "CMakeFiles/stc_sim_test.dir/sim/fetch_unit_test.cpp.o"
  "CMakeFiles/stc_sim_test.dir/sim/fetch_unit_test.cpp.o.d"
  "CMakeFiles/stc_sim_test.dir/sim/icache_test.cpp.o"
  "CMakeFiles/stc_sim_test.dir/sim/icache_test.cpp.o.d"
  "CMakeFiles/stc_sim_test.dir/sim/sim_property_test.cpp.o"
  "CMakeFiles/stc_sim_test.dir/sim/sim_property_test.cpp.o.d"
  "CMakeFiles/stc_sim_test.dir/sim/trace_cache_test.cpp.o"
  "CMakeFiles/stc_sim_test.dir/sim/trace_cache_test.cpp.o.d"
  "stc_sim_test"
  "stc_sim_test.pdb"
  "stc_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
