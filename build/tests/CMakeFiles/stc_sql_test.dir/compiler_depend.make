# Empty compiler generated dependencies file for stc_sql_test.
# This may be replaced when dependencies are built.
