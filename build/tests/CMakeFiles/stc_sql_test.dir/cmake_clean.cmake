file(REMOVE_RECURSE
  "CMakeFiles/stc_sql_test.dir/sql/lexer_test.cpp.o"
  "CMakeFiles/stc_sql_test.dir/sql/lexer_test.cpp.o.d"
  "CMakeFiles/stc_sql_test.dir/sql/parser_test.cpp.o"
  "CMakeFiles/stc_sql_test.dir/sql/parser_test.cpp.o.d"
  "CMakeFiles/stc_sql_test.dir/sql/planner_features_test.cpp.o"
  "CMakeFiles/stc_sql_test.dir/sql/planner_features_test.cpp.o.d"
  "CMakeFiles/stc_sql_test.dir/sql/planner_test.cpp.o"
  "CMakeFiles/stc_sql_test.dir/sql/planner_test.cpp.o.d"
  "stc_sql_test"
  "stc_sql_test.pdb"
  "stc_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
