# Empty dependencies file for stc_db_test.
# This may be replaced when dependencies are built.
