file(REMOVE_RECURSE
  "CMakeFiles/stc_db_test.dir/db/btree_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/btree_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/buffer_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/buffer_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/coldcode_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/coldcode_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/database_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/database_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/exec_rewind_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/exec_rewind_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/exec_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/exec_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/expr_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/expr_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/hash_index_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/hash_index_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/heap_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/heap_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/storage_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/storage_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/typeops_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/typeops_test.cpp.o.d"
  "CMakeFiles/stc_db_test.dir/db/value_test.cpp.o"
  "CMakeFiles/stc_db_test.dir/db/value_test.cpp.o.d"
  "stc_db_test"
  "stc_db_test.pdb"
  "stc_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
