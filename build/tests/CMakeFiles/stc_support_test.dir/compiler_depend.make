# Empty compiler generated dependencies file for stc_support_test.
# This may be replaced when dependencies are built.
