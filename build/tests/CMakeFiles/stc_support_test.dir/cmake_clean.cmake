file(REMOVE_RECURSE
  "CMakeFiles/stc_support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/stc_support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/stc_support_test.dir/support/stats_test.cpp.o"
  "CMakeFiles/stc_support_test.dir/support/stats_test.cpp.o.d"
  "CMakeFiles/stc_support_test.dir/support/table_test.cpp.o"
  "CMakeFiles/stc_support_test.dir/support/table_test.cpp.o.d"
  "CMakeFiles/stc_support_test.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/stc_support_test.dir/support/thread_pool_test.cpp.o.d"
  "CMakeFiles/stc_support_test.dir/support/varint_test.cpp.o"
  "CMakeFiles/stc_support_test.dir/support/varint_test.cpp.o.d"
  "stc_support_test"
  "stc_support_test.pdb"
  "stc_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
