file(REMOVE_RECURSE
  "CMakeFiles/stc_core_test.dir/core/mapping_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/mapping_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/pettis_hansen_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/pettis_hansen_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/property_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/property_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/replication_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/replication_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/seeds_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/seeds_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/stc_layout_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/stc_layout_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/torrellas_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/torrellas_test.cpp.o.d"
  "CMakeFiles/stc_core_test.dir/core/trace_builder_test.cpp.o"
  "CMakeFiles/stc_core_test.dir/core/trace_builder_test.cpp.o.d"
  "stc_core_test"
  "stc_core_test.pdb"
  "stc_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
