# Empty dependencies file for stc_core_test.
# This may be replaced when dependencies are built.
